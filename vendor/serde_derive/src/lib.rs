//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline serde
//! stub. Parses the item declaration straight from the proc-macro token
//! stream (no syn/quote) and emits impls of `serde::Serialize` /
//! `serde::Deserialize` over the stub's `Value` data model.
//!
//! Supported shapes — everything this workspace derives on:
//! unit/tuple/named structs (newtype structs serialize transparently as
//! their inner value, which also makes `#[serde(transparent)]` a no-op)
//! and enums with unit, tuple, or named-field variants (externally tagged,
//! matching serde_json's default representation). Generics are not
//! supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Advance past any `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Advance past `pub` / `pub(...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Split a field/variant list on top-level commas, tracking `<...>` depth
/// so commas inside generic arguments don't split (parenthesized types
/// arrive as single `Group` tokens and need no special care).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle: i32 = 0;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    chunks.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        chunks.last_mut().expect("non-empty").push(tt);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Field names of a named-field body, in declaration order.
fn named_field_names(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    for chunk in split_top_level(stream) {
        let mut i = skip_attrs(&chunk, 0);
        i = skip_vis(&chunk, i);
        match chunk.get(i) {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            other => return Err(format!("expected field name, found {other:?}")),
        }
    }
    Ok(names)
}

fn parse_fields_after_name(tokens: &[TokenTree], i: usize) -> Result<Fields, String> {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(split_top_level(g.stream()).len()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            named_field_names(g.stream()).map(Fields::Named)
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        None => Ok(Fields::Unit),
        other => Err(format!("unexpected token after name: {other:?}")),
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type {name} is not supported by the serde stub"
            ));
        }
    }
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_fields_after_name(&tokens, i)?,
        }),
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            let mut variants = Vec::new();
            for chunk in split_top_level(body) {
                let j = skip_attrs(&chunk, 0);
                let vname = match chunk.get(j) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected variant name, found {other:?}")),
                };
                let fields = parse_fields_after_name(&chunk, j + 1)?;
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Ok(Item::Enum { name, variants })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});")
        .parse()
        .expect("valid compile_error invocation")
}

// ---- Serialize -------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::serialize(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
                Fields::Named(fs) => {
                    let entries: Vec<String> = fs
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::serialize(&self.{f}))"
                            )
                        })
                        .collect();
                    format!(
                        "::serde::Value::Object(::std::vec![{}])",
                        entries.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from({vn:?})),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from({vn:?}), \
                              ::serde::Serialize::serialize(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                  ::serde::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::serialize({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from({vn:?}), \
                                  ::serde::Value::Object(::std::vec![{}]))]),",
                                fs.join(", "),
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

// ---- Deserialize -----------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__value)?))"
            ),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::deserialize(&__arr[{k}])?"))
                    .collect();
                format!(
                    "let __arr = __value.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                     if __arr.len() != {n} {{\n\
                         return ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"expected {n} elements for {name}, got {{}}\", \
                                            __arr.len())));\n\
                     }}\n\
                     ::std::result::Result::Ok({name}({}))",
                    elems.join(", ")
                )
            }
            Fields::Named(fs) => {
                let inits: Vec<String> = fs
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::deserialize(::serde::field(__obj, {f:?}))\
                             .map_err(|e| ::serde::Error::custom(\
                                 ::std::format!(\"{name}.{f}: {{e}}\")))?"
                        )
                    })
                    .collect();
                format!(
                    "let __obj = __value.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("{vn:?} => return ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "{vn:?} => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|k| format!("::serde::Deserialize::deserialize(&__a[{k}])?"))
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __a = __inner.as_array().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected array for \
                                         {name}::{vn}\"))?;\n\
                                     if __a.len() != {n} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\"wrong arity for \
                                             {name}::{vn}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::deserialize(\
                                         ::serde::field(__o, {f:?}))?"
                                    )
                                })
                                .collect();
                            format!(
                                "{vn:?} => {{\n\
                                     let __o = __inner.as_object().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected object for \
                                         {name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(__s) = __value.as_str() {{\n\
                     match __s {{\n\
                         {}\n\
                         __other => return ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown unit variant {{__other}} for {name}\"))),\n\
                     }}\n\
                 }}\n\
                 let __obj = __value.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected variant object for {name}\"))?;\n\
                 if __obj.len() != 1 {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(\
                         \"expected single-entry variant object for {name}\"));\n\
                 }}\n\
                 let (__tag, __inner) = (&__obj[0].0, &__obj[0].1);\n\
                 match __tag.as_str() {{\n\
                     {}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant {{__other}} for {name}\"))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` (stub data-model version).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde stub codegen failed: {e}"))),
        Err(e) => compile_error(&e),
    }
}

/// Derive `serde::Deserialize` (stub data-model version).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde stub codegen failed: {e}"))),
        Err(e) => compile_error(&e),
    }
}
