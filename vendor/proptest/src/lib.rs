//! A minimal, dependency-free stand-in for `proptest`, sufficient for
//! this workspace and usable offline.
//!
//! The [`proptest!`] macro runs each property over `cases` deterministic
//! pseudo-random inputs (seeded from the test's module path and name, so
//! failures reproduce exactly). There is no shrinking: a failing case
//! panics with the generated inputs printed. Strategies cover what the
//! workspace uses: integer and float ranges, `any::<T>()` for primitives,
//! and `collection::vec`.

use rand::SeedableRng;

/// Runner configuration and failure types.
pub mod test_runner {
    /// How many cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config with an explicit case count.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property was violated.
        Fail(String),
        /// The inputs were rejected by `prop_assume!` (not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure from any message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection from any message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// Result of one property case.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Value-generation strategies.
pub mod strategy {
    use rand::{Rng, SmallRng};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64, isize, f64);

    /// The `any::<T>()` strategy (full domain for integers/bool, unit
    /// interval for floats — enough for this workspace's properties).
    pub struct Any<T>(PhantomData<T>);

    /// Generate arbitrary values of `T`.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }

    any_strategy!(bool, u32, u64, usize, f64);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::{Rng, SmallRng};
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test module usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Deterministic per-test RNG: FNV-1a over the test's full path.
#[must_use]
pub fn __seed_rng(name: &str) -> rand::SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::SmallRng::seed_from_u64(h)
}

/// Define property tests (see crate docs; no shrinking in this stub).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::__seed_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __inputs = {
                        let mut __d = ::std::string::String::new();
                        $(
                            __d.push_str(stringify!($arg));
                            __d.push_str(" = ");
                            __d.push_str(&::std::format!("{:?}", $arg));
                            __d.push_str("; ");
                        )*
                        __d
                    };
                    let __result: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!(
                                "proptest case {} failed: {}\n  inputs: {}",
                                __case, __msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "{}\n  left: {:?}\n  right: {:?}",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), __l
        );
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_hold(x in 0u64..100, f in 0.5f64..1.5, flag in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert!((0.5..1.5).contains(&f));
            if flag {
                return Ok(());
            }
            prop_assert_ne!(f, 2.0);
        }

        fn vecs_have_requested_len(v in crate::collection::vec(0u64..10, 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        use rand::RngCore;
        let a = crate::__seed_rng("x").next_u64();
        let b = crate::__seed_rng("x").next_u64();
        assert_eq!(a, b);
    }
}
