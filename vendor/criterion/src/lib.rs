//! A minimal, dependency-free stand-in for `criterion`, sufficient for
//! this workspace's benches and usable offline.
//!
//! It keeps the upstream macro/API surface (`criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `black_box`) but replaces the
//! statistical machinery with a quick fixed-budget timer: each benchmark
//! is warmed up briefly, then timed and reported as mean ns/iter on
//! stdout. Good enough to compare hot paths locally; not a substitute
//! for upstream criterion's rigor.

use std::fmt::Display;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// When set (by `criterion_main!` seeing cargo's `--test` flag), each
/// benchmark body runs exactly once, untimed — mirroring upstream's
/// "smoke test" mode under `cargo test`.
pub static TEST_MODE: AtomicBool = AtomicBool::new(false);

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A parameterized id, rendered as `name/parameter` like upstream.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called in a loop against a small fixed budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if TEST_MODE.load(Ordering::Relaxed) {
            black_box(f());
            self.total = Duration::ZERO;
            self.iters = 0;
            return;
        }
        // Warm-up: a few untimed calls.
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(100);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

fn report(group: Option<&str>, label: &str, b: &Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    if b.iters == 0 {
        if TEST_MODE.load(Ordering::Relaxed) {
            println!("{full}: ok (test mode)");
        } else {
            println!("{full}: no iterations recorded");
        }
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    println!("{full}: {ns:.0} ns/iter ({} iters)", b.iters);
}

/// The top-level benchmark harness.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        let label = id.into_label();
        f(&mut b);
        report(None, &label, &b);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        let label = id.into_label();
        f(&mut b);
        report(Some(&self.name), &label, &b);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        let label = id.into_label();
        f(&mut b, input);
        report(Some(&self.name), &label, &b);
        self
    }

    /// Finish the group (upstream flushes reports here; the stub has
    /// already printed them).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for one or more [`criterion_group!`] bundles.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test") {
                $crate::TEST_MODE.store(true, ::std::sync::atomic::Ordering::Relaxed);
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: &mut Criterion) {
        let mut g = c.benchmark_group("sum");
        g.bench_function(BenchmarkId::new("to", 100), |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_with_input("with_input", &50u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
        c.bench_function("loose", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample(&mut c);
    }
}
