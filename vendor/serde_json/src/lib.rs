//! A minimal, dependency-free stand-in for `serde_json`, rendering and
//! parsing the serde stub's [`Value`] data model.
//!
//! Output conventions match upstream for the shapes this workspace emits:
//! compact `to_string`, two-space-indented `to_string_pretty`, `null` for
//! non-finite floats, and `".0"`-suffixed integral floats.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/parse error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Alias matching upstream serde_json.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable type into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize())
}

/// Rebuild a deserializable type from a [`Value`] tree.
///
/// # Errors
/// Returns an [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::deserialize(value).map_err(Error::from)
}

/// Serialize to a compact JSON string.
///
/// # Errors
/// Infallible for the stub's data model; the `Result` matches upstream.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (two-space indent).
///
/// # Errors
/// Infallible for the stub's data model; the `Result` matches upstream.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some("  "), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
///
/// # Errors
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    from_value(&value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(unit) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(unit);
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // `{}` renders integral floats without a fractional part; upstream
    // serde_json keeps the ".0" so floats stay floats on re-parse.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| Error::new(e.to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("bad number '{text}': {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compound() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(3)),
            (
                "b".into(),
                Value::Array(vec![Value::Float(1.5), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        let s = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }
}
