//! A minimal, dependency-free stand-in for the `serde` crate, sufficient
//! for this workspace and usable offline.
//!
//! Instead of serde's visitor-based zero-copy architecture, this stub
//! routes everything through an owned [`Value`] tree (the same data model
//! JSON uses). `#[derive(Serialize, Deserialize)]` is provided by the
//! companion `serde_derive` stub and generates impls of the two traits
//! below. The JSON conventions match upstream serde_json for the shapes
//! this workspace uses: newtype structs are transparent, unit enum
//! variants serialize as strings, data-carrying variants as single-entry
//! objects, and non-finite floats as `null`.

/// The self-describing data model every type serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (only produced for negative values).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered map with string keys (insertion order preserved).
    Object(Vec<(String, Value)>),
}

/// A `Value::Null` with a `'static` address, for "missing field" lookups.
pub static NULL: Value = Value::Null;

impl Value {
    /// The entries of an object, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64`, if this is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric contents as `u64`, if non-negative and integral.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric contents as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// Boolean contents, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Whether this is `Value::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Look up a field of an object by name; missing fields read as `null`
/// (so `Option` fields tolerate omission, as with upstream serde).
#[must_use]
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> &'a Value {
    obj.iter()
        .find(|(k, _)| k == name)
        .map_or(&NULL, |(_, v)| v)
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can turn themselves into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the data model.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from the data model.
    ///
    /// # Errors
    /// Returns an [`Error`] when `value`'s shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(Error::custom)
            }
        }
    )*};
}

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(Error::custom)
            }
        }
    )*};
}

ser_de_unsigned!(u8, u16, u32, u64, usize);
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value.as_f64().ok_or_else(|| Error::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident/$idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let arr = value
                    .as_array()
                    .ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected tuple of {expected}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($t::deserialize(&arr[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
