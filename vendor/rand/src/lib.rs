//! A minimal, dependency-free stand-in for the `rand` crate, sufficient
//! for this workspace and usable offline.
//!
//! [`rngs::SmallRng`] is xoshiro256++ seeded through SplitMix64 (the same
//! construction upstream uses for its small RNG family), so statistical
//! quality is adequate for the workloads and loss models here. The exact
//! output stream differs from upstream rand — all consumers in this
//! workspace treat the stream as opaque and seed deterministically.

use std::ops::{Range, RangeInclusive};

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (full range for integers,
    /// `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random bits into [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types `Rng::gen` can produce (stands in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let v = self.start + (self.end - self.start) * unit_f64(rng);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty f64 range");
        a + (b - a) * unit_f64(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (a, b) = (*self.start(), *self.end());
                assert!(a <= b, "empty integer range");
                let span = (b - a) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                a + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            SmallRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the stub backs `StdRng` with the same generator.
    pub type StdRng = SmallRng;
}

pub use rngs::SmallRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_uniform_ish() {
        let mut a = rngs::SmallRng::seed_from_u64(42);
        let mut b = rngs::SmallRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());

        let mut r = rngs::SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let k = r.gen_range(10usize..20);
            assert!((10..20).contains(&k));
            let m = r.gen_range(0u64..=5);
            assert!(m <= 5);
        }
    }

    #[test]
    fn first_draws_decorrelate_across_seeds() {
        // The loss model seeds a fresh SmallRng per occurrence and takes
        // one draw; those first draws must look uniform across seeds.
        let mean: f64 = (0..4000)
            .map(|i| rngs::SmallRng::seed_from_u64(i * 2654435761).gen::<f64>())
            .sum::<f64>()
            / 4000.0;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }
}
