//! Smoke tests over the figure/table regeneration pipeline — the same code
//! paths the `sb-bench` binaries drive, exercised from the facade.

use skyscraper_broadcasting::analysis::figures::{
    figure5a, figure5b, figure6, figure7, figure8, figures1_to_4, storage_theorem_holds,
};
use skyscraper_broadcasting::analysis::lineup::{paper_lineup, PAPER_WIDTHS};
use skyscraper_broadcasting::analysis::render::{render_figure, to_json};
use skyscraper_broadcasting::analysis::sweep::paper_sweep_with;
use skyscraper_broadcasting::analysis::tables::{evaluate_tables, table1_formulas, table2_rules};
use skyscraper_broadcasting::analysis::Runner;
use skyscraper_broadcasting::core::series::Width;

#[test]
fn all_figures_generate_and_render() {
    let ids = paper_lineup();
    let rows = paper_sweep_with(&ids, &Runner::serial());
    for fig in [
        figure5a(&rows),
        figure5b(&rows),
        figure6(&rows, &ids),
        figure7(&rows, &ids),
        figure8(&rows, &ids),
    ] {
        assert!(!fig.series.is_empty(), "{} has no series", fig.id);
        let txt = render_figure(&fig);
        assert!(txt.lines().count() > 20, "{} renders too little", fig.id);
        let json = to_json(&fig);
        assert!(json.contains(&fig.id));
    }
}

#[test]
fn transition_demos_generate() {
    let demos = figures1_to_4();
    assert_eq!(demos.len(), 4);
    for d in demos {
        assert!(d.measured_peak_units <= d.bound_units);
    }
}

#[test]
fn tables_generate() {
    assert_eq!(table1_formulas().len(), 3);
    assert_eq!(table2_rules().len(), 5);
    let rows = evaluate_tables(&paper_lineup(), &[320.0]);
    assert_eq!(rows.len(), 9);
}

#[test]
fn storage_theorem_across_paper_widths() {
    for w in PAPER_WIDTHS {
        // K = 21 is the B = 320 channel count.
        assert!(storage_theorem_holds(21, Width::Capped(w)), "W={w}");
    }
}
