//! The experiment runner's core contract: results are a pure function of
//! the [`Experiment`], never of the worker-pool size. `--threads 8` must
//! serialize to the *same bytes* as `--threads 1`.

use skyscraper_broadcasting::analysis::lineup::{extended_lineup, paper_lineup};
use skyscraper_broadcasting::analysis::runner::{run_experiment, Experiment, Runner};
use skyscraper_broadcasting::units::Minutes;

#[test]
fn same_experiment_is_byte_identical_across_thread_counts() {
    let exp =
        Experiment::over_range("determinism", paper_lineup(), 100.0, 600.0, 100.0).with_seed(97);
    let serial = run_experiment(&exp, Minutes(15.0), 8, &Runner::serial());
    let serial_json = serde_json::to_string_pretty(&serial).unwrap();
    for threads in [2, 8] {
        let parallel = run_experiment(&exp, Minutes(15.0), 8, &Runner::new(threads));
        let parallel_json = serde_json::to_string_pretty(&parallel).unwrap();
        assert_eq!(
            serial_json, parallel_json,
            "{threads}-thread run diverged from serial"
        );
    }
}

#[test]
fn workload_seed_is_a_real_axis() {
    // Different seeds probe different arrival phases, so the empirical
    // crosscheck numbers may differ — but each seed is itself stable.
    let base = Experiment::new("seeded", extended_lineup(), vec![320.0]);
    let a = run_experiment(
        &base.clone().with_seed(1),
        Minutes(15.0),
        16,
        &Runner::new(4),
    );
    let b = run_experiment(&base.with_seed(1), Minutes(15.0), 16, &Runner::serial());
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}
