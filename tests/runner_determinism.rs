//! The experiment runner's core contract: results are a pure function of
//! the [`Experiment`], never of the worker-pool size. `--threads 8` must
//! serialize to the *same bytes* as `--threads 1`.

use skyscraper_broadcasting::analysis::lineup::{extended_lineup, paper_lineup};
use skyscraper_broadcasting::analysis::runner::{
    run_crosscheck_instrumented, run_experiment, run_experiment_instrumented, Experiment, Runner,
};
use skyscraper_broadcasting::units::Minutes;

#[test]
fn same_experiment_is_byte_identical_across_thread_counts() {
    let exp =
        Experiment::over_range("determinism", paper_lineup(), 100.0, 600.0, 100.0).with_seed(97);
    let serial = run_experiment(&exp, Minutes(15.0), 8, &Runner::serial());
    let serial_json = serde_json::to_string_pretty(&serial).unwrap();
    for threads in [2, 8] {
        let parallel = run_experiment(&exp, Minutes(15.0), 8, &Runner::new(threads));
        let parallel_json = serde_json::to_string_pretty(&parallel).unwrap();
        assert_eq!(
            serial_json, parallel_json,
            "{threads}-thread run diverged from serial"
        );
    }
}

#[test]
fn workload_seed_is_a_real_axis() {
    // Different seeds probe different arrival phases, so the empirical
    // crosscheck numbers may differ — but each seed is itself stable.
    let base = Experiment::new("seeded", extended_lineup(), vec![320.0]);
    let a = run_experiment(
        &base.clone().with_seed(1),
        Minutes(15.0),
        16,
        &Runner::new(4),
    );
    let b = run_experiment(&base.with_seed(1), Minutes(15.0), 16, &Runner::serial());
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
}

#[test]
fn instrumented_metrics_snapshots_are_byte_identical_across_thread_counts() {
    // Metrics ride the same contract as results: each grid cell records
    // into a private registry and snapshots merge in grid order, so the
    // merged Snapshot must not depend on worker-pool size either.
    let exp =
        Experiment::over_range("determinism", paper_lineup(), 100.0, 600.0, 100.0).with_seed(97);
    let (serial_rows, serial_snap) =
        run_experiment_instrumented(&exp, Minutes(15.0), 8, &Runner::serial());
    let serial_bytes = serde_json::to_string_pretty(&serial_snap).unwrap();
    for threads in [2, 8] {
        let (rows, snap) =
            run_experiment_instrumented(&exp, Minutes(15.0), 8, &Runner::new(threads));
        assert_eq!(
            serde_json::to_string_pretty(&serial_rows).unwrap(),
            serde_json::to_string_pretty(&rows).unwrap(),
            "{threads}-thread rows diverged"
        );
        assert_eq!(
            serial_bytes,
            serde_json::to_string_pretty(&snap).unwrap(),
            "{threads}-thread metrics snapshot diverged"
        );
    }
    // The snapshot actually carries data: one feasible-cell counter per
    // (scheme, bandwidth) grid point and one latency sample per request.
    assert!(serial_snap.counter_total("crosscheck_cells_total") > 0);
}

#[test]
fn instrumented_crosscheck_labels_every_cell() {
    let exp = Experiment::new("labels", paper_lineup(), vec![300.0]).with_seed(7);
    let (cells, snap) = run_crosscheck_instrumented(&exp, Minutes(15.0), 4, &Runner::serial());
    let feasible = snap
        .counter("crosscheck_cells_total", "feasible=true")
        .unwrap_or(0);
    let infeasible = snap
        .counter("crosscheck_cells_total", "feasible=false")
        .unwrap_or(0);
    assert_eq!(feasible as usize, cells.len());
    assert_eq!(
        (feasible + infeasible) as usize,
        exp.schemes.len() * exp.bandwidths.len()
    );
}
