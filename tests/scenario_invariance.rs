//! Property test for the metropolitan scenario pack: the scenario slot
//! is invisible in the results.
//!
//! For random presets, seeds, rates and premiere times, a scenario
//! request stream (clustered geography, region-local catalogs, diurnal
//! shape, a flash crowd in the busiest region) run through `SystemSim`
//! with the region→shard partition table must be *bitwise* identical
//! across the full grid `--shards {1, 2, 4} × --threads {1, 2, 4} ×
//! --agenda {heap, wheel}`: same report, same streamed fold (struct and
//! serialized bytes), same merged metrics snapshot. This extends the
//! `sim::shard` ordered-replay argument (`DESIGN.md` §11) to the
//! partition slot of §13 over the whole scenario input space, not just
//! the fixtures in `analysis::scenario_study`.

use proptest::prelude::*;
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::{AgendaKind, RunConfig, StreamingFold};
use sb_workload::{FlashCrowd, MetroScenario, ScenarioPreset, ScenarioWorkload};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn scenario_streams_are_invariant_across_the_whole_knob_grid(
        seed in any::<u64>(),
        preset_idx in 0usize..3,
        rate in 0.5f64..2.0,
        flash_frac in 0.2f64..0.8,
    ) {
        let preset =
            [ScenarioPreset::Urban, ScenarioPreset::Rural, ScenarioPreset::Remote][preset_idx];
        let scenario = MetroScenario::generate(&preset.config(seed));
        let horizon = Minutes(90.0);
        let busiest = scenario
            .regions
            .iter()
            .max_by(|a, b| a.demand_share.total_cmp(&b.demand_share))
            .map(|r| r.id)
            .unwrap();
        let stream = ScenarioWorkload {
            rate_per_minute: rate,
            horizon,
            mean_patience: Minutes(30.0),
            diurnal: true,
            flash: Some(FlashCrowd {
                at: Minutes(horizon.value() * flash_frac),
                region: busiest,
            }),
            seed: seed.rotate_left(17),
        }
        .generate(&scenario);
        let requests: Vec<Request> = stream
            .iter()
            .map(|r| Request { at: r.at, video: VideoId(r.video) })
            .collect();
        prop_assume!(!requests.is_empty());

        let titles = scenario.titles();
        let sys = SystemConfig {
            num_videos: titles,
            ..SystemConfig::paper_defaults(Mbps(30.0 * titles as f64))
        };
        let plan = Skyscraper::with_width(Width::Capped(52)).plan(&sys).unwrap();

        let mut base_fold = StreamingFold::new();
        let base = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible)
            .execute(RunConfig::new(&requests).sink(&mut base_fold).seed(seed))
            .unwrap();
        let base_bytes = serde_json::to_string(&base_fold.finish()).unwrap();

        for shards in [1usize, 2, 4] {
            let map = scenario.shard_map(shards);
            for threads in [1usize, 2, 4] {
                for agenda in [AgendaKind::Heap, AgendaKind::Wheel] {
                    let mut fold = StreamingFold::new();
                    let run = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible)
                        .execute(
                            RunConfig::new(&requests)
                                .sink(&mut fold)
                                .partition(&map)
                                .shards(shards)
                                .threads(threads)
                                .agenda(agenda)
                                .seed(seed),
                        )
                        .unwrap();
                    let knobs = format!("shards {shards} × threads {threads} × {agenda:?}");
                    prop_assert_eq!(&base.summary, &run.summary, "report diverged at {}", &knobs);
                    prop_assert_eq!(&base.fold, &run.fold, "fold diverged at {}", &knobs);
                    prop_assert_eq!(
                        &base.snapshot, &run.snapshot,
                        "snapshot diverged at {}", &knobs
                    );
                    prop_assert_eq!(
                        &base_bytes,
                        &serde_json::to_string(&fold.finish()).unwrap(),
                        "caller fold bytes diverged at {}", &knobs
                    );
                    prop_assert_eq!(base.stats.fired, run.stats.fired, "{}", &knobs);
                    prop_assert_eq!(
                        run.shard_peak_agenda.len(), shards,
                        "{}", &knobs
                    );
                }
            }
        }
    }
}
