//! Cross-crate integration: every scheme's plan is structurally valid and
//! every simulated client session honours the scheme's analytic promises.

use skyscraper_broadcasting::analysis::crosscheck::policy_for;
use skyscraper_broadcasting::analysis::lineup::extended_lineup;
use skyscraper_broadcasting::prelude::*;

#[test]
fn plans_validate_against_their_bandwidth_budget() {
    for b in [100.0, 320.0, 600.0] {
        let cfg = SystemConfig::paper_defaults(Mbps(b));
        for id in extended_lineup() {
            let scheme = id.build();
            if let Ok(plan) = scheme.plan(&cfg) {
                plan.validate(cfg.server_bandwidth)
                    .unwrap_or_else(|e| panic!("{} at {b}: {e}", id.label()));
            }
        }
    }
}

#[test]
fn every_feasible_scheme_serves_every_video_jitter_free() {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    for id in extended_lineup() {
        let scheme = id.build();
        let Ok(plan) = scheme.plan(&cfg) else { continue };
        let metrics = scheme.metrics(&cfg).unwrap();
        let policy = policy_for(id);
        for video in 0..cfg.num_videos {
            for i in 0..7 {
                let arrival = Minutes(2.3 * i as f64 + 0.11 * video as f64);
                let s = schedule_client(&plan, VideoId(video), arrival, cfg.display_rate, policy)
                    .unwrap_or_else(|e| panic!("{} v{video}: {e}", id.label()));
                assert!(
                    s.jitter_violations(1e-6).is_empty(),
                    "{} video {video} arrival {arrival}",
                    id.label()
                );
                assert!(
                    s.startup_latency().value() <= metrics.access_latency.value() + 1e-6,
                    "{} latency promise broken",
                    id.label()
                );
                s.validate(&plan).unwrap();
            }
        }
    }
}

#[test]
fn sb_slot_model_agrees_with_plan_driven_clients() {
    // The exact integer model (sb-core) and the continuous plan-driven
    // client (sb-sim) are independent implementations of §3.3; they must
    // agree on every phase of a full hyperperiod.
    let cfg = SystemConfig::paper_defaults(Mbps(120.0)); // K = 8
    let scheme = Skyscraper::with_width(Width::capped(5).unwrap());
    let plan = scheme.plan(&cfg).unwrap();
    let frag = scheme.fragmentation(&cfg).unwrap();
    let d1 = frag.slot.value();
    let hyper = skyscraper_broadcasting::core::client::hyperperiod(&frag.units).unwrap();
    let unit_mbits = cfg.display_rate.value() * d1 * 60.0;
    for t0 in 0..hyper {
        let slot = skyscraper_broadcasting::core::client::ClientTimeline::compute(&frag.units, t0);
        let cont = schedule_client(
            &plan,
            VideoId(0),
            Minutes(d1 * t0 as f64),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        let expect = slot.peak_buffer_units() as f64 * unit_mbits;
        let got = cont.peak_buffer().value();
        assert!(
            (got - expect).abs() < 1e-3 * unit_mbits,
            "phase {t0}: slot {expect} vs continuous {got}"
        );
    }
}

#[test]
fn infeasible_regimes_error_cleanly() {
    let tiny = SystemConfig::paper_defaults(Mbps(10.0));
    for id in extended_lineup() {
        let scheme = id.build();
        assert!(
            scheme.metrics(&tiny).is_err(),
            "{} should be infeasible at 10 Mb/s",
            id.label()
        );
    }
    // And the SchemeId label of an error case is still printable.
    let err = Skyscraper::unbounded().metrics(&tiny).unwrap_err();
    assert!(!err.to_string().is_empty());
}
