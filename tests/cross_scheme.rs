//! Cross-crate integration: every scheme's plan is structurally valid and
//! every simulated client session honours the scheme's analytic promises.

use skyscraper_broadcasting::analysis::crosscheck::policy_for;
use skyscraper_broadcasting::analysis::lineup::extended_lineup;
use skyscraper_broadcasting::prelude::*;
use skyscraper_broadcasting::pyramid::HarmonicBroadcasting;
use skyscraper_broadcasting::sim::faults::apply_losses;
use skyscraper_broadcasting::sim::system::Request;
use skyscraper_broadcasting::sim::trace::{ClientModel, PausingClient, RecordingClient};
use skyscraper_broadcasting::sim::{schedule_pausing_client, LossModel, RunConfig, SystemSim};

/// Deterministic splitmix64, for seeded "random" arrival offsets.
fn splitmix(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (x ^ (x >> 31)) as f64 / u64::MAX as f64
}

#[test]
fn plans_validate_against_their_bandwidth_budget() {
    for b in [100.0, 320.0, 600.0] {
        let cfg = SystemConfig::paper_defaults(Mbps(b));
        for id in extended_lineup() {
            let scheme = id.build();
            if let Ok(plan) = scheme.plan(&cfg) {
                plan.validate(cfg.server_bandwidth)
                    .unwrap_or_else(|e| panic!("{} at {b}: {e}", id.label()));
            }
        }
    }
}

#[test]
fn every_feasible_scheme_serves_every_video_jitter_free() {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    for id in extended_lineup() {
        let scheme = id.build();
        let Ok(plan) = scheme.plan(&cfg) else {
            continue;
        };
        let metrics = scheme.metrics(&cfg).unwrap();
        let policy = policy_for(id);
        for video in 0..cfg.num_videos {
            for i in 0..7 {
                let arrival = Minutes(2.3 * i as f64 + 0.11 * video as f64);
                let s = schedule_client(&plan, VideoId(video), arrival, cfg.display_rate, policy)
                    .unwrap_or_else(|e| panic!("{} v{video}: {e}", id.label()));
                assert!(
                    s.jitter_violations(1e-6).is_empty(),
                    "{} video {video} arrival {arrival}",
                    id.label()
                );
                assert!(
                    s.startup_latency().value() <= metrics.access_latency.value() + 1e-6,
                    "{} latency promise broken",
                    id.label()
                );
                s.validate(&plan).unwrap();
            }
        }
    }
}

#[test]
fn sb_slot_model_agrees_with_plan_driven_clients() {
    // The exact integer model (sb-core) and the continuous plan-driven
    // client (sb-sim) are independent implementations of §3.3; they must
    // agree on every phase of a full hyperperiod.
    let cfg = SystemConfig::paper_defaults(Mbps(120.0)); // K = 8
    let scheme = Skyscraper::with_width(Width::capped(5).unwrap());
    let plan = scheme.plan(&cfg).unwrap();
    let frag = scheme.fragmentation(&cfg).unwrap();
    let d1 = frag.slot.value();
    let hyper = skyscraper_broadcasting::core::client::hyperperiod(&frag.units).unwrap();
    let unit_mbits = cfg.display_rate.value() * d1 * 60.0;
    for t0 in 0..hyper {
        let slot = skyscraper_broadcasting::core::client::ClientTimeline::compute(&frag.units, t0);
        let cont = schedule_client(
            &plan,
            VideoId(0),
            Minutes(d1 * t0 as f64),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        let expect = slot.peak_buffer_units() as f64 * unit_mbits;
        let got = cont.peak_buffer().value();
        assert!(
            (got - expect).abs() < 1e-3 * unit_mbits,
            "phase {t0}: slot {expect} vs continuous {got}"
        );
    }
}

#[test]
fn infeasible_regimes_error_cleanly() {
    let tiny = SystemConfig::paper_defaults(Mbps(10.0));
    for id in extended_lineup() {
        let scheme = id.build();
        assert!(
            scheme.metrics(&tiny).is_err(),
            "{} should be infeasible at 10 Mb/s",
            id.label()
        );
    }
    // And the SchemeId label of an error case is still printable.
    let err = Skyscraper::unbounded().metrics(&tiny).unwrap_err();
    assert!(!err.to_string().is_empty());
}

#[test]
fn trace_metrics_match_legacy_schedules_at_random_arrivals() {
    // The unified SessionTrace (reached through the ClientModel trait) and
    // the legacy per-scheme schedule types must agree *exactly* on peak
    // buffer and start-up latency — the trace is now the one buffer
    // accounting, so any drift means a conversion bug.
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    let mut rng = 0x5EED_u64;
    for id in extended_lineup() {
        let scheme = id.build();
        let Ok(plan) = scheme.plan(&cfg) else {
            continue;
        };
        let policy = policy_for(id);
        for _ in 0..8 {
            let arrival = Minutes(60.0 * splitmix(&mut rng));
            let legacy = schedule_client(&plan, VideoId(0), arrival, cfg.display_rate, policy)
                .unwrap_or_else(|e| panic!("{}: {e}", id.label()));
            let trace = policy
                .session(&plan, VideoId(0), arrival, cfg.display_rate)
                .unwrap();
            trace.validate(&plan).unwrap();
            assert_eq!(
                legacy.peak_buffer(),
                trace.peak_buffer(),
                "{} arrival {arrival}: peak buffer drifted",
                id.label()
            );
            assert_eq!(
                legacy.startup_latency(),
                trace.startup_latency(),
                "{} arrival {arrival}: latency drifted",
                id.label()
            );
        }
    }
}

#[test]
fn pausing_and_recording_traces_match_their_legacy_types() {
    // Same exact-equality property for the two non-tune-at-start clients.
    let ppb_cfg = SystemConfig::paper_defaults(Mbps(320.0));
    let ppb_plan = PermutationPyramid::b().plan(&ppb_cfg).unwrap();
    let hb_cfg = SystemConfig::paper_defaults(Mbps(60.0));
    let hb = HarmonicBroadcasting::original();
    let hb_plan = hb.plan(&hb_cfg).unwrap();
    let slot = hb.slot(&hb_cfg).unwrap();
    let mut rng = 0xFACE_u64;
    for _ in 0..8 {
        let arrival = Minutes(60.0 * splitmix(&mut rng));

        let legacy =
            schedule_pausing_client(&ppb_plan, VideoId(0), arrival, ppb_cfg.display_rate).unwrap();
        let trace = PausingClient
            .session(&ppb_plan, VideoId(0), arrival, ppb_cfg.display_rate)
            .unwrap();
        assert_eq!(legacy.peak_buffer(), trace.peak_buffer());
        assert_eq!(legacy.startup_latency(), trace.startup_latency());

        let recorder = RecordingClient {
            playback_delay: slot,
        };
        let legacy = skyscraper_broadcasting::sim::record_all(
            &hb_plan,
            VideoId(0),
            arrival,
            hb_cfg.display_rate,
            slot,
        )
        .unwrap();
        let trace = recorder
            .session(&hb_plan, VideoId(0), arrival, hb_cfg.display_rate)
            .unwrap();
        assert_eq!(legacy.peak_buffer(), trace.peak_buffer());
        assert_eq!(
            legacy.playback_start.value() - legacy.arrival.value(),
            trace.startup_latency().value()
        );
    }
}

#[test]
fn system_sim_and_loss_model_accept_every_client_model() {
    // The acceptance gate of this refactor: SystemSim and the loss
    // pipeline take a PPB pausing client and a Harmonic record-all client
    // through the *same* ClientModel entry point the SB policy uses.
    let requests: Vec<Request> = (0..6)
        .map(|i| Request {
            at: Minutes(3.7 * i as f64),
            video: VideoId(0),
        })
        .collect();
    let losses = LossModel::new(0.05, 11).expect("valid probability");

    // SB through a ClientPolicy.
    let sb_cfg = SystemConfig::paper_defaults(Mbps(320.0));
    let sb_plan = Skyscraper::with_width(Width::capped(52).unwrap())
        .plan(&sb_cfg)
        .unwrap();
    let report = SystemSim::new(&sb_plan, sb_cfg.display_rate, ClientPolicy::LatestFeasible)
        .execute(RunConfig::new(&requests))
        .unwrap()
        .summary;
    assert_eq!(report.sessions, requests.len());

    // PPB through the pausing client.
    let ppb_plan = PermutationPyramid::b().plan(&sb_cfg).unwrap();
    let report = SystemSim::new(&ppb_plan, sb_cfg.display_rate, PausingClient)
        .execute(RunConfig::new(&requests))
        .unwrap()
        .summary;
    assert_eq!(report.sessions, requests.len());

    // Harmonic through the record-everything client.
    let hb_cfg = SystemConfig::paper_defaults(Mbps(60.0));
    let hb = HarmonicBroadcasting::original();
    let hb_plan = hb.plan(&hb_cfg).unwrap();
    let recorder = RecordingClient {
        playback_delay: hb.slot(&hb_cfg).unwrap(),
    };
    let report = SystemSim::new(&hb_plan, hb_cfg.display_rate, recorder)
        .execute(RunConfig::new(&requests))
        .unwrap()
        .summary;
    assert_eq!(report.sessions, requests.len());

    // And the loss pipeline consumes each model's trace uniformly.
    for (plan, rate, model) in [
        (
            &sb_plan,
            sb_cfg.display_rate,
            Box::new(ClientPolicy::LatestFeasible) as Box<dyn ClientModel>,
        ),
        (&ppb_plan, sb_cfg.display_rate, Box::new(PausingClient)),
        (&hb_plan, hb_cfg.display_rate, Box::new(recorder)),
    ] {
        let trace = model.session(plan, VideoId(0), Minutes(4.1), rate).unwrap();
        let stalls = apply_losses(plan, &trace, &losses);
        assert!(stalls.total_stall().value() >= 0.0);
        let clean = apply_losses(plan, &trace, &LossModel::lossless());
        assert!(clean.stalls.is_empty());
        assert_eq!(clean.trace, trace);
    }
}
