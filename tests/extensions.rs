//! Integration tests for the beyond-paper extensions: heterogeneous
//! catalogs, generalized series, pausing PPB clients, and packet replay —
//! all driven through the public facade and the simulator.

use skyscraper_broadcasting::core::custom::{
    greedy_max_series, CustomSkyscraper, PhaseBudget, ValidatedSeries,
};
use skyscraper_broadcasting::core::heterogeneous::{plan_heterogeneous, HeteroVideo};
use skyscraper_broadcasting::core::series;
use skyscraper_broadcasting::prelude::*;
use skyscraper_broadcasting::sim::e2e::{replay, PacketConfig};
use skyscraper_broadcasting::sim::pausing::schedule_pausing_client;

#[test]
fn heterogeneous_plan_serves_all_lengths_through_the_simulator() {
    let videos: Vec<HeteroVideo> = [95.0, 120.0, 150.0, 87.0]
        .into_iter()
        .map(|m| HeteroVideo { length: Minutes(m) })
        .collect();
    let hp =
        plan_heterogeneous(Mbps(120.0), Mbps(1.5), &videos, Width::capped(12).unwrap()).unwrap();
    hp.plan.validate(Mbps(120.0)).unwrap();
    for (v, pv) in hp.per_video.iter().enumerate() {
        for i in 0..6 {
            let arrival = Minutes(4.1 * i as f64 + 0.3 * v as f64);
            let s = schedule_client(
                &hp.plan,
                VideoId(v),
                arrival,
                Mbps(1.5),
                ClientPolicy::LatestFeasible,
            )
            .unwrap();
            assert!(s.jitter_violations(1e-6).is_empty(), "video {v}");
            assert!(
                s.startup_latency().value() <= pv.metrics.access_latency.value() + 1e-9,
                "video {v}: {} > {}",
                s.startup_latency(),
                pv.metrics.access_latency
            );
            assert!(
                s.peak_buffer().value() <= pv.metrics.buffer_requirement.value() * (1.0 + 1e-9),
                "video {v}"
            );
            // Playback length matches the video's own length.
            let played = s.playback_end().value() - s.playback_start.value();
            assert!((played - videos[v].length.value()).abs() < 1e-6);
        }
    }
}

#[test]
fn custom_series_plan_runs_through_simulator_and_packet_replay() {
    let units = vec![1, 2, 2, 3, 3, 4, 4, 5, 5, 6];
    let scheme =
        CustomSkyscraper::new(ValidatedSeries::new(units, PhaseBudget::default()).unwrap());
    let cfg = SystemConfig::paper_defaults(Mbps(150.0));
    let metrics = scheme.metrics(&cfg).unwrap();
    let plan = scheme.plan(&cfg).unwrap();
    plan.validate(cfg.server_bandwidth).unwrap();
    for i in 0..8 {
        let arrival = Minutes(1.7 * i as f64);
        let s = schedule_client(
            &plan,
            VideoId(1),
            arrival,
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        assert!(s.jitter_violations(1e-6).is_empty());
        assert!(s.max_concurrent_downloads() <= 2);
        assert!(s.peak_buffer().value() <= metrics.buffer_requirement.value() * (1.0 + 1e-6));
        // And the packet-level replay agrees.
        let report = replay(&s.trace(), PacketConfig::default());
        assert!(report.underruns.is_empty());
    }
}

#[test]
fn greedy_series_discovery_scales() {
    // The K=11 search still lands exactly on the paper's series.
    let found = greedy_max_series(11, PhaseBudget::ExhaustiveUpTo(60_000));
    assert_eq!(found, series::series(11));
}

#[test]
fn pausing_client_end_to_end() {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    let plan = PermutationPyramid::b().plan(&cfg).unwrap();
    let analytic = PermutationPyramid::b().metrics(&cfg).unwrap();
    let s = schedule_pausing_client(&plan, VideoId(0), Minutes(9.7), cfg.display_rate).unwrap();
    assert!(s.is_jitter_free(1e-6));
    assert!(s.single_tuner(1e-6));
    assert!(s.peak_buffer().value() <= analytic.buffer_requirement.value());
    assert!(s.mid_broadcast_joins() > 0);
}

#[test]
fn fast_broadcasting_clients_meet_their_analytics() {
    use skyscraper_broadcasting::pyramid::FastBroadcasting;
    let cfg = SystemConfig::paper_defaults(Mbps(120.0)); // K = 8, N = 255
    let scheme = FastBroadcasting;
    let metrics = scheme.metrics(&cfg).unwrap();
    let plan = scheme.plan(&cfg).unwrap();
    plan.validate(cfg.server_bandwidth).unwrap();
    let mut worst_latency: f64 = 0.0;
    let mut worst_buffer: f64 = 0.0;
    let mut worst_streams = 0usize;
    for i in 0..40 {
        let arrival = Minutes(1.3 * i as f64);
        let s = schedule_client(
            &plan,
            VideoId(0),
            arrival,
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        assert!(s.jitter_violations(1e-6).is_empty(), "arrival {arrival}");
        worst_latency = worst_latency.max(s.startup_latency().value());
        worst_buffer = worst_buffer.max(s.peak_buffer().value());
        worst_streams = worst_streams.max(s.max_concurrent_downloads());
    }
    // Latency bound D/N holds and is (nearly) attained.
    assert!(worst_latency <= metrics.access_latency.value() + 1e-9);
    assert!(worst_latency >= metrics.access_latency.value() * 0.7);
    // The (N−1)/2-slot buffer bound holds and is essentially attained.
    assert!(
        worst_buffer <= metrics.buffer_requirement.value() * 1.001,
        "buffer {worst_buffer} vs {}",
        metrics.buffer_requirement
    );
    assert!(worst_buffer >= metrics.buffer_requirement.value() * 0.9);
    // FB's cost: many concurrent streams (up to K), far beyond SB's 2.
    assert!(worst_streams > 2, "streams {worst_streams}");
    assert!(worst_streams <= 8);
}

#[test]
fn harmonic_bug_and_fix_through_the_facade() {
    use skyscraper_broadcasting::pyramid::HarmonicBroadcasting;
    use skyscraper_broadcasting::sim::receive_all::record_all;
    let cfg = SystemConfig::paper_defaults(Mbps(60.0));
    let scheme = HarmonicBroadcasting::original();
    let plan = scheme.plan(&cfg).unwrap();
    let slot = scheme.slot(&cfg).unwrap();
    let mut bug_seen = false;
    for i in 0..80 {
        let arrival = Minutes(0.61 * i as f64);
        let buggy = record_all(&plan, VideoId(0), arrival, cfg.display_rate, Minutes(0.0)).unwrap();
        bug_seen |= !buggy.is_jitter_free(1e-6);
        let fixed = record_all(&plan, VideoId(0), arrival, cfg.display_rate, slot).unwrap();
        assert!(fixed.is_jitter_free(1e-6), "fix fails at {arrival}");
    }
    assert!(bug_seen, "the original HB bug must manifest somewhere");
}
