//! Acceptance tests for the resilience subsystem, pinned across crate
//! boundaries: outage recovery completes every admitted session, dynamic
//! control strictly beats static under the same fault script, and the
//! whole fault study is byte-identical for every worker-thread count.

use skyscraper_broadcasting::analysis::resilience_study::{
    resilience_study, ResilienceStudyConfig,
};
use skyscraper_broadcasting::analysis::Runner;
use skyscraper_broadcasting::control::ControlFaults;
use skyscraper_broadcasting::control::{ControlConfig, ControlPolicy, ControlledSim};
use skyscraper_broadcasting::resilience::{ChannelOutage, Degradation, FaultScript};
use skyscraper_broadcasting::sim::RunConfig;
use skyscraper_broadcasting::units::{Mbps, Minutes};
use skyscraper_broadcasting::workload::{
    Catalog, Patience, PoissonArrivals, PopularityShift, ZipfPopularity,
};

fn outage_script() -> FaultScript {
    FaultScript {
        outages: vec![ChannelOutage {
            channel: 0,
            start: Minutes(100.0),
            duration: Minutes(60.0),
        }],
        ..FaultScript::none()
    }
}

fn shifted_requests(seed: u64) -> Vec<skyscraper_broadcasting::workload::WorkloadRequest> {
    PopularityShift {
        arrivals: PoissonArrivals::new(6.0, seed)
            .with_patience(Patience::Exponential(Minutes(45.0))),
        shift_at: Minutes(150.0),
        rotate: 20,
    }
    .generate(&ZipfPopularity::paper(40), Minutes(400.0))
}

/// Under a mid-run outage, both policies account for every request, the
/// dark window's sessions are repaired rather than dropped, and dynamic
/// control strictly beats static on mean access latency.
#[test]
fn outage_recovery_completes_every_session_and_dynamic_wins() {
    let cfg = ControlConfig::paper_defaults(Mbps(300.0));
    let catalog = Catalog::paper_defaults(cfg.titles);
    let sim = ControlledSim::new(cfg, &catalog).unwrap();
    let requests = shifted_requests(11);
    let script = outage_script();

    let mut reports = Vec::new();
    for policy in [ControlPolicy::Static, ControlPolicy::Dynamic] {
        for degradation in [Degradation::Stall, Degradation::SkipSegment] {
            let r = sim
                .execute(
                    policy,
                    RunConfig::new(&requests).faults(ControlFaults {
                        script: &script,
                        degradation,
                    }),
                )
                .unwrap()
                .summary;
            // Nobody starves: every offered request ends served,
            // defected, or rejected — none lost in the dark window.
            assert_eq!(r.accounted(), requests.len(), "{policy}/{degradation:?}");
            assert!(r.resilience.repaired_sessions > 0, "{policy}: no repairs");
            assert!(r.resilience.redirected > 0, "{policy}: no redirects");
            match degradation {
                Degradation::Stall => assert!(r.resilience.stall_minutes > 0.0),
                Degradation::SkipSegment => assert!(r.resilience.skipped_minutes > 0.0),
                Degradation::QualityDrop => unreachable!(),
            }
            reports.push(r);
        }
    }
    let static_lat = reports[0].mean_latency;
    let dynamic_lat = reports[2].mean_latency;
    assert!(
        dynamic_lat < static_lat,
        "dynamic {dynamic_lat} must strictly beat static {static_lat} under the same script"
    );
}

/// The full fault study is byte-identical across worker-thread counts.
#[test]
fn resilience_study_is_byte_identical_across_thread_counts() {
    let cfg = ResilienceStudyConfig {
        samples: 6,
        loss_rates: vec![0.05],
        seeds: vec![11, 23],
        control_horizon: Minutes(300.0),
        shift_at: Minutes(120.0),
        ..ResilienceStudyConfig::paper_defaults()
    };
    let runs: Vec<(String, String)> = [1usize, 2, 4]
        .iter()
        .map(|&threads| {
            let (study, snap) = resilience_study(&cfg, &Runner::new(threads)).unwrap();
            (
                serde_json::to_string(&study).unwrap(),
                serde_json::to_string(&snap).unwrap(),
            )
        })
        .collect();
    assert_eq!(runs[0], runs[1], "threads 1 vs 2 diverge");
    assert_eq!(runs[0], runs[2], "threads 1 vs 4 diverge");
}
