//! End-to-end hybrid-system integration: Zipf workload → split → SB
//! broadcast + MQL batching, with conservation and guarantee checks.

use skyscraper_broadcasting::batching::{BatchPolicy, HybridConfig};
use skyscraper_broadcasting::prelude::*;
use skyscraper_broadcasting::sim::system::{Request, SystemSim};
use skyscraper_broadcasting::sim::RunConfig;
use skyscraper_broadcasting::workload::{Catalog, Patience, PoissonArrivals, ZipfPopularity};

fn workload(
    titles: usize,
    rate: f64,
    horizon: f64,
    seed: u64,
) -> Vec<sb_workload::WorkloadRequest> {
    PoissonArrivals::new(rate, seed)
        .with_patience(Patience::Exponential(Minutes(8.0)))
        .generate(&ZipfPopularity::paper(titles), Minutes(horizon))
}

#[test]
fn broadcast_guarantee_is_load_independent() {
    // Triple the load: the broadcast half's worst latency must not move.
    let catalog = Catalog::paper_defaults(60);
    let cfg = HybridConfig {
        total_bandwidth: Mbps(600.0),
        popular: 10,
        width: Width::capped(52).unwrap(),
        policy: BatchPolicy::Mql,
        broadcast_fraction: 0.5,
    };
    let light = cfg.run(&catalog, &workload(60, 1.0, 300.0, 7)).unwrap();
    let heavy = cfg.run(&catalog, &workload(60, 9.0, 300.0, 7)).unwrap();
    assert_eq!(light.broadcast_worst_latency, heavy.broadcast_worst_latency);
    assert_eq!(light.broadcast_channels, heavy.broadcast_channels);
    // The batching half, by contrast, degrades.
    assert!(heavy.multicast.renege_rate() >= light.multicast.renege_rate());
}

#[test]
fn simulated_hot_clients_respect_the_promise() {
    let catalog = Catalog::paper_defaults(40);
    let cfg = HybridConfig {
        total_bandwidth: Mbps(450.0),
        popular: 10,
        width: Width::capped(12).unwrap(),
        policy: BatchPolicy::Fcfs,
        broadcast_fraction: 0.4,
    };
    let requests = workload(40, 4.0, 240.0, 11);
    let report = cfg.run(&catalog, &requests).unwrap();
    let plan = cfg.broadcast_plan(&catalog).unwrap();
    plan.validate(Mbps(450.0 * 0.4)).unwrap();

    let hot: Vec<Request> = requests
        .iter()
        .filter(|r| r.video < 10)
        .map(|r| Request {
            at: r.at,
            video: VideoId(r.video),
        })
        .collect();
    assert_eq!(hot.len(), report.broadcast_requests);
    let stats = SystemSim::new(&plan, Mbps(1.5), ClientPolicy::LatestFeasible)
        .execute(RunConfig::new(&hot))
        .unwrap()
        .summary;
    assert_eq!(stats.sessions, hot.len());
    assert!(stats.worst_latency <= report.broadcast_worst_latency);
}

#[test]
fn mql_vs_fcfs_on_the_cold_tail() {
    let catalog = Catalog::paper_defaults(80);
    let requests = workload(80, 6.0, 400.0, 3);
    let mk = |policy| HybridConfig {
        total_bandwidth: Mbps(500.0),
        popular: 10,
        width: Width::capped(52).unwrap(),
        policy,
        broadcast_fraction: 0.6,
    };
    let mql = mk(BatchPolicy::Mql).run(&catalog, &requests).unwrap();
    let fcfs = mk(BatchPolicy::Fcfs).run(&catalog, &requests).unwrap();
    // Same split, same stream; MQL serves at least roughly as many.
    assert_eq!(mql.multicast_channels, fcfs.multicast_channels);
    assert!(
        mql.multicast.served as f64 >= fcfs.multicast.served as f64 * 0.95,
        "MQL {} vs FCFS {}",
        mql.multicast.served,
        fcfs.multicast.served
    );
}

#[test]
fn prime_time_peak_only_hurts_the_batching_tail() {
    use skyscraper_broadcasting::workload::DiurnalArrivals;
    // A Gaussian prime-time surge (4× base) centred mid-run.
    let catalog = Catalog::paper_defaults(60);
    let requests = DiurnalArrivals {
        base_rate: 2.0,
        peak_boost: 8.0,
        peak_at: Minutes(300.0),
        peak_width: Minutes(60.0),
        day: None,
        patience: Patience::Exponential(Minutes(8.0)),
        seed: 21,
    }
    .generate(
        &skyscraper_broadcasting::workload::ZipfPopularity::paper(60),
        Minutes(600.0),
    );
    let cfg = HybridConfig {
        total_bandwidth: Mbps(600.0),
        popular: 10,
        width: Width::capped(52).unwrap(),
        policy: BatchPolicy::Mql,
        broadcast_fraction: 0.5,
    };
    let report = cfg.run(&catalog, &requests).unwrap();
    // Broadcast titles keep their guarantee through the surge…
    assert!(report.broadcast_worst_latency.value() < 0.2);
    let impatient_rate =
        report.broadcast_impatient as f64 / report.broadcast_requests.max(1) as f64;
    assert!(impatient_rate < 0.05, "{impatient_rate}");
    // …while the tail suffers: under the surge MQL reneges meaningfully.
    assert!(report.multicast.reneged > 0);
}
