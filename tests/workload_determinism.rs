//! Workload-generator determinism: a seeded generator is a pure function
//! of its configuration. These are regression pins — if an RNG draw is
//! ever reordered or a distribution swapped, the fingerprints move and
//! every seeded experiment in `EXPERIMENTS.md` silently changes meaning.

use skyscraper_broadcasting::units::Minutes;
use skyscraper_broadcasting::workload::arrivals::{
    DiurnalArrivals, Patience, PoissonArrivals, PopularityShift,
};
use skyscraper_broadcasting::workload::zipf::ZipfPopularity;

fn diurnal(seed: u64, day: Option<Minutes>) -> DiurnalArrivals {
    DiurnalArrivals {
        base_rate: 2.0,
        peak_boost: 6.0,
        peak_at: Minutes(300.0),
        peak_width: Minutes(60.0),
        day,
        patience: Patience::Fixed(Minutes(10.0)),
        seed,
    }
}

#[test]
fn poisson_stream_is_pinned_by_its_seed() {
    let z = ZipfPopularity::paper(25);
    let make = || {
        PoissonArrivals::new(6.0, 42)
            .with_patience(Patience::Exponential(Minutes(20.0)))
            .generate(&z, Minutes(500.0))
    };
    let a = make();
    // Same seed ⇒ the identical stream, compared as serialized bytes so
    // float representation changes are caught too.
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&make()).unwrap()
    );
    // Regression fingerprint (seed 42, rate 6/min, 25 titles, 500 min).
    assert_eq!(a.len(), 3043);
    assert_eq!(a.iter().map(|r| r.video).sum::<usize>(), 22661);
    assert!((a[0].at.value() - 0.034_236_685_345).abs() < 1e-9);
    assert!((a.last().unwrap().at.value() - 499.9793470696).abs() < 1e-9);
    // A different seed is a genuinely different stream.
    let b = PoissonArrivals::new(6.0, 43)
        .with_patience(Patience::Exponential(Minutes(20.0)))
        .generate(&z, Minutes(500.0));
    assert_ne!(a, b);
}

#[test]
fn diurnal_stream_is_pinned_across_the_day_boundary() {
    let z = ZipfPopularity::paper(25);
    let a = diurnal(42, Some(Minutes(1440.0))).generate(&z, Minutes(2880.0));
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&diurnal(42, Some(Minutes(1440.0))).generate(&z, Minutes(2880.0)))
            .unwrap()
    );
    // Regression fingerprint over two full days (one wrap).
    assert_eq!(a.len(), 7449);
    assert_eq!(a.iter().map(|r| r.video).sum::<usize>(), 54557);
    assert!((a[0].at.value() - 0.633_431_393_931).abs() < 1e-9);
    assert!((a.last().unwrap().at.value() - 2_879.990_066_892_769).abs() < 1e-9);
    // λ(t) wraps: the rate profile repeats exactly one day later.
    let gen = diurnal(42, Some(Minutes(1440.0)));
    for t in [0.0, 150.0, 300.0, 719.5, 1439.999] {
        assert!(
            (gen.rate_at(Minutes(t)) - gen.rate_at(Minutes(t + 1440.0))).abs() < 1e-12,
            "rate not periodic at t={t}"
        );
    }
    // Day 2 contains a second peak: clearly more arrivals around the
    // wrapped peak centre (1740) than in the trough before it.
    let count = |lo: f64, hi: f64| {
        a.iter()
            .filter(|r| r.at.value() >= lo && r.at.value() < hi)
            .count()
    };
    assert!(count(1680.0, 1800.0) > 2 * count(1440.0, 1560.0));
}

#[test]
fn popularity_shift_reuses_the_base_stream_bit_for_bit() {
    // The control-plane studies depend on this: static and dynamic
    // policies must face the same arrivals, patience draws and (up to
    // rotation) title choices.
    let z = ZipfPopularity::paper(40);
    let base = PoissonArrivals::new(5.0, 7).with_patience(Patience::Exponential(Minutes(30.0)));
    let shift = PopularityShift {
        arrivals: base.clone(),
        shift_at: Minutes(200.0),
        rotate: 20,
    };
    let plain = base.generate(&z, Minutes(400.0));
    let shifted = shift.generate(&z, Minutes(400.0));
    assert_eq!(plain.len(), shifted.len());
    for (p, s) in plain.iter().zip(&shifted) {
        assert_eq!(p.at, s.at);
        assert_eq!(p.patience, s.patience);
        let expect = if p.at < Minutes(200.0) {
            p.video
        } else {
            (p.video + 20) % 40
        };
        assert_eq!(expect, s.video);
    }
    // And the composed generator is itself reproducible.
    assert_eq!(shifted, shift.generate(&z, Minutes(400.0)));
}
