//! The paper's headline quantitative claims, checked end to end through
//! the public facade.

use skyscraper_broadcasting::prelude::*;

fn cfg(b: f64) -> SystemConfig {
    SystemConfig::paper_defaults(Mbps(b))
}

fn sb(w: u64) -> Skyscraper {
    Skyscraper::with_width(Width::capped(w).unwrap())
}

/// Abstract: "With SB, we are able to achieve the low latency of PB while
/// using only 20% of the buffer space required by PPB."
///
/// Concretely (§5.4's framing): at each bandwidth, the *smallest* width
/// whose latency already beats PPB:b needs only ≈20–25 % of PPB:b's
/// buffer.
#[test]
fn abstract_claim_fifth_of_ppb_buffer() {
    use skyscraper_broadcasting::core::width::candidate_widths;
    for b in [320.0, 450.0, 600.0] {
        let c = cfg(b);
        let ppb = PermutationPyramid::b().metrics(&c).unwrap();
        let k = Skyscraper::unbounded().channels_per_video(&c).unwrap();
        let w = candidate_widths(k)
            .into_iter()
            .find(|&w| sb(w).metrics(&c).unwrap().access_latency <= ppb.access_latency)
            .expect("some width matches PPB:b latency");
        let m = sb(w).metrics(&c).unwrap();
        let ratio = m.buffer_requirement.value() / ppb.buffer_requirement.value();
        assert!(
            ratio < 0.30,
            "B={b}: W={w} matches PPB:b latency with buffer ratio {ratio:.3}"
        );
    }
}

/// The "low latency of PB" half of the abstract: at high bandwidth the
/// (un)capped scheme reaches the same sub-second regime PB lives in.
#[test]
fn abstract_claim_low_latency_of_pb() {
    let c = cfg(600.0);
    let pb = PyramidBroadcasting::a().metrics(&c).unwrap();
    let best_sb = Skyscraper::unbounded().metrics(&c).unwrap();
    assert!(pb.access_latency.value() < 0.01, "{}", pb.access_latency);
    assert!(
        best_sb.access_latency.value() < 0.01,
        "{}",
        best_sb.access_latency
    );
}

/// §6: "While PB and PPB must make trade-off between access latency,
/// storage costs, and disk bandwidth requirement, the proposed scheme
/// allows the flexibility to win on all three metrics."
///
/// Checked: at every studied bandwidth and against each PPB variant there
/// exists a width whose SB instance strictly wins on latency and buffer,
/// with "similar" client disk bandwidth (§5.2: "SB and PPB have similar
/// disk bandwidth requirements" — within 5 %; SB's flat 3·b can sit a hair
/// above PPB's b + B/(KMP) in some regimes).
#[test]
fn sb_wins_all_three_metrics_vs_ppb() {
    use skyscraper_broadcasting::core::width::candidate_widths;
    for b in [320.0, 400.0, 500.0, 600.0] {
        let c = cfg(b);
        let k = Skyscraper::unbounded().channels_per_video(&c).unwrap();
        for (tag, ppb) in [
            ("a", PermutationPyramid::a().metrics(&c).unwrap()),
            ("b", PermutationPyramid::b().metrics(&c).unwrap()),
        ] {
            let dominating = candidate_widths(k).into_iter().find(|&w| {
                let m = sb(w).metrics(&c).unwrap();
                m.access_latency <= ppb.access_latency
                    && m.buffer_requirement <= ppb.buffer_requirement
                    && m.client_io_bandwidth.value()
                        <= ppb.client_io_bandwidth.value() * 1.05 + 1e-9
            });
            assert!(
                dominating.is_some(),
                "B={b}: no width dominates PPB:{tag} on all three metrics"
            );
        }
    }
}

/// §5.4: "when B is about 320 Mbits/sec, PPB:b requires only 150 MBytes or
/// so of disk space. Unfortunately, its access latency … is as high as
/// five minutes. Under the same situation, SB … with W = 2 has smaller
/// access latency and requires only 33 MBytes of disk space."
#[test]
fn section_5_4_spot_comparison_at_320() {
    let c = cfg(320.0);
    let ppb_b = PermutationPyramid::b().metrics(&c).unwrap();
    let sb2 = sb(2).metrics(&c).unwrap();
    assert!((ppb_b.access_latency.value() - 5.0).abs() < 0.5);
    assert!((ppb_b.buffer_requirement.to_mbytes().value() - 150.0).abs() < 20.0);
    assert!(sb2.access_latency < ppb_b.access_latency);
    assert!((sb2.buffer_requirement.to_mbytes().value() - 33.0).abs() < 1.5);
}

/// §2: PB's client-side costs — disk bandwidth approaching 55.36·b and a
/// buffer over 80 % of the video — are what SB eliminates.
#[test]
fn pb_client_costs_reproduced() {
    let c = cfg(600.0);
    let pb = PyramidBroadcasting::a().metrics(&c).unwrap();
    assert!(pb.client_io_bandwidth.value() / 1.5 > 25.0);
    assert!(pb.buffer_requirement.value() / c.video_size().value() > 0.75);
    let sb52 = sb(52).metrics(&c).unwrap();
    assert!(sb52.client_io_bandwidth.value() / 1.5 <= 3.0 + 1e-9);
    assert!(sb52.buffer_requirement.value() / c.video_size().value() < 0.05);
}

/// §1: staggered broadcast latency improves only linearly in B, while
/// SB's improves superlinearly until the width cap binds.
#[test]
fn linear_vs_superlinear_latency_scaling() {
    let stag_300 = StaggeredBroadcasting.metrics(&cfg(300.0)).unwrap();
    let stag_600 = StaggeredBroadcasting.metrics(&cfg(600.0)).unwrap();
    let gain_stag = stag_300.access_latency.value() / stag_600.access_latency.value();
    assert!((gain_stag - 2.0).abs() < 1e-9, "staggered gain {gain_stag}");

    let sb_300 = Skyscraper::unbounded().metrics(&cfg(300.0)).unwrap();
    let sb_600 = Skyscraper::unbounded().metrics(&cfg(600.0)).unwrap();
    let gain_sb = sb_300.access_latency.value() / sb_600.access_latency.value();
    assert!(
        gain_sb > 100.0,
        "uncapped SB gain {gain_sb} (exponential in K)"
    );
}
