//! End-to-end contract of the online control plane (the §1 "hybrid
//! approach", made adaptive): under a popularity shift the dynamic
//! allocator must beat the frozen paper configuration, the static policy
//! must reproduce it exactly, and everything must stay deterministic.

use skyscraper_broadcasting::analysis::control_study::{
    render_shift_study, shift_study, ShiftStudyConfig,
};
use skyscraper_broadcasting::analysis::runner::Runner;
use skyscraper_broadcasting::control::{ControlPolicy, ControlledSim};
use skyscraper_broadcasting::sim::RunConfig;
use skyscraper_broadcasting::units::Minutes;
use skyscraper_broadcasting::workload::arrivals::{Patience, PoissonArrivals, PopularityShift};
use skyscraper_broadcasting::workload::catalog::Catalog;
use skyscraper_broadcasting::workload::zipf::ZipfPopularity;

fn study_config() -> ShiftStudyConfig {
    ShiftStudyConfig {
        horizon: Minutes(400.0),
        seeds: vec![11, 23],
        ..ShiftStudyConfig::paper_defaults()
    }
}

fn shifted_requests(
    cfg: &ShiftStudyConfig,
    seed: u64,
) -> Vec<skyscraper_broadcasting::workload::arrivals::WorkloadRequest> {
    let shift = PopularityShift {
        arrivals: PoissonArrivals::new(cfg.rate, seed)
            .with_patience(Patience::Exponential(cfg.mean_patience)),
        shift_at: cfg.shift_at,
        rotate: cfg.rotate,
    };
    shift.generate(&ZipfPopularity::paper(cfg.control.titles), cfg.horizon)
}

#[test]
fn dynamic_control_beats_static_under_a_popularity_shift() {
    let (study, snap) = shift_study(&study_config(), &Runner::serial()).unwrap();
    assert!(
        study.dynamic_mean_latency < study.static_mean_latency,
        "dynamic {} should beat static {}",
        study.dynamic_mean_latency,
        study.static_mean_latency
    );
    assert!(study.dynamic_served >= study.static_served);
    // The improvement comes from actual reallocations, visible in metrics.
    assert!(snap.counter_total("control_reallocations_total") > 0);
    // The rendered table carries both policies for every seed.
    let table = render_shift_study(&study);
    assert!(table.contains("static") && table.contains("dynamic"));
}

#[test]
fn static_policy_never_moves_a_channel() {
    let cfg = study_config();
    let catalog = Catalog::paper_defaults(cfg.control.titles);
    let sim = ControlledSim::new(cfg.control, &catalog).unwrap();
    let reqs = shifted_requests(&cfg, 11);
    let report = sim
        .execute(ControlPolicy::Static, RunConfig::new(&reqs))
        .unwrap()
        .summary;
    assert_eq!(report.swaps_planned, 0);
    assert_eq!(report.swaps_committed, 0);
    assert_eq!(
        report.final_hot,
        (0..cfg.control.hot_slots).collect::<Vec<_>>()
    );
    assert_eq!(report.accounted(), reqs.len());
}

#[test]
fn shift_study_snapshot_is_byte_identical_across_thread_counts() {
    let cfg = study_config();
    let (serial_study, serial_snap) = shift_study(&cfg, &Runner::serial()).unwrap();
    for threads in [2, 8] {
        let (study, snap) = shift_study(&cfg, &Runner::new(threads)).unwrap();
        assert_eq!(
            serde_json::to_string_pretty(&serial_study).unwrap(),
            serde_json::to_string_pretty(&study).unwrap(),
            "{threads}-thread study diverged"
        );
        assert_eq!(
            serde_json::to_string_pretty(&serial_snap).unwrap(),
            serde_json::to_string_pretty(&snap).unwrap(),
            "{threads}-thread snapshot diverged"
        );
    }
}

#[test]
fn policies_are_distinguishable_inside_one_merged_snapshot() {
    let (study, snap) = shift_study(&study_config(), &Runner::serial()).unwrap();
    // Both policies' latency histograms live side by side in the merged
    // snapshot, separated by the appended policy label.
    let count_for = |policy: &str| -> u64 {
        ["class=broadcast", "class=pool"]
            .iter()
            .filter_map(|class| {
                snap.histogram(
                    "control_latency_minutes",
                    &format!("{class},policy={policy}"),
                )
            })
            .map(|h| h.count)
            .sum()
    };
    let served_static = count_for("static");
    let served_dynamic = count_for("dynamic");
    assert_eq!(served_static as usize, study.static_served);
    assert_eq!(served_dynamic as usize, study.dynamic_served);
    assert!(served_static > 0 && served_dynamic >= served_static);
}

#[test]
fn a_rerun_into_a_fresh_registry_is_identical() {
    let cfg = study_config();
    let catalog = Catalog::paper_defaults(cfg.control.titles);
    let sim = ControlledSim::new(cfg.control, &catalog).unwrap();
    let reqs = shifted_requests(&cfg, 23);
    let run = || {
        let out = sim
            .execute(ControlPolicy::Dynamic, RunConfig::new(&reqs))
            .unwrap();
        (
            serde_json::to_string(&out.summary).unwrap(),
            serde_json::to_string(&out.snapshot).unwrap(),
        )
    };
    assert_eq!(run(), run());
}
