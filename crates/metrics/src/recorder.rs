//! The write-side seam the simulators record through.
//!
//! Simulation code takes `&mut dyn Recorder` so the same run can be
//! driven bare (a [`NullRecorder`], zero cost, the historical output
//! paths) or instrumented (a [`crate::Registry`] that snapshots into the
//! run's report). Keeping the trait object at the call boundary — rather
//! than a generic — keeps every downstream signature monomorphic and the
//! public APIs unchanged.

use crate::registry::Registry;

/// A sink for simulation events.
pub trait Recorder {
    /// Add `by` to the counter `name{labels}`.
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64);
    /// Raise the gauge `name{labels}` to `v` if higher.
    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64);
    /// Record `v` into the histogram `name{labels}`.
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64);
}

impl Recorder for Registry {
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        Registry::incr(self, name, labels, by);
    }
    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        Registry::gauge_max(self, name, labels, v);
    }
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        Registry::observe(self, name, labels, v);
    }
}

/// Discards everything — the un-instrumented paths' recorder.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn incr(&mut self, _name: &str, _labels: &[(&str, &str)], _by: u64) {}
    fn gauge_max(&mut self, _name: &str, _labels: &[(&str, &str)], _v: f64) {}
    fn observe(&mut self, _name: &str, _labels: &[(&str, &str)], _v: f64) {}
}

/// Duplicates every event into two recorders, `a` first.
///
/// The sharded simulation core records into a private [`Registry`] (the
/// run's snapshot) while simultaneously feeding any caller-supplied
/// recorder; the tee is what keeps both sides seeing the identical event
/// stream.
pub struct TeeRecorder<'a> {
    /// First recipient of every event.
    pub a: &'a mut dyn Recorder,
    /// Second recipient of every event.
    pub b: &'a mut dyn Recorder,
}

impl Recorder for TeeRecorder<'_> {
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.a.incr(name, labels, by);
        self.b.incr(name, labels, by);
    }
    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.a.gauge_max(name, labels, v);
        self.b.gauge_max(name, labels, v);
    }
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.a.observe(name, labels, v);
        self.b.observe(name, labels, v);
    }
}

/// One recorded metric mutation.
#[derive(Debug, Clone, PartialEq)]
enum OpKind {
    Incr(u64),
    GaugeMax(f64),
    Observe(f64),
}

/// One buffered [`Recorder`] event: series key plus mutation.
#[derive(Debug, Clone, PartialEq)]
struct Op {
    name: String,
    labels: Vec<(String, String)>,
    kind: OpKind,
}

/// A recorder that buffers its event stream for deterministic replay.
///
/// Parallel shards cannot share one `&mut dyn Recorder`; instead each
/// shard tees into a private [`OpLog`], and the caller [`OpLog::replay`]s
/// the logs *in shard order* into the destination recorder after the
/// join. Replay preserves per-series event order (each series lives on
/// exactly one shard in the sharded simulation), so the destination ends
/// in the same state a serial run would have produced.
#[derive(Debug, Default, Clone)]
pub struct OpLog {
    ops: Vec<Op>,
}

impl OpLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no events were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replay the buffered events, in recording order, into `rec`.
    pub fn replay(&self, rec: &mut dyn Recorder) {
        for op in &self.ops {
            let labels: Vec<(&str, &str)> = op
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            match op.kind {
                OpKind::Incr(by) => rec.incr(&op.name, &labels, by),
                OpKind::GaugeMax(v) => rec.gauge_max(&op.name, &labels, v),
                OpKind::Observe(v) => rec.observe(&op.name, &labels, v),
            }
        }
    }

    fn push(&mut self, name: &str, labels: &[(&str, &str)], kind: OpKind) {
        self.ops.push(Op {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind,
        });
    }
}

impl Recorder for OpLog {
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        self.push(name, labels, OpKind::Incr(by));
    }
    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.push(name, labels, OpKind::GaugeMax(v));
    }
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.push(name, labels, OpKind::Observe(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_into(rec: &mut dyn Recorder) {
        rec.incr("events", &[("kind", "a")], 2);
        rec.gauge_max("peak", &[], 4.5);
        rec.observe("lat", &[], 0.7);
    }

    #[test]
    fn registry_implements_recorder() {
        let mut r = Registry::new();
        record_into(&mut r);
        let s = r.snapshot();
        assert_eq!(s.counter("events", "kind=a"), Some(2));
        assert_eq!(s.histogram("lat", "").unwrap().count, 1);
    }

    #[test]
    fn null_recorder_discards() {
        let mut n = NullRecorder;
        record_into(&mut n);
    }

    #[test]
    fn tee_feeds_both_sides_identically() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        {
            let mut tee = TeeRecorder {
                a: &mut a,
                b: &mut b,
            };
            record_into(&mut tee);
        }
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap()
        );
    }

    #[test]
    fn oplog_replay_reproduces_the_direct_registry() {
        let mut direct = Registry::new();
        record_into(&mut direct);
        let mut log = OpLog::new();
        record_into(&mut log);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        let mut replayed = Registry::new();
        log.replay(&mut replayed);
        assert_eq!(
            serde_json::to_string(&direct.snapshot()).unwrap(),
            serde_json::to_string(&replayed.snapshot()).unwrap()
        );
    }
}
