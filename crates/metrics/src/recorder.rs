//! The write-side seam the simulators record through.
//!
//! Simulation code takes `&mut dyn Recorder` so the same run can be
//! driven bare (a [`NullRecorder`], zero cost, the historical output
//! paths) or instrumented (a [`crate::Registry`] that snapshots into the
//! run's report). Keeping the trait object at the call boundary — rather
//! than a generic — keeps every downstream signature monomorphic and the
//! public APIs unchanged.

use crate::registry::Registry;

/// A sink for simulation events.
pub trait Recorder {
    /// Add `by` to the counter `name{labels}`.
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64);
    /// Raise the gauge `name{labels}` to `v` if higher.
    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64);
    /// Record `v` into the histogram `name{labels}`.
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64);
}

impl Recorder for Registry {
    fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        Registry::incr(self, name, labels, by);
    }
    fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        Registry::gauge_max(self, name, labels, v);
    }
    fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        Registry::observe(self, name, labels, v);
    }
}

/// Discards everything — the un-instrumented paths' recorder.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn incr(&mut self, _name: &str, _labels: &[(&str, &str)], _by: u64) {}
    fn gauge_max(&mut self, _name: &str, _labels: &[(&str, &str)], _v: f64) {}
    fn observe(&mut self, _name: &str, _labels: &[(&str, &str)], _v: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_into(rec: &mut dyn Recorder) {
        rec.incr("events", &[("kind", "a")], 2);
        rec.gauge_max("peak", &[], 4.5);
        rec.observe("lat", &[], 0.7);
    }

    #[test]
    fn registry_implements_recorder() {
        let mut r = Registry::new();
        record_into(&mut r);
        let s = r.snapshot();
        assert_eq!(s.counter("events", "kind=a"), Some(2));
        assert_eq!(s.histogram("lat", "").unwrap().count, 1);
    }

    #[test]
    fn null_recorder_discards() {
        let mut n = NullRecorder;
        record_into(&mut n);
    }
}
