//! # Deterministic metrics for the simulator workspace
//!
//! An observability layer with one hard constraint inherited from the
//! experiment runner: **identical inputs must produce identical bytes**,
//! whatever the worker-pool size. Consequently this crate has none of the
//! usual metrics machinery — no clocks, no atomics, no sampling. A
//! [`Registry`] is a plain value owned by whoever is simulating; parallel
//! work shards record into private registries whose [`Snapshot`]s are
//! merged *in item-index order* by the caller, exactly like the runner
//! reassembles its results.
//!
//! Three instrument kinds, all keyed by `(family name, label set)`:
//!
//! * **counters** — monotone `u64` event counts (sessions, defections);
//! * **gauges** — high-water marks, merged by `max` (peak active
//!   sessions, peak busy channels);
//! * **histograms** — fixed, pre-declared bucket bounds plus exact
//!   `count`/`sum`, so merging is bucket-wise addition and the mean is
//!   exact (latency, waits, buffer occupancy).
//!
//! Families and series are stored in `BTreeMap`s: iteration (and thus
//! serialization) order is the sorted label order, never insertion order.
//! The [`Recorder`] trait is the write-side seam threaded through the
//! simulators; [`NullRecorder`] makes instrumentation free on the
//! un-instrumented paths.

#![forbid(unsafe_code)]

pub mod recorder;
pub mod registry;

pub use recorder::{NullRecorder, OpLog, Recorder, TeeRecorder};
pub use registry::{
    FamilySnapshot, HistogramValue, MetricKind, MetricValue, Registry, SeriesSnapshot, Snapshot,
    DEFAULT_BUCKETS,
};
