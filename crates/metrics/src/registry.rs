//! The metric store: labeled families of counters, gauges and histograms,
//! and the serializable [`Snapshot`] they export.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Default histogram bucket upper bounds (minutes-scale quantities).
///
/// A final `+∞` bucket is always implied, so `counts.len()` is
/// `bounds.len() + 1`.
pub const DEFAULT_BUCKETS: [f64; 10] = [0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 120.0];

/// What kind of instrument a family holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// High-water mark, merged by `max`.
    Gauge,
    /// Fixed-bucket distribution with exact count and sum.
    Histogram,
}

/// A histogram over fixed bucket bounds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramValue {
    /// Bucket upper bounds, strictly increasing; a `+∞` bucket is implied.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of observed values.
    pub sum: f64,
}

impl HistogramValue {
    /// An empty histogram over the given bounds.
    ///
    /// # Panics
    /// Panics unless `bounds` is non-empty, finite and strictly increasing.
    #[must_use]
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Fold another histogram into this one (bucket-wise addition).
    ///
    /// # Panics
    /// Panics if the bucket bounds differ — merging histograms of
    /// different shapes is a programming error, not data.
    pub fn merge(&mut self, other: &Self) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds must match");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Exact mean of the observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One series' current value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramValue),
}

#[derive(Debug, Clone)]
struct Family {
    kind: MetricKind,
    buckets: Vec<f64>,
    series: BTreeMap<String, MetricValue>,
}

/// The in-process metric store.
///
/// Plain value semantics by design: no interior mutability, no
/// global state. Each simulation shard owns its registry; cross-shard
/// aggregation happens through [`Snapshot::merge`] in a caller-chosen
/// (index) order.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: BTreeMap<String, Family>,
}

/// Canonical label-set key: `k=v` pairs joined by `,` in caller order.
fn label_key(labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-declare histogram bucket bounds for `name` (otherwise
    /// [`DEFAULT_BUCKETS`] apply on first observation).
    ///
    /// # Panics
    /// Panics if `name` already exists with a different kind or bounds.
    pub fn declare_histogram(&mut self, name: &str, bounds: &[f64]) {
        let f = self.families.entry(name.to_string()).or_insert(Family {
            kind: MetricKind::Histogram,
            buckets: bounds.to_vec(),
            series: BTreeMap::new(),
        });
        assert_eq!(f.kind, MetricKind::Histogram, "{name} is not a histogram");
        assert_eq!(f.buckets, bounds, "{name} re-declared with other bounds");
    }

    fn family(&mut self, name: &str, kind: MetricKind) -> &mut Family {
        let f = self.families.entry(name.to_string()).or_insert(Family {
            kind,
            buckets: DEFAULT_BUCKETS.to_vec(),
            series: BTreeMap::new(),
        });
        assert_eq!(f.kind, kind, "metric {name} used as two different kinds");
        f
    }

    /// Add `by` to the counter `name{labels}`.
    pub fn incr(&mut self, name: &str, labels: &[(&str, &str)], by: u64) {
        let key = label_key(labels);
        let f = self.family(name, MetricKind::Counter);
        match f.series.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += by,
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Raise the gauge `name{labels}` to `v` if `v` is higher.
    pub fn gauge_max(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let f = self.family(name, MetricKind::Gauge);
        match f
            .series
            .entry(key)
            .or_insert(MetricValue::Gauge(f64::NEG_INFINITY))
        {
            MetricValue::Gauge(g) => *g = g.max(v),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Record `v` into the histogram `name{labels}`.
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let f = self.family(name, MetricKind::Histogram);
        let bounds = f.buckets.clone();
        match f
            .series
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(HistogramValue::new(&bounds)))
        {
            MetricValue::Histogram(h) => h.observe(v),
            _ => unreachable!("kind checked by family()"),
        }
    }

    /// Rebuild a registry from a [`Snapshot`], the exact inverse of
    /// [`Registry::snapshot`]: `Registry::from_snapshot(&r.snapshot())`
    /// observes like `r` itself from that point on, bit for bit.
    ///
    /// This is the checkpoint/restore path's primitive — a crashed shard
    /// resumes its metric state mid-run and keeps accumulating into the
    /// *same* counters, gauges and float sums, so the final snapshot is
    /// byte-identical to an uninterrupted run. (Merging a checkpoint
    /// snapshot with a freshly-recorded tail would not be: float sums
    /// re-associate.)
    ///
    /// Histogram families recover their bucket bounds from the first
    /// series' stored [`HistogramValue::bounds`]; a histogram family with
    /// no series yet falls back to [`DEFAULT_BUCKETS`], which is the only
    /// shape the simulation core ever declares.
    #[must_use]
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let mut families = BTreeMap::new();
        for f in &snap.families {
            let buckets = f
                .series
                .iter()
                .find_map(|s| match &s.value {
                    MetricValue::Histogram(h) => Some(h.bounds.clone()),
                    _ => None,
                })
                .unwrap_or_else(|| DEFAULT_BUCKETS.to_vec());
            families.insert(
                f.name.clone(),
                Family {
                    kind: f.kind,
                    buckets,
                    series: f
                        .series
                        .iter()
                        .map(|s| (s.labels.clone(), s.value.clone()))
                        .collect(),
                },
            );
        }
        Self { families }
    }

    /// Export the registry as a serializable, mergeable [`Snapshot`].
    /// Families and series appear in sorted-name order — the same bytes
    /// however the registry was filled.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            families: self
                .families
                .iter()
                .map(|(name, f)| FamilySnapshot {
                    name: name.clone(),
                    kind: f.kind,
                    series: f
                        .series
                        .iter()
                        .map(|(labels, value)| SeriesSnapshot {
                            labels: labels.clone(),
                            value: value.clone(),
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One series inside a [`FamilySnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Canonical label string (`k=v` pairs joined by `,`).
    pub labels: String,
    /// The series value.
    pub value: MetricValue,
}

/// One metric family inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilySnapshot {
    /// Family name.
    pub name: String,
    /// Instrument kind.
    pub kind: MetricKind,
    /// Series in sorted label order.
    pub series: Vec<SeriesSnapshot>,
}

/// A point-in-time export of a [`Registry`]: sorted, serializable, and
/// mergeable. Merging is commutative for counters and gauges and
/// order-independent for histograms of equal bounds, but callers should
/// still merge in a deterministic (index) order so float sums accumulate
/// identically run to run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Families in sorted name order.
    pub families: Vec<FamilySnapshot>,
}

impl Snapshot {
    /// Fold `other` into `self`: counters add, gauges take the max,
    /// histograms add bucket-wise. Families or series present on one side
    /// only are kept as-is.
    ///
    /// # Panics
    /// Panics when the same series has different kinds or histogram
    /// bounds on the two sides.
    pub fn merge(&mut self, other: &Snapshot) {
        for of in &other.families {
            match self.families.binary_search_by(|f| f.name.cmp(&of.name)) {
                Err(pos) => self.families.insert(pos, of.clone()),
                Ok(pos) => {
                    let f = &mut self.families[pos];
                    assert_eq!(f.kind, of.kind, "family {} has two kinds", f.name);
                    for os in &of.series {
                        match f.series.binary_search_by(|s| s.labels.cmp(&os.labels)) {
                            Err(pos) => f.series.insert(pos, os.clone()),
                            Ok(pos) => match (&mut f.series[pos].value, &os.value) {
                                (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                                (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = a.max(*b),
                                (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                                    a.merge(b);
                                }
                                _ => panic!("series {}{{{}}} has two kinds", f.name, os.labels),
                            },
                        }
                    }
                }
            }
        }
    }

    /// Merge an ordered sequence of snapshots (index order = determinism).
    #[must_use]
    pub fn merged(parts: impl IntoIterator<Item = Snapshot>) -> Snapshot {
        let mut out = Snapshot::default();
        for p in parts {
            out.merge(&p);
        }
        out
    }

    /// Look up a family by name.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families
            .binary_search_by(|f| f.name.cmp(&name.to_string()))
            .ok()
            .map(|i| &self.families[i])
    }

    /// A counter series' value, if present.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &str) -> Option<u64> {
        match self.series_value(name, labels)? {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        }
    }

    /// Sum of every series of a counter family (0 when absent).
    #[must_use]
    pub fn counter_total(&self, name: &str) -> u64 {
        self.family(name).map_or(0, |f| {
            f.series
                .iter()
                .map(|s| match &s.value {
                    MetricValue::Counter(c) => *c,
                    _ => 0,
                })
                .sum()
        })
    }

    /// A histogram series, if present.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&HistogramValue> {
        match self.series_value(name, labels)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    fn series_value(&self, name: &str, labels: &str) -> Option<&MetricValue> {
        let f = self.family(name)?;
        f.series
            .binary_search_by(|s| s.labels.as_str().cmp(labels))
            .ok()
            .map(|i| &f.series[i].value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_sorted() {
        let mut r = Registry::new();
        r.incr("sessions", &[("video", "2")], 1);
        r.incr("sessions", &[("video", "0")], 2);
        r.incr("sessions", &[("video", "2")], 3);
        let s = r.snapshot();
        let f = s.family("sessions").unwrap();
        assert_eq!(f.series.len(), 2);
        assert_eq!(f.series[0].labels, "video=0");
        assert_eq!(s.counter("sessions", "video=2"), Some(4));
        assert_eq!(s.counter_total("sessions"), 6);
    }

    #[test]
    fn from_snapshot_resumes_recording_bit_for_bit() {
        // Record a prefix, snapshot, restore, record the suffix — the
        // result must equal recording the whole stream into one registry.
        // The values are chosen so float-sum association matters.
        let obs = [0.1f64, 0.2, 0.7, 1e-9, 3.3, 0.001, 2.2];
        let mut whole = Registry::new();
        for (i, &v) in obs.iter().enumerate() {
            whole.incr("n", &[("k", "a")], i as u64 + 1);
            whole.observe("lat", &[("k", "a")], v);
            whole.gauge_max("peak", &[], v);
        }
        let mut prefix = Registry::new();
        for (i, &v) in obs.iter().take(3).enumerate() {
            prefix.incr("n", &[("k", "a")], i as u64 + 1);
            prefix.observe("lat", &[("k", "a")], v);
            prefix.gauge_max("peak", &[], v);
        }
        let mut resumed = Registry::from_snapshot(&prefix.snapshot());
        for (i, &v) in obs.iter().enumerate().skip(3) {
            resumed.incr("n", &[("k", "a")], i as u64 + 1);
            resumed.observe("lat", &[("k", "a")], v);
            resumed.gauge_max("peak", &[], v);
        }
        assert_eq!(whole.snapshot(), resumed.snapshot());
        // Exact round trip of the snapshot itself, including the float
        // sum, which a merge-based restore would re-associate.
        assert_eq!(
            Registry::from_snapshot(&whole.snapshot()).snapshot(),
            whole.snapshot()
        );
    }

    #[test]
    fn gauge_is_high_water_mark() {
        let mut r = Registry::new();
        r.gauge_max("peak", &[], 3.0);
        r.gauge_max("peak", &[], 1.0);
        let s = r.snapshot();
        assert_eq!(
            s.family("peak").unwrap().series[0].value,
            MetricValue::Gauge(3.0)
        );
    }

    #[test]
    fn histogram_buckets_count_and_mean() {
        let mut h = HistogramValue::new(&[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.mean() - 14.1).abs() < 1e-12);
    }

    #[test]
    fn snapshot_bytes_independent_of_insertion_order() {
        let mut a = Registry::new();
        a.incr("x", &[("v", "1")], 1);
        a.incr("y", &[], 1);
        let mut b = Registry::new();
        b.incr("y", &[], 1);
        b.incr("x", &[("v", "1")], 1);
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap()
        );
    }

    #[test]
    fn merge_adds_counters_and_histograms_maxes_gauges() {
        let mut a = Registry::new();
        a.incr("c", &[], 1);
        a.gauge_max("g", &[], 2.0);
        a.observe("h", &[], 0.2);
        let mut b = Registry::new();
        b.incr("c", &[], 2);
        b.gauge_max("g", &[], 1.0);
        b.observe("h", &[], 7.0);
        b.incr("only_b", &[], 5);
        let merged = Snapshot::merged([a.snapshot(), b.snapshot()]);
        assert_eq!(merged.counter("c", ""), Some(3));
        assert_eq!(merged.counter("only_b", ""), Some(5));
        assert_eq!(
            merged.family("g").unwrap().series[0].value,
            MetricValue::Gauge(2.0)
        );
        let h = merged.histogram("h", "").unwrap();
        assert_eq!(h.count, 2);
        assert!((h.sum - 7.2).abs() < 1e-12);
    }

    #[test]
    fn merge_order_of_equal_shards_is_immaterial() {
        let mut a = Registry::new();
        a.observe("h", &[], 1.0);
        let mut b = Registry::new();
        b.observe("h", &[], 2.0);
        let ab = Snapshot::merged([a.snapshot(), b.snapshot()]);
        let ba = Snapshot::merged([b.snapshot(), a.snapshot()]);
        assert_eq!(
            serde_json::to_string(&ab).unwrap(),
            serde_json::to_string(&ba).unwrap()
        );
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut r = Registry::new();
        r.incr("c", &[("k", "v")], 3);
        r.observe("h", &[], 0.3);
        r.gauge_max("g", &[], 9.5);
        let s = r.snapshot();
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    #[should_panic(expected = "two different kinds")]
    fn kind_confusion_panics() {
        let mut r = Registry::new();
        r.incr("m", &[], 1);
        r.observe("m", &[], 1.0);
    }

    #[test]
    #[should_panic(expected = "bounds must match")]
    fn histogram_bound_mismatch_panics() {
        let mut a = HistogramValue::new(&[1.0]);
        let b = HistogramValue::new(&[2.0]);
        a.merge(&b);
    }
}
