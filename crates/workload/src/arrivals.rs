//! Poisson request arrivals and viewer patience.
//!
//! §1's batching argument hinges on request dynamics: "requests by
//! multiple clients for the same video arriving within a short time
//! duration can be batched together", and bounded-latency broadcast "can
//! generally influence the reneging behavior of clients". We model
//! arrivals as a homogeneous Poisson process (exponential inter-arrival
//! times) with Zipf-distributed video choice, and reneging as a patience
//! threshold: a viewer deserts if service does not begin within their
//! patience.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use crate::zipf::ZipfPopularity;

/// One generated viewer request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRequest {
    /// Arrival time.
    pub at: Minutes,
    /// Requested title (popularity rank, 0-based).
    pub video: usize,
    /// How long this viewer will wait before reneging.
    pub patience: Minutes,
}

/// Viewer patience model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Patience {
    /// Viewers never desert.
    Infinite,
    /// Every viewer waits at most this long.
    Fixed(Minutes),
    /// Exponentially distributed patience with the given mean — the
    /// standard reneging model of the batching literature. Draws are
    /// clamped at [`MAX_PATIENCE_FACTOR`] × mean.
    Exponential(Minutes),
}

/// The clamp on exponential patience draws, as a multiple of the mean.
///
/// The uniform behind a draw comes from `gen_range(f64::MIN_POSITIVE..
/// 1.0)`, and `-ln(f64::MIN_POSITIVE) ≈ 708.4` — a viewer nominally
/// willing to wait seven hundred mean-patiences. Draws are clamped at
/// this documented multiple instead. A clamp fires with probability
/// `e⁻⁶⁴` (≈ 1.6·10⁻²⁸), so every published stream is unchanged; the
/// tail simply cannot drift past the documented bound any more.
pub const MAX_PATIENCE_FACTOR: f64 = 64.0;

/// One exponential patience value from the uniform `u ∈ (0, 1)`:
/// `min(-ln u, MAX_PATIENCE_FACTOR) × mean`. Shared by the stateful
/// generators ([`Patience::draw`](Patience)) and the per-index
/// [`GridArrivals`] path, so both tails clamp identically.
fn exponential_patience(mean: Minutes, u: f64) -> Minutes {
    Minutes((-u.ln()).min(MAX_PATIENCE_FACTOR) * mean.value())
}

impl Patience {
    fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> Minutes {
        match *self {
            Patience::Infinite => Minutes(f64::INFINITY),
            Patience::Fixed(m) => m,
            Patience::Exponential(mean) => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                exponential_patience(mean, u)
            }
        }
    }
}

/// A seeded Poisson arrival generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoissonArrivals {
    /// Mean request rate, in requests per minute.
    pub rate_per_minute: f64,
    /// Patience model for generated viewers.
    pub patience: Patience,
    /// RNG seed.
    pub seed: u64,
}

impl PoissonArrivals {
    /// A generator with infinite patience.
    ///
    /// # Panics
    /// Panics unless `rate_per_minute` is positive and finite.
    #[must_use]
    pub fn new(rate_per_minute: f64, seed: u64) -> Self {
        assert!(
            rate_per_minute.is_finite() && rate_per_minute > 0.0,
            "arrival rate must be positive"
        );
        Self {
            rate_per_minute,
            patience: Patience::Infinite,
            seed,
        }
    }

    /// Replace the patience model.
    #[must_use]
    pub fn with_patience(mut self, patience: Patience) -> Self {
        self.patience = patience;
        self
    }

    /// Generate every request with `at < horizon`, choosing titles from
    /// `popularity`.
    #[must_use]
    pub fn generate(&self, popularity: &ZipfPopularity, horizon: Minutes) -> Vec<WorkloadRequest> {
        let mut cursor = self.cursor(popularity);
        let mut out = Vec::new();
        while let Some(r) = cursor.next_before(horizon) {
            out.push(r);
        }
        out
    }

    /// A resumable cursor over this arrival stream, starting at request
    /// 0. Draining it reproduces [`PoissonArrivals::generate`] bit for
    /// bit; [`ArrivalCursor::position`] names where it stands.
    #[must_use]
    pub fn cursor<'a>(&'a self, popularity: &'a ZipfPopularity) -> ArrivalCursor<'a> {
        ArrivalCursor {
            arrivals: self,
            popularity,
            rng: SmallRng::seed_from_u64(self.seed),
            clock: 0.0,
            position: 0,
        }
    }

    /// A cursor resumed at request `position` — the checkpoint/restore
    /// path for arrival streams. The cursor yields exactly the requests
    /// a fresh cursor would yield after `position` calls.
    ///
    /// The RNG state is reconstructed by **replaying** the first
    /// `position` requests (the generator's state is opaque to
    /// serialization, and each request costs three draws — ~100 ns), so
    /// resuming is `O(position)` once per restart, never per request.
    #[must_use]
    pub fn cursor_at<'a>(
        &'a self,
        popularity: &'a ZipfPopularity,
        position: u64,
    ) -> ArrivalCursor<'a> {
        let mut cursor = self.cursor(popularity);
        for _ in 0..position {
            let _ = cursor.next_request();
        }
        cursor
    }
}

/// A resumable position in a [`PoissonArrivals`] stream.
///
/// The Poisson process is infinite; [`ArrivalCursor::next_request`]
/// always yields the next request, and [`ArrivalCursor::next_before`]
/// stops at a horizon **without consuming** any randomness when it
/// declines — so a drained cursor and a longer-horizon drain agree on
/// every shared prefix.
#[derive(Debug, Clone)]
pub struct ArrivalCursor<'a> {
    arrivals: &'a PoissonArrivals,
    popularity: &'a ZipfPopularity,
    rng: SmallRng,
    /// The last emitted arrival time (0 before the first).
    clock: f64,
    /// Requests emitted so far.
    position: u64,
}

impl ArrivalCursor<'_> {
    /// The next request of the stream, unconditionally.
    pub fn next_request(&mut self) -> WorkloadRequest {
        // Exponential inter-arrival with mean 1/λ.
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.clock += -u.ln() / self.arrivals.rate_per_minute;
        self.position += 1;
        WorkloadRequest {
            at: Minutes(self.clock),
            video: self.popularity.sample(&mut self.rng),
            patience: self.arrivals.patience.draw(&mut self.rng),
        }
    }

    /// The next request if it arrives strictly before `horizon`.
    ///
    /// Declining rolls the stream back: the peeked request is
    /// re-delivered by the next call (with any horizon it fits), so
    /// probing a horizon never perturbs the stream.
    pub fn next_before(&mut self, horizon: Minutes) -> Option<WorkloadRequest> {
        let saved = self.clone();
        let r = self.next_request();
        if r.at.value() < horizon.value() {
            Some(r)
        } else {
            *self = saved;
            None
        }
    }

    /// Requests emitted so far — feed this to
    /// [`PoissonArrivals::cursor_at`] to resume after a restart.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.position
    }

    /// The arrival time of the most recent request (0 at the start).
    #[must_use]
    pub fn clock(&self) -> Minutes {
        Minutes(self.clock)
    }
}

/// A time-varying (non-homogeneous) Poisson process, generated by
/// thinning: candidate arrivals at the peak rate are kept with
/// probability `rate(t)/peak`. Models the evening prime-time surge §1's
/// metropolitan systems live around.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalArrivals {
    /// Base (off-peak) rate, requests per minute.
    pub base_rate: f64,
    /// Additional rate at the centre of the peak.
    pub peak_boost: f64,
    /// Centre of the peak, minutes.
    pub peak_at: Minutes,
    /// Gaussian half-width of the peak, minutes.
    pub peak_width: Minutes,
    /// Length of one day: `λ(t)` repeats with this period, so the peak
    /// recurs every day. `None` keeps the legacy single-peak profile.
    pub day: Option<Minutes>,
    /// Patience model.
    pub patience: Patience,
    /// RNG seed.
    pub seed: u64,
}

impl DiurnalArrivals {
    /// The instantaneous rate `λ(t)`, requests per minute. With a `day`
    /// period set, `t` is folded into `[0, day)` first, so
    /// `λ(t + day) = λ(t)` across the day boundary.
    #[must_use]
    pub fn rate_at(&self, t: Minutes) -> f64 {
        let t = match self.day {
            Some(day) => t.value().rem_euclid(day.value()),
            None => t.value(),
        };
        let z = (t - self.peak_at.value()) / self.peak_width.value();
        self.base_rate + self.peak_boost * (-0.5 * z * z).exp()
    }

    /// Generate every request with `at < horizon`.
    ///
    /// # Panics
    /// Panics on non-positive rates or width.
    #[must_use]
    pub fn generate(&self, popularity: &ZipfPopularity, horizon: Minutes) -> Vec<WorkloadRequest> {
        assert!(
            self.base_rate > 0.0 && self.peak_boost >= 0.0,
            "rates must be positive"
        );
        assert!(self.peak_width.value() > 0.0, "peak width must be positive");
        assert!(
            self.day.is_none_or(|d| d.value() > 0.0),
            "day period must be positive"
        );
        let peak = self.base_rate + self.peak_boost;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            t += -u.ln() / peak;
            if t >= horizon.value() {
                return out;
            }
            // Thinning: keep with probability λ(t)/peak.
            let keep: f64 = rng.gen();
            if keep < self.rate_at(Minutes(t)) / peak {
                out.push(WorkloadRequest {
                    at: Minutes(t),
                    video: popularity.sample(&mut rng),
                    patience: self.patience.draw(&mut rng),
                });
            }
        }
    }
}

/// A popularity *shift* on top of a Poisson stream: at `shift_at` the
/// catalog's rank order rotates by `rotate` positions, so titles that
/// were deep in the cold tail suddenly draw the Zipf head's demand.
///
/// This is the scenario the static broadcast split cannot follow — the
/// control plane's reason to exist. The underlying arrival *times* and
/// patience draws are untouched (same seed ⇒ same stream), only the
/// title each post-shift request names is remapped, so static-vs-dynamic
/// comparisons run on identical workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopularityShift {
    /// The base arrival process.
    pub arrivals: PoissonArrivals,
    /// When the shift happens.
    pub shift_at: Minutes,
    /// How far the rank order rotates (0 = no shift).
    pub rotate: usize,
}

impl PopularityShift {
    /// Generate every request with `at < horizon`; requests at or after
    /// `shift_at` have their title rotated by `rotate` mod catalog size.
    #[must_use]
    pub fn generate(&self, popularity: &ZipfPopularity, horizon: Minutes) -> Vec<WorkloadRequest> {
        let n = popularity.len();
        let mut out = self.arrivals.generate(popularity, horizon);
        for r in &mut out {
            if r.at >= self.shift_at {
                r.video = (r.video + self.rotate) % n;
            }
        }
        out
    }
}

/// A deterministic arrival grid for scale studies: exactly `sessions`
/// requests evenly spaced across the horizon, cycling through `titles`
/// round-robin from a seeded phase.
///
/// Where [`PoissonArrivals`] carries RNG state from request to request,
/// every field of a grid request is a pure function of its index, so a
/// million-session stream costs a multiply per request and two streams
/// with the same seed are identical without replaying any prefix. That
/// is what the sharded scale-out path needs: workload generation must
/// not become the bottleneck it exists to measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridArrivals {
    /// Exactly how many requests to emit.
    pub sessions: usize,
    /// Requests are spaced `horizon / sessions` apart, starting at 0.
    pub horizon: Minutes,
    /// Catalog size; request `i` names title `(i + phase) % titles`.
    pub titles: usize,
    /// Patience attached to every request. [`Patience::Exponential`]
    /// draws are derived per-index (no shared RNG state).
    pub patience: Patience,
    /// Seeds the title-cycle phase and the patience draws.
    pub seed: u64,
}

/// The finaliser of `splitmix64` — one multiply-xor round per call,
/// enough to decorrelate consecutive indices.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl GridArrivals {
    /// Request number `i` of the grid, in `O(1)` — every field is a pure
    /// function of the index, so a restarted consumer resumes anywhere
    /// in the stream without replaying a prefix.
    ///
    /// # Panics
    /// Panics when `titles` is zero or the horizon is not positive.
    #[must_use]
    pub fn request_at(&self, i: usize) -> WorkloadRequest {
        assert!(self.titles > 0, "grid needs at least one title");
        assert!(self.horizon.value() > 0.0, "grid horizon must be positive");
        let phase = splitmix64(self.seed) as usize % self.titles;
        let gap = self.horizon.value() / self.sessions.max(1) as f64;
        let patience = match self.patience {
            Patience::Infinite => Minutes(f64::INFINITY),
            Patience::Fixed(m) => m,
            Patience::Exponential(mean) => {
                let bits = splitmix64(self.seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                // 53 uniform bits, offset so u ∈ (0, 1) strictly.
                let u = ((bits >> 11) as f64 + 0.5) / 9_007_199_254_740_992.0;
                exponential_patience(mean, u)
            }
        };
        WorkloadRequest {
            at: Minutes(i as f64 * gap),
            video: (i + phase) % self.titles,
            patience,
        }
    }

    /// Generate the full grid. Requests are sorted by arrival time and
    /// all fall strictly inside the horizon.
    ///
    /// # Panics
    /// Panics when `titles` is zero or the horizon is not positive.
    #[must_use]
    pub fn generate(&self) -> Vec<WorkloadRequest> {
        (0..self.sessions).map(|i| self.request_at(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_count_matches_rate() {
        let gen = PoissonArrivals::new(10.0, 7);
        let reqs = gen.generate(&ZipfPopularity::paper(20), Minutes(1000.0));
        // Expect ≈ 10 000 arrivals; Poisson σ = 100.
        let n = reqs.len() as f64;
        assert!((n - 10_000.0).abs() < 400.0, "got {n}");
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let gen = PoissonArrivals::new(5.0, 99);
        let reqs = gen.generate(&ZipfPopularity::paper(10), Minutes(100.0));
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(reqs.iter().all(|r| r.at.value() < 100.0));
        assert!(reqs.iter().all(|r| r.video < 10));
    }

    #[test]
    fn generation_is_reproducible() {
        let z = ZipfPopularity::paper(15);
        let a = PoissonArrivals::new(3.0, 5).generate(&z, Minutes(50.0));
        let b = PoissonArrivals::new(3.0, 5).generate(&z, Minutes(50.0));
        assert_eq!(a, b);
        let c = PoissonArrivals::new(3.0, 6).generate(&z, Minutes(50.0));
        assert_ne!(a, c);
    }

    #[test]
    fn inter_arrival_mean_is_inverse_rate() {
        let gen = PoissonArrivals::new(2.0, 11);
        let reqs = gen.generate(&ZipfPopularity::paper(5), Minutes(5000.0));
        let mut gaps = Vec::new();
        for w in reqs.windows(2) {
            gaps.push(w[1].at.value() - w[0].at.value());
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean gap {mean}");
    }

    #[test]
    fn patience_models() {
        let z = ZipfPopularity::paper(5);
        let inf = PoissonArrivals::new(1.0, 1).generate(&z, Minutes(100.0));
        assert!(inf.iter().all(|r| r.patience.value().is_infinite()));

        let fixed = PoissonArrivals::new(1.0, 1)
            .with_patience(Patience::Fixed(Minutes(5.0)))
            .generate(&z, Minutes(100.0));
        assert!(fixed.iter().all(|r| r.patience == Minutes(5.0)));

        let exp = PoissonArrivals::new(1.0, 1)
            .with_patience(Patience::Exponential(Minutes(5.0)))
            .generate(&z, Minutes(5000.0));
        let mean = exp.iter().map(|r| r.patience.value()).sum::<f64>() / exp.len() as f64;
        assert!((mean - 5.0).abs() < 0.5, "mean patience {mean}");
        assert!(exp.iter().all(|r| r.patience.value() > 0.0));
    }

    #[test]
    fn popular_titles_requested_more() {
        let z = ZipfPopularity::paper(30);
        let reqs = PoissonArrivals::new(20.0, 3).generate(&z, Minutes(2000.0));
        let mut counts = vec![0usize; 30];
        for r in &reqs {
            counts[r.video] += 1;
        }
        assert!(counts[0] > counts[15]);
        assert!(counts[0] > counts[29] * 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = PoissonArrivals::new(0.0, 0);
    }

    #[test]
    fn diurnal_peak_concentrates_arrivals() {
        let gen = DiurnalArrivals {
            base_rate: 1.0,
            peak_boost: 9.0,
            peak_at: Minutes(300.0),
            peak_width: Minutes(40.0),
            day: None,
            patience: Patience::Infinite,
            seed: 5,
        };
        let reqs = gen.generate(&ZipfPopularity::paper(20), Minutes(600.0));
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        // The hour around the peak sees far more than an off-peak hour.
        let count = |lo: f64, hi: f64| {
            reqs.iter()
                .filter(|r| r.at.value() >= lo && r.at.value() < hi)
                .count()
        };
        let peak_hour = count(270.0, 330.0);
        let off_hour = count(0.0, 60.0);
        assert!(
            peak_hour > 4 * off_hour,
            "peak {peak_hour} vs off-peak {off_hour}"
        );
        // And λ(t) evaluates as specified.
        assert!((gen.rate_at(Minutes(300.0)) - 10.0).abs() < 1e-12);
        assert!(gen.rate_at(Minutes(0.0)) < 1.01);
    }

    #[test]
    fn diurnal_is_reproducible() {
        let z = ZipfPopularity::paper(8);
        let mk = || DiurnalArrivals {
            base_rate: 2.0,
            peak_boost: 3.0,
            peak_at: Minutes(100.0),
            peak_width: Minutes(30.0),
            day: None,
            patience: Patience::Fixed(Minutes(5.0)),
            seed: 11,
        };
        assert_eq!(
            mk().generate(&z, Minutes(200.0)),
            mk().generate(&z, Minutes(200.0))
        );
    }

    #[test]
    fn diurnal_day_wrap_repeats_the_peak() {
        let gen = DiurnalArrivals {
            base_rate: 1.0,
            peak_boost: 9.0,
            peak_at: Minutes(300.0),
            peak_width: Minutes(40.0),
            day: Some(Minutes(1440.0)),
            patience: Patience::Infinite,
            seed: 5,
        };
        // λ is periodic across the day boundary…
        for t in [0.0, 123.0, 300.0, 1439.9] {
            assert!((gen.rate_at(Minutes(t)) - gen.rate_at(Minutes(t + 1440.0))).abs() < 1e-12);
        }
        // …so day 2 surges around minute 1740 exactly like day 1 at 300.
        let reqs = gen.generate(&ZipfPopularity::paper(20), Minutes(2880.0));
        let count = |lo: f64, hi: f64| {
            reqs.iter()
                .filter(|r| r.at.value() >= lo && r.at.value() < hi)
                .count()
        };
        assert!(count(1710.0, 1770.0) > 4 * count(1440.0, 1500.0));
        // Without a day period the second day stays flat.
        let single = DiurnalArrivals { day: None, ..gen };
        let reqs1 = single.generate(&ZipfPopularity::paper(20), Minutes(2880.0));
        let day2_peak = reqs1
            .iter()
            .filter(|r| r.at.value() >= 1710.0 && r.at.value() < 1770.0)
            .count();
        assert!(day2_peak < count(1710.0, 1770.0) / 2);
    }

    #[test]
    fn grid_arrivals_are_even_cyclic_and_reproducible() {
        let grid = GridArrivals {
            sessions: 1000,
            horizon: Minutes(500.0),
            titles: 7,
            patience: Patience::Infinite,
            seed: 42,
        };
        let reqs = grid.generate();
        assert_eq!(reqs.len(), 1000);
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(reqs.iter().all(|r| r.at.value() < 500.0));
        // Evenly spaced: constant gap of horizon / sessions.
        assert!((reqs[1].at.value() - reqs[0].at.value() - 0.5).abs() < 1e-12);
        // Round-robin coverage: every title gets an equal share ±1.
        let mut counts = vec![0usize; 7];
        for r in &reqs {
            counts[r.video] += 1;
        }
        assert!(counts.iter().all(|&c| c == 142 || c == 143), "{counts:?}");
        // Bitwise reproducible; a different seed starts at a new phase.
        assert_eq!(reqs, grid.generate());
        let other = GridArrivals { seed: 43, ..grid }.generate();
        assert_ne!(reqs[0].video, other[0].video);
    }

    #[test]
    fn exponential_patience_tail_clamps_at_the_documented_multiple() {
        let mean = Minutes(5.0);
        // The worst admissible uniform: without the clamp this would be
        // ≈ 708 × mean; the documented bound pins it at exactly 64 ×.
        let worst = exponential_patience(mean, f64::MIN_POSITIVE);
        assert_eq!(worst, Minutes(MAX_PATIENCE_FACTOR * 5.0));
        // The clamp threshold itself: u = e^-64 maps to the bound.
        let edge = exponential_patience(mean, (-MAX_PATIENCE_FACTOR).exp());
        assert!((edge.value() - 320.0).abs() < 1e-9);
        // Typical draws are untouched: -ln u well under the factor.
        let typical = exponential_patience(mean, 0.5);
        assert!((typical.value() - 5.0 * std::f64::consts::LN_2).abs() < 1e-12);
        // The per-index grid path can never reach the clamp: its
        // smallest uniform is 0.5 / 2^53, whose -ln is ≈ 37.4 < 64, so
        // pinned grid streams are bit-identical before and after.
        let grid_floor: f64 = 0.5 / 9_007_199_254_740_992.0;
        assert!(-grid_floor.ln() < MAX_PATIENCE_FACTOR);
    }

    #[test]
    fn grid_exponential_patience_is_per_index_deterministic() {
        let grid = GridArrivals {
            sessions: 20_000,
            horizon: Minutes(1000.0),
            titles: 4,
            patience: Patience::Exponential(Minutes(5.0)),
            seed: 9,
        };
        let reqs = grid.generate();
        assert_eq!(reqs, grid.generate());
        assert!(reqs.iter().all(|r| r.patience.value() > 0.0));
        let mean = reqs.iter().map(|r| r.patience.value()).sum::<f64>() / reqs.len() as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean patience {mean}");
    }

    #[test]
    fn cursor_drain_reproduces_generate_bit_for_bit() {
        let z = ZipfPopularity::paper(15);
        let gen = PoissonArrivals::new(3.0, 5).with_patience(Patience::Exponential(Minutes(4.0)));
        let horizon = Minutes(50.0);
        let batch = gen.generate(&z, horizon);
        let mut cursor = gen.cursor(&z);
        let mut drained = Vec::new();
        while let Some(r) = cursor.next_before(horizon) {
            drained.push(r);
        }
        assert_eq!(batch, drained);
        assert_eq!(cursor.position(), batch.len() as u64);
        assert_eq!(cursor.clock(), batch.last().unwrap().at);
    }

    #[test]
    fn cursor_resumed_mid_stream_yields_the_identical_suffix() {
        let z = ZipfPopularity::paper(10);
        let gen = PoissonArrivals::new(2.0, 77).with_patience(Patience::Exponential(Minutes(3.0)));
        let mut reference = gen.cursor(&z);
        let full: Vec<WorkloadRequest> = (0..200).map(|_| reference.next_request()).collect();
        for split in [0u64, 1, 13, 199] {
            let mut resumed = gen.cursor_at(&z, split);
            assert_eq!(resumed.position(), split, "resume names its position");
            for expected in &full[split as usize..] {
                assert_eq!(&resumed.next_request(), expected, "split at {split}");
            }
        }
    }

    #[test]
    fn declining_a_horizon_consumes_no_randomness() {
        let z = ZipfPopularity::paper(8);
        let gen = PoissonArrivals::new(1.0, 3).with_patience(Patience::Exponential(Minutes(2.0)));
        let mut probed = gen.cursor(&z);
        // Probe a horizon the next arrival cannot meet, repeatedly…
        for _ in 0..5 {
            assert_eq!(probed.next_before(Minutes(0.0)), None);
        }
        // …then the stream is exactly where an unprobed cursor stands.
        let mut fresh = gen.cursor(&z);
        for _ in 0..50 {
            assert_eq!(probed.next_request(), fresh.next_request());
        }
    }

    #[test]
    fn grid_request_at_matches_the_generated_stream() {
        let grid = GridArrivals {
            sessions: 5000,
            horizon: Minutes(800.0),
            titles: 9,
            patience: Patience::Exponential(Minutes(6.0)),
            seed: 31,
        };
        let all = grid.generate();
        for i in [0usize, 1, 17, 499, 2500, 4999] {
            assert_eq!(grid.request_at(i), all[i], "index {i}");
        }
    }

    #[test]
    fn popularity_shift_rotates_only_after_the_shift() {
        let z = ZipfPopularity::paper(12);
        let base = PoissonArrivals::new(4.0, 23);
        let shifted = PopularityShift {
            arrivals: base.clone(),
            shift_at: Minutes(100.0),
            rotate: 5,
        };
        let plain = base.generate(&z, Minutes(200.0));
        let with_shift = shifted.generate(&z, Minutes(200.0));
        assert_eq!(plain.len(), with_shift.len());
        for (p, s) in plain.iter().zip(&with_shift) {
            assert_eq!(p.at, s.at, "arrival times are untouched");
            assert_eq!(p.patience, s.patience);
            if p.at < Minutes(100.0) {
                assert_eq!(p.video, s.video);
            } else {
                assert_eq!((p.video + 5) % 12, s.video);
            }
        }
        // Reproducible like every generator here.
        assert_eq!(with_shift, shifted.generate(&z, Minutes(200.0)));
    }
}
