//! # Workload generation for metropolitan VoD
//!
//! The paper's system model (§1) rests on an empirical observation from
//! Dan, Sitaram & Shahabuddin: "the popularities of movies follow the Zipf
//! distribution with the skew factor of 0.271. That is, most of the demand
//! (80 %) is for a few (10 to 20) very popular movies." Skyscraper
//! Broadcasting serves those few popular videos; everything else goes to a
//! scheduled-multicast service. This crate generates the request streams
//! that exercise both halves:
//!
//! * [`catalog`] — video catalogs (the paper's videos: 120 min, MPEG-1 at
//!   1.5 Mb/s),
//! * [`zipf`] — the Zipf popularity model with the Dan et al. skew
//!   convention (`p_i ∝ (1/i)^{1−θ}`, `θ = 0.271`),
//! * [`arrivals`] — Poisson arrival processes, seeded and reproducible,
//!   plus viewer patience (reneging) models,
//! * [`scenario`] — metropolitan geography: clustered user placement on
//!   a km grid, per-region demand shares and access classes,
//!   region-local catalogs with a shared hot head, and flash-crowd /
//!   diurnal temporal stress,
//! * [`placement`] — the supply side of the metro: catalog placement
//!   policies mapping titles to server shards (full replication,
//!   partitioned, hot-head, popularity-proportional).

#![forbid(unsafe_code)]

pub mod arrivals;
pub mod catalog;
pub mod placement;
pub mod scenario;
pub mod zipf;

pub use arrivals::{
    ArrivalCursor, DiurnalArrivals, GridArrivals, Patience, PoissonArrivals, PopularityShift,
    WorkloadRequest, MAX_PATIENCE_FACTOR,
};
pub use catalog::{Catalog, Video};
pub use placement::{Placement, PlacementPolicy};
pub use scenario::{
    to_workload, AccessClass, ClusterSpec, FlashCrowd, MetroScenario, Region, ScenarioConfig,
    ScenarioPreset, ScenarioRequest, ScenarioWorkload, UserSite,
};
pub use zipf::ZipfPopularity;
