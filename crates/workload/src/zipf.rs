//! Zipf video popularity — the Dan/Sitaram/Shahabuddin convention the
//! paper cites (§1).
//!
//! The probability of requesting the rank-`i` video (1-based rank) is
//! `p_i = c / i^{1−θ}`, with `θ = 0` being the pure Zipf distribution and
//! larger `θ` flattening the skew. The paper quotes `θ = 0.271` from the
//! batching literature. A separate constructor accepts an arbitrary
//! exponent `s` (`p_i ∝ i^{−s}`) for sensitivity studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The skew factor the paper quotes.
pub const PAPER_THETA: f64 = 0.271;

/// A Zipf-like popularity distribution over `n` ranked titles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfPopularity {
    exponent: f64,
    /// Cumulative distribution, `cdf[i]` = P(rank ≤ i), strictly increasing
    /// to 1.0.
    cdf: Vec<f64>,
}

impl ZipfPopularity {
    /// `p_i ∝ i^{−s}` over `n` titles.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn with_exponent(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one title");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let mut cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect::<Vec<_>>();
        // The accumulated tail lands at 1.0 ± a few ulp. Pin it to
        // exactly 1.0: `sample` can then trust that every draw u < 1.0
        // finds an index without an out-of-range clamp, and
        // `top_share(n)` is exactly 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Self { exponent: s, cdf }
    }

    /// The Dan et al. parameterization: `p_i ∝ (1/i)^{1−θ}`.
    #[must_use]
    pub fn with_skew_theta(n: usize, theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "skew θ must be in [0, 1), got {theta}"
        );
        Self::with_exponent(n, 1.0 - theta)
    }

    /// The paper's distribution: `θ = 0.271`.
    #[must_use]
    pub fn paper(n: usize) -> Self {
        Self::with_skew_theta(n, PAPER_THETA)
    }

    /// Number of titles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when there are no titles (never: construction requires ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s` in `p_i ∝ i^{−s}`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of the rank-`r` title (0-based).
    #[must_use]
    pub fn probability(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Fraction of total demand captured by the `k` most popular titles.
    ///
    /// `k ≥ n` returns exactly `1.0` — the whole catalog captures all
    /// demand — but asking is almost always a rank/count confusion, so
    /// debug builds assert `k ≤ n` to surface the caller.
    #[must_use]
    pub fn top_share(&self, k: usize) -> f64 {
        debug_assert!(
            k <= self.cdf.len(),
            "top_share: k = {k} exceeds the {}-title catalog",
            self.cdf.len()
        );
        if k == 0 {
            0.0
        } else if k >= self.cdf.len() {
            1.0
        } else {
            self.cdf[k - 1]
        }
    }

    /// Draw a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf ≥ u. The constructor pins the final cdf
        // entry to exactly 1.0, so u < 1.0 always lands in range; the
        // `min` is plain defence, not a rounding crutch.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfPopularity::paper(100);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_popularity() {
        let z = ZipfPopularity::paper(50);
        for r in 1..50 {
            assert!(z.probability(r) <= z.probability(r - 1) + 1e-15);
        }
    }

    #[test]
    fn paper_skew_concentrates_demand() {
        // §1's qualitative claim: a small head of the catalog dominates.
        // With the Dan et al. convention over 100 titles the top 20 carry
        // the majority of demand (the literature's "80 % for 10–20 movies"
        // refers to measured rental data the Zipf fit approximates).
        let z = ZipfPopularity::paper(100);
        let s20 = z.top_share(20);
        assert!(s20 > 0.5, "top-20 share {s20:.3}");
        assert!(z.top_share(10) > 0.38);
        // The pure Zipf (θ = 0) is sharper still.
        let pure = ZipfPopularity::with_skew_theta(100, 0.0);
        assert!(pure.top_share(20) > s20);
    }

    #[test]
    fn uniform_limit() {
        // s = 0 (θ = 1 is excluded; use with_exponent) → uniform.
        let z = ZipfPopularity::with_exponent(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
        assert!((z.top_share(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let z = ZipfPopularity::paper(20);
        let mut rng = SmallRng::seed_from_u64(1234);
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            let exp = z.probability(r);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {r}: empirical {emp:.4} vs {exp:.4}"
            );
        }
    }

    #[test]
    fn top_share_edges() {
        let z = ZipfPopularity::paper(10);
        assert_eq!(z.top_share(0), 0.0);
        // Exactly 1.0, not 1.0 ± ulp: the constructor pins the tail.
        assert_eq!(z.top_share(10), 1.0);
        assert_eq!(z.len(), 10);
        assert!(!z.is_empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "exceeds the 10-title catalog")]
    fn out_of_range_top_share_asserts_in_debug() {
        let _ = ZipfPopularity::paper(10).top_share(999);
    }

    #[test]
    fn final_cdf_entry_is_exactly_one() {
        for n in [1, 7, 100, 999] {
            let z = ZipfPopularity::paper(n);
            assert_eq!(z.top_share(n), 1.0, "n = {n}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_catalog_rejected() {
        let _ = ZipfPopularity::paper(0);
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn theta_one_rejected() {
        let _ = ZipfPopularity::with_skew_theta(5, 1.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_and_complete(n in 1usize..200, theta in 0.0f64..0.99) {
            let z = ZipfPopularity::with_skew_theta(n, theta);
            let mut prev = 0.0;
            for r in 0..n {
                let c = z.top_share(r + 1);
                prop_assert!(c >= prev);
                prev = c;
            }
            prop_assert!((prev - 1.0).abs() < 1e-9);
        }

        #[test]
        fn samples_in_range(n in 1usize..50, seed in 0u64..1000) {
            let z = ZipfPopularity::paper(n);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
