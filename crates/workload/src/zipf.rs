//! Zipf video popularity — the Dan/Sitaram/Shahabuddin convention the
//! paper cites (§1).
//!
//! The probability of requesting the rank-`i` video (1-based rank) is
//! `p_i = c / i^{1−θ}`, with `θ = 0` being the pure Zipf distribution and
//! larger `θ` flattening the skew. The paper quotes `θ = 0.271` from the
//! batching literature. A separate constructor accepts an arbitrary
//! exponent `s` (`p_i ∝ i^{−s}`) for sensitivity studies.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The skew factor the paper quotes.
pub const PAPER_THETA: f64 = 0.271;

/// A Zipf-like popularity distribution over `n` ranked titles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfPopularity {
    exponent: f64,
    /// Cumulative distribution, `cdf[i]` = P(rank ≤ i), strictly increasing
    /// to 1.0.
    cdf: Vec<f64>,
}

impl ZipfPopularity {
    /// `p_i ∝ i^{−s}` over `n` titles.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn with_exponent(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one title");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let weights: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect::<Vec<_>>();
        Self { exponent: s, cdf }
    }

    /// The Dan et al. parameterization: `p_i ∝ (1/i)^{1−θ}`.
    #[must_use]
    pub fn with_skew_theta(n: usize, theta: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&theta),
            "skew θ must be in [0, 1), got {theta}"
        );
        Self::with_exponent(n, 1.0 - theta)
    }

    /// The paper's distribution: `θ = 0.271`.
    #[must_use]
    pub fn paper(n: usize) -> Self {
        Self::with_skew_theta(n, PAPER_THETA)
    }

    /// Number of titles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when there are no titles (never: construction requires ≥ 1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The exponent `s` in `p_i ∝ i^{−s}`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of the rank-`r` title (0-based).
    #[must_use]
    pub fn probability(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }

    /// Fraction of total demand captured by the `k` most popular titles.
    #[must_use]
    pub fn top_share(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[(k - 1).min(self.cdf.len() - 1)]
        }
    }

    /// Draw a 0-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First index with cdf ≥ u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfPopularity::paper(100);
        let total: f64 = (0..100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_popularity() {
        let z = ZipfPopularity::paper(50);
        for r in 1..50 {
            assert!(z.probability(r) <= z.probability(r - 1) + 1e-15);
        }
    }

    #[test]
    fn paper_skew_concentrates_demand() {
        // §1's qualitative claim: a small head of the catalog dominates.
        // With the Dan et al. convention over 100 titles the top 20 carry
        // the majority of demand (the literature's "80 % for 10–20 movies"
        // refers to measured rental data the Zipf fit approximates).
        let z = ZipfPopularity::paper(100);
        let s20 = z.top_share(20);
        assert!(s20 > 0.5, "top-20 share {s20:.3}");
        assert!(z.top_share(10) > 0.38);
        // The pure Zipf (θ = 0) is sharper still.
        let pure = ZipfPopularity::with_skew_theta(100, 0.0);
        assert!(pure.top_share(20) > s20);
    }

    #[test]
    fn uniform_limit() {
        // s = 0 (θ = 1 is excluded; use with_exponent) → uniform.
        let z = ZipfPopularity::with_exponent(10, 0.0);
        for r in 0..10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-12);
        }
        assert!((z.top_share(5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_distribution() {
        let z = ZipfPopularity::paper(20);
        let mut rng = SmallRng::seed_from_u64(1234);
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            let exp = z.probability(r);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {r}: empirical {emp:.4} vs {exp:.4}"
            );
        }
    }

    #[test]
    fn top_share_edges() {
        let z = ZipfPopularity::paper(10);
        assert_eq!(z.top_share(0), 0.0);
        assert!((z.top_share(10) - 1.0).abs() < 1e-12);
        assert!((z.top_share(999) - 1.0).abs() < 1e-12);
        assert_eq!(z.len(), 10);
        assert!(!z.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_catalog_rejected() {
        let _ = ZipfPopularity::paper(0);
    }

    #[test]
    #[should_panic(expected = "skew")]
    fn theta_one_rejected() {
        let _ = ZipfPopularity::with_skew_theta(5, 1.0);
    }

    proptest! {
        #[test]
        fn cdf_is_monotone_and_complete(n in 1usize..200, theta in 0.0f64..0.99) {
            let z = ZipfPopularity::with_skew_theta(n, theta);
            let mut prev = 0.0;
            for r in 0..n {
                let c = z.top_share(r + 1);
                prop_assert!(c >= prev);
                prev = c;
            }
            prop_assert!((prev - 1.0).abs() < 1e-9);
        }

        #[test]
        fn samples_in_range(n in 1usize..50, seed in 0u64..1000) {
            let z = ZipfPopularity::paper(n);
            let mut rng = SmallRng::seed_from_u64(seed);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
