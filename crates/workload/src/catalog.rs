//! Video catalogs.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes};

/// One video title in the catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Video {
    /// Dense catalog index; also the popularity rank (0 = most popular).
    pub id: usize,
    /// Display name.
    pub title: String,
    /// Playback length.
    pub length: Minutes,
    /// Display (consumption) rate.
    pub display_rate: Mbps,
}

impl Video {
    /// Size in Mbits.
    #[must_use]
    pub fn size(&self) -> Mbits {
        self.display_rate * self.length
    }
}

/// An ordered catalog: index = popularity rank.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catalog {
    videos: Vec<Video>,
}

impl Catalog {
    /// A catalog of `n` identical paper-style videos: 120 minutes of
    /// MPEG-1 at 1.5 Mb/s (§5's workload).
    #[must_use]
    pub fn paper_defaults(n: usize) -> Self {
        Self {
            videos: (0..n)
                .map(|id| Video {
                    id,
                    title: format!("movie-{id:03}"),
                    length: Minutes(120.0),
                    display_rate: Mbps(1.5),
                })
                .collect(),
        }
    }

    /// Build from explicit videos.
    ///
    /// # Panics
    /// Panics if ids are not dense `0..n`.
    #[must_use]
    pub fn from_videos(videos: Vec<Video>) -> Self {
        for (i, v) in videos.iter().enumerate() {
            assert_eq!(v.id, i, "catalog ids must be dense ranks");
        }
        Self { videos }
    }

    /// Number of titles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// `true` when the catalog is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Lookup by rank.
    #[must_use]
    pub fn get(&self, id: usize) -> Option<&Video> {
        self.videos.get(id)
    }

    /// All titles, most popular first.
    #[must_use]
    pub fn videos(&self) -> &[Video] {
        &self.videos
    }

    /// Split into the `m` popular titles (for periodic broadcast) and the
    /// rest (for scheduled multicast) — the hybrid of §1.
    #[must_use]
    pub fn split_popular(&self, m: usize) -> (&[Video], &[Video]) {
        let m = m.min(self.videos.len());
        self.videos.split_at(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_catalog_shape() {
        let c = Catalog::paper_defaults(100);
        assert_eq!(c.len(), 100);
        let v = c.get(0).unwrap();
        assert_eq!(v.length, Minutes(120.0));
        assert_eq!(v.display_rate, Mbps(1.5));
        assert_eq!(v.size(), Mbits(10_800.0));
        assert!(!c.is_empty());
    }

    #[test]
    fn split_popular_partitions() {
        let c = Catalog::paper_defaults(30);
        let (hot, cold) = c.split_popular(10);
        assert_eq!(hot.len(), 10);
        assert_eq!(cold.len(), 20);
        assert_eq!(hot[0].id, 0);
        assert_eq!(cold[0].id, 10);
        // Oversized split clamps.
        let (hot, cold) = c.split_popular(99);
        assert_eq!((hot.len(), cold.len()), (30, 0));
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn non_dense_ids_rejected() {
        let mut vs = Catalog::paper_defaults(2).videos().to_vec();
        vs[1].id = 7;
        let _ = Catalog::from_videos(vs);
    }
}
