//! Metropolitan scenario geometry: spatial density, regional demand and
//! temporal stress for the multi-region VoD simulator.
//!
//! The paper pitches Skyscraper Broadcasting for *metropolitan* systems,
//! yet a plain workload is spatially uniform: one Zipf catalog, one
//! Poisson stream. This module generates the geography the scale-out
//! core (`sim::shard`) can actually exercise:
//!
//! * **Placement** — users sit on a km grid as Gaussian clusters plus a
//!   uniform Poisson background ([`ScenarioPreset::Urban`],
//!   [`ScenarioPreset::Rural`], [`ScenarioPreset::Remote`] presets).
//!   Every background user attaches to the nearest cluster, so clusters
//!   double as *regions*.
//! * **Demand** — each user draws a log-normal demand weight; a region's
//!   arrival-rate share is the (normalized) sum over its users.
//!   Clusters of different sizes therefore load their regions
//!   asymmetrically by design.
//! * **Access classes** — each region is classed
//!   [`AccessClass::Fiber`]/[`AccessClass::Cable`]/[`AccessClass::Dsl`]
//!   by cluster population, bounding the client downlink.
//! * **Catalogs** — a shared *hot head* of titles every region watches,
//!   plus a region-local slice; requests draw from a region-local Zipf
//!   ranking over `head ∪ slice`.
//! * **Temporal stress** — [`ScenarioWorkload`] layers a diurnal profile
//!   and a premiere *flash crowd* (a cold local title jumps to Zipf rank
//!   1 mid-run, via the [`PopularityShift`] rotation machinery) on the
//!   per-region streams.
//!
//! Everything is a pure function of the configuration and its seed:
//! two calls with the same [`ScenarioConfig`] produce bit-identical
//! users, regions and request streams, which is what lets scenario
//! studies promise byte-identical artifacts across `--shards`,
//! `--threads` and `--agenda` (see `DESIGN.md` §13).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use crate::arrivals::{
    splitmix64, DiurnalArrivals, Patience, PoissonArrivals, PopularityShift, WorkloadRequest,
};
use crate::zipf::ZipfPopularity;

/// The three metropolitan density presets, following the survey-style
/// cluster exemplar: a dense four-cluster core, a sparse three-cluster
/// countryside, and a two-hamlet remote area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioPreset {
    /// Four dense clusters (600–900 users, σ 3–4 km) over a strong
    /// Poisson background (0.1 users/km²).
    Urban,
    /// Three loose clusters (100–150 users, σ 6–8 km) over a thin
    /// background (0.02 users/km²).
    Rural,
    /// Two hamlets (30–40 users, σ 3–4 km) over an almost-empty
    /// background (0.005 users/km²).
    Remote,
}

impl ScenarioPreset {
    /// Parse a CLI spelling (`urban`, `rural`, `remote`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "urban" => Some(Self::Urban),
            "rural" => Some(Self::Rural),
            "remote" => Some(Self::Remote),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Urban => "urban",
            Self::Rural => "rural",
            Self::Remote => "remote",
        }
    }

    /// The preset's full configuration at `seed`.
    #[must_use]
    pub fn config(self, seed: u64) -> ScenarioConfig {
        let clusters = match self {
            Self::Urban => vec![
                ClusterSpec::new((30.0, 30.0), 800, 3.0),
                ClusterSpec::new((70.0, 70.0), 900, 3.5),
                ClusterSpec::new((50.0, 20.0), 700, 4.0),
                ClusterSpec::new((20.0, 70.0), 600, 3.5),
            ],
            Self::Rural => vec![
                ClusterSpec::new((30.0, 40.0), 120, 6.0),
                ClusterSpec::new((65.0, 60.0), 150, 8.0),
                ClusterSpec::new((50.0, 25.0), 100, 7.0),
            ],
            Self::Remote => vec![
                ClusterSpec::new((35.0, 45.0), 40, 3.0),
                ClusterSpec::new((70.0, 30.0), 30, 4.0),
            ],
        };
        let background_per_km2 = match self {
            Self::Urban => 0.1,
            Self::Rural => 0.02,
            Self::Remote => 0.005,
        };
        ScenarioConfig {
            preset: self,
            grid_km: 100.0,
            clusters,
            background_per_km2,
            hot_titles: 4,
            local_titles: 4,
            seed,
        }
    }
}

/// One Gaussian population cluster: the seed of a region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Cluster centre on the grid, km.
    pub center_km: (f64, f64),
    /// Users drawn around the centre.
    pub users: usize,
    /// Gaussian standard deviation of the placement, km.
    pub std_km: f64,
}

impl ClusterSpec {
    /// A cluster at `center_km` with `users` users spread `std_km` wide.
    #[must_use]
    pub fn new(center_km: (f64, f64), users: usize, std_km: f64) -> Self {
        Self {
            center_km,
            users,
            std_km,
        }
    }
}

/// The full geometry recipe a [`MetroScenario`] is generated from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Which preset shaped this configuration (kept for labeling).
    pub preset: ScenarioPreset,
    /// Side of the square service area, km.
    pub grid_km: f64,
    /// The population clusters, one region each, in region-id order.
    pub clusters: Vec<ClusterSpec>,
    /// Intensity of the uniform Poisson background, users per km².
    /// The generated count is the rounded expectation, so the user
    /// population is a pure function of the configuration.
    pub background_per_km2: f64,
    /// Titles in the shared hot head every region watches.
    pub hot_titles: usize,
    /// Region-local titles appended per region.
    pub local_titles: usize,
    /// Seed for placement and demand draws.
    pub seed: u64,
}

/// Last-mile access technology of a region, classed by cluster
/// population: ≥ 500 users is fiber territory, ≥ 100 cable, below that
/// DSL. Deterministic, so region classes never depend on the draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessClass {
    /// Metro fiber: 100 Mb/s downlink.
    Fiber,
    /// HFC cable: 30 Mb/s downlink.
    Cable,
    /// Copper DSL: 8 Mb/s downlink.
    Dsl,
}

impl AccessClass {
    /// The class for a cluster of `users`.
    #[must_use]
    pub fn for_cluster(users: usize) -> Self {
        if users >= 500 {
            Self::Fiber
        } else if users >= 100 {
            Self::Cable
        } else {
            Self::Dsl
        }
    }

    /// Nominal client downlink of the class.
    #[must_use]
    pub fn downlink(self) -> Mbps {
        match self {
            Self::Fiber => Mbps(100.0),
            Self::Cable => Mbps(30.0),
            Self::Dsl => Mbps(8.0),
        }
    }

    /// Lower-case label for tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Fiber => "fiber",
            Self::Cable => "cable",
            Self::Dsl => "dsl",
        }
    }
}

/// One placed user.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UserSite {
    /// Position, km.
    pub x_km: f64,
    /// Position, km.
    pub y_km: f64,
    /// Owning region (nearest cluster for background users).
    pub region: usize,
    /// Log-normal demand weight (unnormalized).
    pub demand: f64,
}

/// One region: a cluster plus its attached background users.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Region id (= cluster index).
    pub id: usize,
    /// Cluster centre, km.
    pub center_km: (f64, f64),
    /// Users attached (cluster + background).
    pub users: usize,
    /// Normalized demand share over the metro, in `(0, 1]`; shares sum
    /// to 1 across regions.
    pub demand_share: f64,
    /// Access-bandwidth class.
    pub access: AccessClass,
    /// Global ids of the region-local catalog slice.
    pub local_titles: Vec<usize>,
}

/// A generated metropolitan scenario: users, regions and catalogs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetroScenario {
    /// The recipe that produced it.
    pub config: ScenarioConfig,
    /// Every placed user, cluster users first (in cluster order), then
    /// background users.
    pub users: Vec<UserSite>,
    /// The regions, in cluster order.
    pub regions: Vec<Region>,
}

/// One standard-normal draw via Box–Muller over two open-interval
/// uniforms (strictly inside `(0, 1)`, so the log is finite).
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The log-normal demand weight of one user: `exp(0.5 + 0.75·z)`, the
/// exemplar's `lognormal(mean=0.5, sigma=0.75)`.
fn demand_draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (0.5 + 0.75 * normal(rng)).exp()
}

impl MetroScenario {
    /// Generate the scenario: clustered placement, Poisson-background
    /// fill, nearest-cluster region assignment, demand shares, access
    /// classes and catalog slices. Bit-reproducible for a fixed config.
    ///
    /// # Panics
    /// Panics on an empty cluster list, a non-positive grid, or a
    /// zero-title catalog recipe.
    #[must_use]
    pub fn generate(config: &ScenarioConfig) -> Self {
        assert!(!config.clusters.is_empty(), "a metro needs regions");
        assert!(config.grid_km > 0.0, "grid side must be positive");
        assert!(
            config.hot_titles + config.local_titles > 0,
            "catalog recipe names no titles"
        );
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let clamp = |v: f64| v.clamp(0.0, config.grid_km);
        let mut users = Vec::new();

        // Cluster users, in cluster order.
        for (r, c) in config.clusters.iter().enumerate() {
            for _ in 0..c.users {
                let x = clamp(c.center_km.0 + c.std_km * normal(&mut rng));
                let y = clamp(c.center_km.1 + c.std_km * normal(&mut rng));
                users.push(UserSite {
                    x_km: x,
                    y_km: y,
                    region: r,
                    demand: demand_draw(&mut rng),
                });
            }
        }

        // Poisson background at the rounded expectation, attached to the
        // nearest cluster centre (lowest region id breaks ties).
        let area = config.grid_km * config.grid_km;
        let background = (config.background_per_km2 * area).round() as usize;
        for _ in 0..background {
            let x: f64 = rng.gen_range(0.0..config.grid_km);
            let y: f64 = rng.gen_range(0.0..config.grid_km);
            let mut best = 0usize;
            let mut best_d2 = f64::INFINITY;
            for (r, c) in config.clusters.iter().enumerate() {
                let (dx, dy) = (x - c.center_km.0, y - c.center_km.1);
                let d2 = dx * dx + dy * dy;
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = r;
                }
            }
            users.push(UserSite {
                x_km: x,
                y_km: y,
                region: best,
                demand: demand_draw(&mut rng),
            });
        }

        // Demand shares and region records.
        let mut weight = vec![0.0f64; config.clusters.len()];
        let mut count = vec![0usize; config.clusters.len()];
        for u in &users {
            weight[u.region] += u.demand;
            count[u.region] += 1;
        }
        let total: f64 = weight.iter().sum();
        let regions = config
            .clusters
            .iter()
            .enumerate()
            .map(|(r, c)| Region {
                id: r,
                center_km: c.center_km,
                users: count[r],
                demand_share: weight[r] / total,
                access: AccessClass::for_cluster(c.users),
                local_titles: (0..config.local_titles)
                    .map(|i| config.hot_titles + r * config.local_titles + i)
                    .collect(),
            })
            .collect();

        Self {
            config: config.clone(),
            users,
            regions,
        }
    }

    /// Total catalog size: the shared hot head plus every region slice.
    #[must_use]
    pub fn titles(&self) -> usize {
        self.config.hot_titles + self.regions.len() * self.config.local_titles
    }

    /// The region that *owns* a global title: hot-head titles are dealt
    /// round-robin across regions (so the replicated head's load spreads
    /// evenly), local titles belong to their slice's region.
    ///
    /// # Panics
    /// Panics when `title` is outside the catalog.
    #[must_use]
    pub fn region_of_title(&self, title: usize) -> usize {
        assert!(title < self.titles(), "title {title} outside the catalog");
        if title < self.config.hot_titles {
            title % self.regions.len()
        } else {
            (title - self.config.hot_titles) / self.config.local_titles
        }
    }

    /// The deterministic scenario → shard mapping: a per-title owning
    /// shard table (`map[title] = region_of_title(title) % shards`) for
    /// `RunConfig::partition`. Each shard owns whole regions — their
    /// catalog slices and, with them, their arrival streams — so shard
    /// load is asymmetric exactly as the demand shares are.
    ///
    /// # Panics
    /// Panics when `shards` is zero.
    #[must_use]
    pub fn shard_map(&self, shards: usize) -> Vec<usize> {
        assert!(shards > 0, "no zero-shard metros");
        (0..self.titles())
            .map(|t| self.region_of_title(t) % shards)
            .collect()
    }

    /// The broadcast slots (hot-slot indices `0..slots`) owned by
    /// `region` under the round-robin deal — the blast radius of a
    /// correlated regional outage.
    #[must_use]
    pub fn region_slots(&self, region: usize, slots: usize) -> Vec<usize> {
        (0..slots)
            .filter(|i| i % self.regions.len() == region)
            .collect()
    }
}

/// A premiere flash crowd: at `at`, a cold title of `region`'s local
/// slice jumps to Zipf rank 1. Implemented with the [`PopularityShift`]
/// rotation — post-shift requests rotate one rank down, so the head's
/// demand lands on the region's coldest local title while arrival times
/// and patience draws stay untouched.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowd {
    /// When the premiere drops.
    pub at: Minutes,
    /// The region whose local slice hosts the premiere.
    pub region: usize,
}

/// One generated request, attributed to its region.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRequest {
    /// Arrival time.
    pub at: Minutes,
    /// Global title id.
    pub video: usize,
    /// Patience before reneging.
    pub patience: Minutes,
    /// Originating region.
    pub region: usize,
}

/// Temporal workload recipe over a [`MetroScenario`]: per-region Poisson
/// (or diurnal) streams at rates proportional to the demand shares,
/// region-local Zipf title choice, optional flash crowd.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScenarioWorkload {
    /// Metro-wide arrival rate, requests per minute; region `r` receives
    /// `rate × demand_share(r)`.
    pub rate_per_minute: f64,
    /// Generate every request with `at < horizon`.
    pub horizon: Minutes,
    /// Mean of the exponential viewer patience.
    pub mean_patience: Minutes,
    /// Layer the evening-surge diurnal profile on every region.
    pub diurnal: bool,
    /// Optional premiere flash crowd.
    pub flash: Option<FlashCrowd>,
    /// Seed; region `r` streams from `seed` mixed with `r`.
    pub seed: u64,
}

impl ScenarioWorkload {
    /// Generate the merged metro request stream, sorted by arrival time
    /// (ties broken by region id). Bit-reproducible for a fixed
    /// scenario + recipe.
    ///
    /// # Panics
    /// Panics on a non-positive rate or horizon, or a flash crowd naming
    /// a region the scenario does not have.
    #[must_use]
    pub fn generate(&self, scenario: &MetroScenario) -> Vec<ScenarioRequest> {
        assert!(
            self.rate_per_minute > 0.0 && self.horizon.value() > 0.0,
            "scenario workload needs a positive rate and horizon"
        );
        if let Some(f) = self.flash {
            assert!(
                f.region < scenario.regions.len(),
                "flash crowd names region {} of {}",
                f.region,
                scenario.regions.len()
            );
        }
        let n = scenario.config.hot_titles + scenario.config.local_titles;
        let zipf = ZipfPopularity::paper(n);
        let patience = Patience::Exponential(self.mean_patience);
        let mut merged: Vec<ScenarioRequest> = Vec::new();
        for region in &scenario.regions {
            let rate = self.rate_per_minute * region.demand_share;
            let seed = splitmix64(self.seed ^ (region.id as u64).wrapping_mul(0x9E37));
            let flash_here = self.flash.filter(|f| f.region == region.id);
            // Rotating one rank down drops the head's demand onto local
            // rank n-1 — the region's coldest title becomes rank 1.
            let rotate = n - 1;
            let mut local: Vec<WorkloadRequest> = if self.diurnal {
                DiurnalArrivals {
                    base_rate: rate * 0.5,
                    peak_boost: rate,
                    peak_at: Minutes(self.horizon.value() * 0.6),
                    peak_width: Minutes(self.horizon.value() / 8.0),
                    day: None,
                    patience,
                    seed,
                }
                .generate(&zipf, self.horizon)
            } else if let Some(f) = flash_here {
                // The PopularityShift machinery proper: same seed, same
                // arrival times and patience, ranks rotated post-shift.
                PopularityShift {
                    arrivals: PoissonArrivals::new(rate, seed).with_patience(patience),
                    shift_at: f.at,
                    rotate,
                }
                .generate(&zipf, self.horizon)
            } else {
                PoissonArrivals::new(rate, seed)
                    .with_patience(patience)
                    .generate(&zipf, self.horizon)
            };
            if self.diurnal {
                if let Some(f) = flash_here {
                    // The same rotation PopularityShift applies, layered
                    // on the diurnal stream.
                    for r in &mut local {
                        if r.at >= f.at {
                            r.video = (r.video + rotate) % n;
                        }
                    }
                }
            }
            for r in local {
                let video = if r.video < scenario.config.hot_titles {
                    r.video
                } else {
                    region.local_titles[r.video - scenario.config.hot_titles]
                };
                merged.push(ScenarioRequest {
                    at: r.at,
                    video,
                    patience: r.patience,
                    region: region.id,
                });
            }
        }
        merged.sort_by(|a, b| {
            a.at.value()
                .total_cmp(&b.at.value())
                .then(a.region.cmp(&b.region))
        });
        merged
    }
}

/// Strip the region attribution for executors that take
/// [`WorkloadRequest`]s.
#[must_use]
pub fn to_workload(reqs: &[ScenarioRequest]) -> Vec<WorkloadRequest> {
    reqs.iter()
        .map(|r| WorkloadRequest {
            at: r.at,
            video: r.video,
            patience: r.patience,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn urban() -> MetroScenario {
        MetroScenario::generate(&ScenarioPreset::Urban.config(7))
    }

    #[test]
    fn presets_are_reproducible_and_shaped_like_their_class() {
        for preset in [
            ScenarioPreset::Urban,
            ScenarioPreset::Rural,
            ScenarioPreset::Remote,
        ] {
            let cfg = preset.config(7);
            let a = MetroScenario::generate(&cfg);
            let b = MetroScenario::generate(&cfg);
            assert_eq!(a, b, "{} scenario must be bit-reproducible", preset.name());
            let shares: f64 = a.regions.iter().map(|r| r.demand_share).sum();
            assert!((shares - 1.0).abs() < 1e-9, "shares sum to 1, got {shares}");
            assert!(a
                .users
                .iter()
                .all(|u| (0.0..=cfg.grid_km).contains(&u.x_km)
                    && (0.0..=cfg.grid_km).contains(&u.y_km)));
            assert!(a.users.iter().all(|u| u.demand > 0.0));
        }
        let urban = urban();
        let rural = MetroScenario::generate(&ScenarioPreset::Rural.config(7));
        let remote = MetroScenario::generate(&ScenarioPreset::Remote.config(7));
        assert!(urban.users.len() > rural.users.len());
        assert!(rural.users.len() > remote.users.len());
        assert!(urban.regions.iter().all(|r| r.access == AccessClass::Fiber));
        assert!(rural.regions.iter().all(|r| r.access == AccessClass::Cable));
        assert!(remote.regions.iter().all(|r| r.access == AccessClass::Dsl));
    }

    #[test]
    fn demand_shares_are_asymmetric() {
        let m = urban();
        let max = m
            .regions
            .iter()
            .map(|r| r.demand_share)
            .fold(0.0f64, f64::max);
        let min = m
            .regions
            .iter()
            .map(|r| r.demand_share)
            .fold(1.0f64, f64::min);
        assert!(max > min, "clusters of different sizes must load unevenly");
    }

    #[test]
    fn catalog_slices_partition_the_tail_and_shard_map_follows_regions() {
        let m = urban();
        assert_eq!(m.titles(), 4 + 4 * 4);
        // Hot head deals round-robin; local slices map to their region.
        for t in 0..m.titles() {
            let r = m.region_of_title(t);
            assert!(r < m.regions.len());
            if t >= m.config.hot_titles {
                assert!(m.regions[r].local_titles.contains(&t));
            }
        }
        for shards in [1, 2, 4, 8] {
            let map = m.shard_map(shards);
            assert_eq!(map.len(), m.titles());
            assert!(map.iter().all(|&s| s < shards));
        }
        // Region slots partition the slot space.
        let mut seen = [false; 8];
        for r in 0..m.regions.len() {
            for s in m.region_slots(r, 8) {
                assert!(!seen[s], "slot {s} owned twice");
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn workload_is_sorted_attributed_and_reproducible() {
        let m = urban();
        let wl = ScenarioWorkload {
            rate_per_minute: 6.0,
            horizon: Minutes(300.0),
            mean_patience: Minutes(30.0),
            diurnal: false,
            flash: None,
            seed: 11,
        };
        let reqs = wl.generate(&m);
        assert_eq!(reqs, wl.generate(&m), "stream must be bit-reproducible");
        assert!(reqs.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(reqs.iter().all(|r| r.video < m.titles()));
        // Every request's title is either hot or owned by its region.
        for r in &reqs {
            if r.video >= m.config.hot_titles {
                assert_eq!(m.region_of_title(r.video), r.region);
            }
        }
        // Bigger regions request more.
        let mut counts = vec![0usize; m.regions.len()];
        for r in &reqs {
            counts[r.region] += 1;
        }
        let (hi, lo) = (
            m.regions
                .iter()
                .max_by(|a, b| a.demand_share.total_cmp(&b.demand_share))
                .unwrap()
                .id,
            m.regions
                .iter()
                .min_by(|a, b| a.demand_share.total_cmp(&b.demand_share))
                .unwrap()
                .id,
        );
        assert!(counts[hi] > counts[lo], "{counts:?}");
    }

    #[test]
    fn flash_crowd_rotates_only_the_named_region_after_the_premiere() {
        let m = urban();
        let base = ScenarioWorkload {
            rate_per_minute: 8.0,
            horizon: Minutes(400.0),
            mean_patience: Minutes(30.0),
            diurnal: false,
            flash: None,
            seed: 23,
        };
        let flash = ScenarioWorkload {
            flash: Some(FlashCrowd {
                at: Minutes(200.0),
                region: 1,
            }),
            ..base
        };
        let plain = base.generate(&m);
        let crowd = flash.generate(&m);
        assert_eq!(plain.len(), crowd.len());
        let premiere = *m.regions[1].local_titles.last().unwrap();
        let mut premiere_hits = 0usize;
        for (p, c) in plain.iter().zip(&crowd) {
            assert_eq!(p.at, c.at, "flash crowds never move arrivals");
            assert_eq!(p.patience, c.patience);
            assert_eq!(p.region, c.region);
            if p.region != 1 || p.at < Minutes(200.0) {
                assert_eq!(p.video, c.video, "other regions / pre-premiere untouched");
            }
            if c.at >= Minutes(200.0) && c.video == premiere {
                premiere_hits += 1;
            }
        }
        // The cold title now draws the head's demand: post-premiere it
        // is the region's single most-requested title.
        let mut per_title = std::collections::HashMap::new();
        for r in crowd
            .iter()
            .filter(|r| r.region == 1 && r.at >= Minutes(200.0))
        {
            *per_title.entry(r.video).or_insert(0usize) += 1;
        }
        let top = per_title.iter().max_by_key(|&(_, &c)| c).unwrap();
        assert_eq!(*top.0, premiere, "premiere must lead: {per_title:?}");
        // Before the premiere the title was cold: a tail-share trickle.
        let pre_hits = plain
            .iter()
            .filter(|r| r.at < Minutes(200.0) && r.video == premiere)
            .count();
        assert!(
            premiere_hits > 2 * pre_hits,
            "premiere {premiere_hits} vs cold baseline {pre_hits}"
        );
    }

    #[test]
    fn diurnal_layer_concentrates_arrivals_near_the_peak() {
        let m = urban();
        let wl = ScenarioWorkload {
            rate_per_minute: 10.0,
            horizon: Minutes(600.0),
            mean_patience: Minutes(30.0),
            diurnal: true,
            flash: None,
            seed: 5,
        };
        let reqs = wl.generate(&m);
        let count = |lo: f64, hi: f64| {
            reqs.iter()
                .filter(|r| r.at.value() >= lo && r.at.value() < hi)
                .count()
        };
        // Peak sits at 0.6 × horizon = 360.
        assert!(count(330.0, 390.0) > 2 * count(0.0, 60.0));
    }

    #[test]
    fn to_workload_strips_only_the_region() {
        let m = urban();
        let reqs = ScenarioWorkload {
            rate_per_minute: 3.0,
            horizon: Minutes(100.0),
            mean_patience: Minutes(10.0),
            diurnal: false,
            flash: None,
            seed: 2,
        }
        .generate(&m);
        let wl = to_workload(&reqs);
        assert_eq!(wl.len(), reqs.len());
        for (a, b) in reqs.iter().zip(&wl) {
            assert_eq!((a.at, a.video, a.patience), (b.at, b.video, b.patience));
        }
    }

    #[test]
    #[should_panic(expected = "outside the catalog")]
    fn region_of_title_rejects_out_of_range() {
        let m = urban();
        let _ = m.region_of_title(m.titles());
    }
}
