//! Catalog placement over a multi-server metro: which server shards
//! host which titles.
//!
//! The scenario pack ([`crate::scenario`]) gives the *demand* side of a
//! metropolitan deployment — regions, access classes, region-local
//! catalogs behind a shared hot head. This module adds the *supply*
//! side: a [`Placement`] maps every global title to the set of server
//! shards that broadcast it, under one of four [`PlacementPolicy`]
//! recipes:
//!
//! * [`PlacementPolicy::FullReplication`] — every server hosts every
//!   title. Zero cross-server traffic, maximal broadcast spend: the
//!   naive metro deployment every other policy is measured against.
//! * [`PlacementPolicy::Partitioned`] — every title lives on exactly
//!   one server (its owning region's home). Minimal broadcast spend,
//!   maximal backbone traffic: the paper-bound corner.
//! * [`PlacementPolicy::HotHead`] — the shared hot head is replicated
//!   everywhere, the regional tail stays partitioned. The classic
//!   replicate-the-head compromise.
//! * [`PlacementPolicy::PopularityProportional`] — each title's replica
//!   count scales with its Zipf share (clamped to `1..=servers`),
//!   spread ring-wise from the owner.
//!
//! Everything is a pure function of the scenario and the server count:
//! two calls with equal inputs produce identical host tables, which is
//! what lets `analysis::distribution_study` promise byte-identical
//! artifacts across `--shards × --threads × --agenda`.

use serde::{Deserialize, Serialize};

use crate::scenario::MetroScenario;
use crate::zipf::ZipfPopularity;

/// A catalog placement recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Every server hosts every title.
    FullReplication,
    /// Every title lives only on its owning region's home server.
    Partitioned,
    /// The hot head is replicated on every server; the regional tail is
    /// partitioned.
    HotHead,
    /// Replica count proportional to the title's Zipf share, at least
    /// one, spread ring-wise from the owner.
    PopularityProportional,
}

impl PlacementPolicy {
    /// Parse a CLI spelling (`full`, `partitioned`, `hothead`,
    /// `proportional`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "full" => Some(Self::FullReplication),
            "partitioned" => Some(Self::Partitioned),
            "hothead" => Some(Self::HotHead),
            "proportional" => Some(Self::PopularityProportional),
            _ => None,
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::FullReplication => "full",
            Self::Partitioned => "partitioned",
            Self::HotHead => "hothead",
            Self::PopularityProportional => "proportional",
        }
    }

    /// All four policies, in report order.
    #[must_use]
    pub fn all() -> Vec<Self> {
        vec![
            Self::FullReplication,
            Self::Partitioned,
            Self::HotHead,
            Self::PopularityProportional,
        ]
    }
}

/// A concrete title → hosting-servers table for one metro.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The recipe that produced it.
    pub policy: PlacementPolicy,
    /// Server shard count (≥ 1).
    pub servers: usize,
    /// `hosts[title]` = sorted list of servers broadcasting the title.
    /// Every list is non-empty and always contains the owner's home.
    pub hosts: Vec<Vec<usize>>,
    /// `home[region]` = the region's home server (`region % servers`).
    pub home: Vec<usize>,
}

impl Placement {
    /// Build the placement for `scenario` over `servers` server shards.
    ///
    /// The owner of a title is its owning region's home server
    /// (`region_of_title(t) % servers`), so a partitioned tail always
    /// lands on the server its requesters call home.
    ///
    /// # Panics
    /// Panics when `servers` is zero.
    #[must_use]
    pub fn build(policy: PlacementPolicy, scenario: &MetroScenario, servers: usize) -> Self {
        assert!(servers > 0, "a metro needs at least one server");
        let titles = scenario.titles();
        let hot = scenario.config.hot_titles;
        let local = scenario.config.local_titles.max(1);
        // Zipf ranks as each region sees them: the hot head takes ranks
        // 0..hot, a local title its in-slice rank after the head.
        let zipf = ZipfPopularity::paper(hot + scenario.config.local_titles);
        let rank_of = |t: usize| if t < hot { t } else { hot + (t - hot) % local };
        let head_share = zipf.probability(0);
        let owner = |t: usize| scenario.region_of_title(t) % servers;

        let hosts: Vec<Vec<usize>> = (0..titles)
            .map(|t| {
                let replicas = match policy {
                    PlacementPolicy::FullReplication => servers,
                    PlacementPolicy::Partitioned => 1,
                    PlacementPolicy::HotHead => {
                        if t < hot {
                            servers
                        } else {
                            1
                        }
                    }
                    PlacementPolicy::PopularityProportional => {
                        // Replicas ∝ the title's Zipf share relative to
                        // the head rank, rounded up, clamped to the
                        // server ring.
                        let share = zipf.probability(rank_of(t)) / head_share;
                        ((servers as f64 * share).ceil() as usize).clamp(1, servers)
                    }
                };
                let start = owner(t);
                let mut list: Vec<usize> = (0..replicas).map(|i| (start + i) % servers).collect();
                list.sort_unstable();
                list
            })
            .collect();

        Self {
            policy,
            servers,
            hosts,
            home: (0..scenario.regions.len()).map(|r| r % servers).collect(),
        }
    }

    /// The servers hosting `title`.
    ///
    /// # Panics
    /// Panics when `title` is outside the catalog.
    #[must_use]
    pub fn hosts(&self, title: usize) -> &[usize] {
        &self.hosts[title]
    }

    /// Whether `server` broadcasts `title`.
    #[must_use]
    pub fn is_hosted(&self, server: usize, title: usize) -> bool {
        self.hosts[title].binary_search(&server).is_ok()
    }

    /// The home server of `region`.
    #[must_use]
    pub fn home_of(&self, region: usize) -> usize {
        self.home[region]
    }

    /// The server a session from `region` fetches `title` from: its
    /// home when the home hosts the title, otherwise the hosting server
    /// nearest on the ring (lowest id on ties) — a remote fetch.
    #[must_use]
    pub fn route(&self, region: usize, title: usize) -> usize {
        let home = self.home_of(region);
        if self.is_hosted(home, title) {
            return home;
        }
        *self.hosts[title]
            .iter()
            .min_by_key(|&&s| {
                let fwd = (s + self.servers - home) % self.servers;
                let back = (home + self.servers - s) % self.servers;
                (fwd.min(back), s)
            })
            .expect("every title has at least one host")
    }

    /// Titles stored per server, in server order — the storage story of
    /// the placement.
    #[must_use]
    pub fn storage_per_server(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.servers];
        for list in &self.hosts {
            for &s in list {
                out[s] += 1;
            }
        }
        out
    }

    /// Total replicas across the catalog (`Σ |hosts(t)|`).
    #[must_use]
    pub fn total_replicas(&self) -> usize {
        self.hosts.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioPreset;

    fn urban() -> MetroScenario {
        MetroScenario::generate(&ScenarioPreset::Urban.config(7))
    }

    #[test]
    fn policies_parse_and_name_round_trip() {
        for p in PlacementPolicy::all() {
            assert_eq!(PlacementPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(PlacementPolicy::parse("bogus"), None);
    }

    #[test]
    fn full_replication_puts_everything_everywhere() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::FullReplication, &m, 4);
        assert_eq!(p.hosts.len(), m.titles());
        for t in 0..m.titles() {
            assert_eq!(p.hosts(t), &[0, 1, 2, 3]);
        }
        assert_eq!(p.storage_per_server(), vec![m.titles(); 4]);
    }

    #[test]
    fn partitioned_pins_each_title_to_its_owners_home() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::Partitioned, &m, 4);
        for t in 0..m.titles() {
            let owner = m.region_of_title(t) % 4;
            assert_eq!(p.hosts(t), &[owner], "title {t}");
            // Its own region always routes home.
            assert_eq!(p.route(m.region_of_title(t), t), owner);
        }
        // The urban metro: 4 + 4·4 titles over 4 servers, evenly dealt.
        assert_eq!(p.storage_per_server(), vec![5; 4]);
    }

    #[test]
    fn hot_head_replicates_exactly_the_head() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::HotHead, &m, 4);
        for t in 0..m.titles() {
            if t < m.config.hot_titles {
                assert_eq!(p.hosts(t).len(), 4, "hot title {t} must be everywhere");
            } else {
                assert_eq!(p.hosts(t).len(), 1, "tail title {t} must be partitioned");
            }
        }
        // Hot-head routing never crosses the backbone: every request is
        // either hot (home-hosted) or region-local tail (owner's home).
        for r in 0..m.regions.len() {
            for t in 0..m.config.hot_titles {
                assert_eq!(p.route(r, t), p.home_of(r));
            }
        }
    }

    #[test]
    fn proportional_scales_replicas_with_rank_and_keeps_one_minimum() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::PopularityProportional, &m, 4);
        // Rank 0 (the hottest title) gets the full ring.
        assert_eq!(p.hosts(0).len(), 4);
        // Replica counts never increase with rank over the hot head.
        let counts: Vec<usize> = (0..m.config.hot_titles).map(|t| p.hosts(t).len()).collect();
        assert!(counts.windows(2).all(|w| w[0] >= w[1]), "{counts:?}");
        // Every tail title keeps at least one replica, owner included.
        for t in m.config.hot_titles..m.titles() {
            assert!(!p.hosts(t).is_empty());
            let owner = m.region_of_title(t) % 4;
            assert!(p.hosts(t).contains(&owner));
        }
    }

    #[test]
    fn placement_is_deterministic_and_pins_the_urban_map() {
        let m = urban();
        for policy in PlacementPolicy::all() {
            for servers in [1, 2, 4] {
                let a = Placement::build(policy, &m, servers);
                let b = Placement::build(policy, &m, servers);
                assert_eq!(a, b, "{policy:?} × {servers} must be reproducible");
                for t in 0..m.titles() {
                    assert!(
                        a.hosts(t).windows(2).all(|w| w[0] < w[1]),
                        "sorted, deduped"
                    );
                }
            }
        }
        // The pinned title → host map for hot-head on two servers: hot
        // head everywhere, tail on its owner's home (region % 2).
        let p = Placement::build(PlacementPolicy::HotHead, &m, 2);
        let expect: Vec<Vec<usize>> = (0..m.titles())
            .map(|t| {
                if t < m.config.hot_titles {
                    vec![0, 1]
                } else {
                    vec![m.region_of_title(t) % 2]
                }
            })
            .collect();
        assert_eq!(p.hosts, expect);
    }

    #[test]
    fn remote_routes_pick_the_nearest_ring_host() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::Partitioned, &m, 4);
        // A tail title owned by region 2 (home 2), requested from
        // region 1 (home 1): the only host is 2.
        let t = m.regions[2].local_titles[0];
        assert_eq!(p.route(1, t), 2);
        assert_ne!(p.route(1, t), p.home_of(1), "this is a remote fetch");
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_is_rejected() {
        let _ = Placement::build(PlacementPolicy::FullReplication, &urban(), 0);
    }
}
