//! Streaming-vs-materializing equivalence across every client model.
//!
//! The contract the `sink` module promises, pinned end to end: for the
//! same plan, arrivals and seeds, a [`StreamingFold`] (which drops every
//! trace on acceptance) and a [`CollectTraces`] (which retains them all)
//! produce **bitwise-identical** summary statistics — same struct, same
//! serialized bytes — and neither perturbs the [`SystemSim`] report.
//! Holding for all three client models (the tune-at-start policies, the
//! PPB pausing client, the Harmonic recording client) is what lets
//! experiments switch to the streaming path wholesale without changing a
//! published number.

use sb_core::config::SystemConfig;
use sb_core::plan::{ChannelPlan, VideoId};
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_pyramid::{HarmonicBroadcasting, PermutationPyramid};
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::trace::{ClientModel, PausingClient, RecordingClient};
use sb_sim::{apply_losses, CollectTraces, LossModel, RunConfig, StreamingFold, TraceSink};
use vod_units::{Mbps, Minutes};

fn requests(n: usize, videos: usize, span: f64) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            at: Minutes(span * (i as f64 + 0.41) / n as f64),
            video: VideoId(i % videos),
        })
        .collect()
}

/// Each model against the plan its scheme prescribes.
fn lineup() -> Vec<(&'static str, ChannelPlan, Box<dyn ClientModel>)> {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    vec![
        (
            "latest-feasible on SB:W=52",
            Skyscraper::with_width(Width::Capped(52))
                .plan(&cfg)
                .unwrap(),
            Box::new(ClientPolicy::LatestFeasible),
        ),
        (
            "pausing on PPB:b",
            PermutationPyramid::b().plan(&cfg).unwrap(),
            Box::new(PausingClient),
        ),
        (
            "recording on HB",
            HarmonicBroadcasting::delayed().plan(&cfg).unwrap(),
            Box::new(RecordingClient::default()),
        ),
    ]
}

#[test]
fn every_client_model_folds_bitwise_equal_to_materializing() {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    let reqs = requests(48, 3, 60.0);
    for (name, plan, model) in lineup() {
        let mut fold = StreamingFold::new();
        let folded = SystemSim::new(&plan, cfg.display_rate, model.as_ref())
            .execute(RunConfig::new(&reqs).sink(&mut fold))
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .summary;
        let mut collect = CollectTraces::new();
        let collected = SystemSim::new(&plan, cfg.display_rate, model.as_ref())
            .execute(RunConfig::new(&reqs).sink(&mut collect))
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .summary;

        // Sinks observe, they never steer: the reports agree.
        assert_eq!(folded, collected, "{name}: sink changed the report");
        assert_eq!(collect.traces.len(), reqs.len(), "{name}");

        // The two paths' summaries are the same bytes.
        let a = fold.finish();
        let b = collect.summarize();
        assert_eq!(a, b, "{name}: summaries diverge");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{name}: serialized summaries diverge"
        );

        // And they agree with the report where the fields overlap.
        assert_eq!(a.sessions, folded.sessions, "{name}");
        assert_eq!(a.mean_latency, folded.mean_latency, "{name}");
        assert_eq!(a.p95_latency, folded.p95_latency, "{name}");
        assert_eq!(a.worst_buffer, folded.worst_buffer, "{name}");
        assert_eq!(a.delivered_minutes, folded.delivered_minutes, "{name}");
    }
}

#[test]
fn stall_accounting_is_equivalent_across_models() {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    for (name, plan, model) in lineup() {
        let losses = LossModel::new(0.15, 29).unwrap();
        let mut fold = StreamingFold::new();
        let mut collect = CollectTraces::new();
        for i in 0..24 {
            let arrival = Minutes(40.0 * (i as f64 + 0.17) / 24.0);
            let trace = model
                .session(&plan, VideoId(0), arrival, cfg.display_rate)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            // The same seeded loss process replayed twice: both sinks see
            // identical stall reports, in identical order.
            let report = apply_losses(&plan, &trace, &losses);
            fold.accept_stalls(&report);
            collect.accept_stalls(&report);
        }
        let a = fold.finish();
        let b = collect.summarize();
        assert_eq!(a, b, "{name}: stall summaries diverge");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{name}: serialized stall summaries diverge"
        );
        assert_eq!(a.sessions, 24, "{name}");
        assert!(
            a.stalls > 0,
            "{name}: 15% loss must stall at least one session"
        );
    }
}
