//! Checkpoint/restore bitwise-identity properties.
//!
//! The flagship invariant of the crash-recovery work: a run that is
//! **killed at a checkpoint and resumed from the serialized bytes** is
//! bitwise identical to the uninterrupted run — same report, same fold,
//! same metrics snapshot, same serialized bytes — for **all three client
//! models** and **both agenda backends**, including *cross-backend*
//! restores (checkpoint written under the heap, resumed under the
//! wheel). The checkpoint travels through its real wire format
//! (`SBCKPT` header + checksum + payload), not through in-memory state.

use proptest::prelude::*;
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::plan::{ChannelPlan, VideoId};
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_pyramid::{HarmonicBroadcasting, PermutationPyramid};
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::trace::{ClientModel, PausingClient, RecordingClient};
use sb_sim::{
    merge_shard_runs, plan_shards, AgendaKind, Probe, RunConfig, RunOutcome, ShardCrash, Verdict,
};

/// Each model against the plan its scheme prescribes (the same lineup
/// the shard-invariance suite pins).
fn lineup() -> Vec<(&'static str, ChannelPlan, Box<dyn ClientModel>)> {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    vec![
        (
            "latest-feasible on SB:W=52",
            Skyscraper::with_width(Width::Capped(52))
                .plan(&cfg)
                .unwrap(),
            Box::new(ClientPolicy::LatestFeasible),
        ),
        (
            "pausing on PPB:b",
            PermutationPyramid::b().plan(&cfg).unwrap(),
            Box::new(PausingClient),
        ),
        (
            "recording on HB",
            HarmonicBroadcasting::delayed().plan(&cfg).unwrap(),
            Box::new(RecordingClient::default()),
        ),
    ]
}

fn outcome_bytes(o: &RunOutcome) -> (String, String, String) {
    (
        serde_json::to_string(&o.summary).unwrap(),
        serde_json::to_string(&o.fold).unwrap(),
        serde_json::to_string(&o.snapshot).unwrap(),
    )
}

/// Run the whole request stream as one supervised shard: kill it right
/// after checkpoint `kill_at_ckpt` (written under `agenda_a`), then
/// resume from those exact bytes under `agenda_b`. If the run finishes
/// before that checkpoint exists, the uninterrupted result is used —
/// the property still has to hold.
fn killed_and_resumed(
    sim: &SystemSim<'_>,
    requests: &[Request],
    cadence: u64,
    kill_at_ckpt: u64,
    agenda_a: AgendaKind,
    agenda_b: AgendaKind,
) -> (RunOutcome, bool) {
    let slices = plan_shards(requests, 1, 0, None);
    let slice = &slices[0];

    let mut captured: Option<Vec<u8>> = None;
    let mut probe = |p: Probe<'_>| -> Verdict {
        if let Probe::Checkpoint { index, encoded } = p {
            captured = Some(encoded.to_vec());
            if index == kill_at_ckpt {
                return Verdict::Kill;
            }
        }
        Verdict::Continue
    };
    let first = sim.run_shard(slice, agenda_a, cadence, None, &mut probe);
    let (run, was_killed) = match first {
        Ok(run) => (run, false),
        Err(ShardCrash::Killed(_)) => {
            let bytes = captured.expect("a kill at a checkpoint implies captured bytes");
            let mut quiet = |_: Probe<'_>| Verdict::Continue;
            let resumed = sim
                .run_shard(slice, agenda_b, cadence, Some(&bytes), &mut quiet)
                .expect("resume from an intact checkpoint");
            (resumed, true)
        }
        Err(e) => panic!("unexpected shard crash: {e}"),
    };
    let outcome = merge_shard_runs(vec![(0, run)], "checkpoint-test").unwrap();
    (outcome, was_killed)
}

fn requests_for(plan: &ChannelPlan, n: usize, span: f64) -> Vec<Request> {
    let videos = plan.num_videos().max(1);
    (0..n)
        .map(|i| Request {
            at: Minutes(span * (i as f64 + 0.31) / n as f64),
            video: VideoId(i % videos),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn killed_and_resumed_runs_are_bitwise_identical(
        cadence in 5u64..40,
        kill_at_ckpt in 1u64..5,
        n in 40usize..120,
        span in 20.0f64..90.0,
        heap_first in any::<bool>(),
    ) {
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        let (agenda_a, agenda_b) = if heap_first {
            (AgendaKind::Heap, AgendaKind::Wheel)
        } else {
            (AgendaKind::Wheel, AgendaKind::Heap)
        };
        for (name, plan, model) in lineup() {
            let requests = requests_for(&plan, n, span);
            let sim = SystemSim::new(&plan, cfg.display_rate, model.as_ref());
            let base = sim
                .execute(RunConfig::new(&requests))
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            let (resumed, _) =
                killed_and_resumed(&sim, &requests, cadence, kill_at_ckpt, agenda_a, agenda_b);
            prop_assert_eq!(
                outcome_bytes(&base),
                outcome_bytes(&resumed),
                "{}: killed+resumed diverged from uninterrupted \
                 (cadence {}, kill at ckpt {}, {:?}->{:?})",
                name, cadence, kill_at_ckpt, agenda_a, agenda_b
            );
        }
    }
}

/// Deterministic regression: a checkpoint written under the heap backend
/// restores under the wheel backend (and vice versa) without changing a
/// byte — the normalized checkpoint format is backend-free.
#[test]
fn heap_checkpoint_restores_under_wheel_bit_for_bit() {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    for (name, plan, model) in lineup() {
        let requests = requests_for(&plan, 96, 45.0);
        let sim = SystemSim::new(&plan, cfg.display_rate, model.as_ref());
        let base = sim.execute(RunConfig::new(&requests)).unwrap();
        for (a, b) in [
            (AgendaKind::Heap, AgendaKind::Wheel),
            (AgendaKind::Wheel, AgendaKind::Heap),
        ] {
            let (resumed, was_killed) = killed_and_resumed(&sim, &requests, 20, 2, a, b);
            assert!(was_killed, "{name}: the kill at checkpoint 2 must fire");
            assert_eq!(
                outcome_bytes(&base),
                outcome_bytes(&resumed),
                "{name}: {a:?}-written checkpoint diverged restoring under {b:?}"
            );
        }
    }
}
