//! Property test for `sim::shard`: sharding is invisible in the results.
//!
//! For random request streams (arbitrary arrival fractions, video
//! choices and shard-hash seeds) and **all three client models**, a
//! `shards(4)` run on a worker pool must be *bitwise* identical to the
//! serial `shards(1)` run: same [`SystemReport`], same streamed
//! [`StreamingFold`] summary (struct and serialized bytes), same merged
//! metrics snapshot, and the same engine-event totals. This pins the
//! merge-as-ordered-replay argument of `DESIGN.md` §11 against the
//! whole input space, not just the handcrafted unit fixtures.

use proptest::prelude::*;
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::plan::{ChannelPlan, VideoId};
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_pyramid::{HarmonicBroadcasting, PermutationPyramid};
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::trace::{ClientModel, PausingClient, RecordingClient};
use sb_sim::{RunConfig, StreamingFold};

/// Each model against the plan its scheme prescribes (the same lineup
/// the streaming-equivalence suite pins).
fn lineup() -> Vec<(&'static str, ChannelPlan, Box<dyn ClientModel>)> {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    vec![
        (
            "latest-feasible on SB:W=52",
            Skyscraper::with_width(Width::Capped(52))
                .plan(&cfg)
                .unwrap(),
            Box::new(ClientPolicy::LatestFeasible),
        ),
        (
            "pausing on PPB:b",
            PermutationPyramid::b().plan(&cfg).unwrap(),
            Box::new(PausingClient),
        ),
        (
            "recording on HB",
            HarmonicBroadcasting::delayed().plan(&cfg).unwrap(),
            Box::new(RecordingClient::default()),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn four_shards_fold_bitwise_equal_to_one(
        fracs in prop::collection::vec(0.0f64..1.0, 1..48),
        vids in prop::collection::vec(0usize..16, 48),
        span in 1.0f64..240.0,
        shard_seed in any::<u64>(),
    ) {
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        for (name, plan, model) in lineup() {
            let videos = plan.num_videos().max(1);
            let reqs: Vec<Request> = fracs
                .iter()
                .zip(&vids)
                .map(|(&frac, &v)| Request {
                    at: Minutes(span * frac),
                    video: VideoId(v % videos),
                })
                .collect();

            let mut base_fold = StreamingFold::new();
            let base = SystemSim::new(&plan, cfg.display_rate, model.as_ref())
                .execute(RunConfig::new(&reqs).sink(&mut base_fold).seed(shard_seed))
                .unwrap_or_else(|e| panic!("{name}: {e}"));

            let mut sharded_fold = StreamingFold::new();
            let sharded = SystemSim::new(&plan, cfg.display_rate, model.as_ref())
                .execute(
                    RunConfig::new(&reqs)
                        .sink(&mut sharded_fold)
                        .shards(4)
                        .threads(2)
                        .seed(shard_seed),
                )
                .unwrap_or_else(|e| panic!("{name}: {e}"));

            // The engine-side report, the streamed fold and the merged
            // snapshot are the same structs…
            prop_assert_eq!(&base.summary, &sharded.summary, "{}: report diverged", name);
            prop_assert_eq!(&base.fold, &sharded.fold, "{}: fold diverged", name);
            prop_assert_eq!(&base.snapshot, &sharded.snapshot, "{}: snapshot diverged", name);

            // …and the same bytes, caller-side sinks included.
            let a = base_fold.finish();
            let b = sharded_fold.finish();
            prop_assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "{}: caller fold bytes diverged", name
            );
            prop_assert_eq!(
                serde_json::to_string(&base.fold).unwrap(),
                serde_json::to_string(&sharded.fold).unwrap(),
                "{}: outcome fold bytes diverged", name
            );
            prop_assert_eq!(
                serde_json::to_string(&base.snapshot).unwrap(),
                serde_json::to_string(&sharded.snapshot).unwrap(),
                "{}: snapshot bytes diverged", name
            );

            // Event totals are conserved across the partition; only the
            // agenda split may differ (4 shards, 4 high-water marks).
            prop_assert_eq!(base.stats.scheduled, sharded.stats.scheduled, "{}", name);
            prop_assert_eq!(base.stats.fired, sharded.stats.fired, "{}", name);
            prop_assert_eq!(base.stats.cancelled, sharded.stats.cancelled, "{}", name);
            prop_assert_eq!(sharded.shard_peak_agenda.len(), 4, "{}", name);
        }
    }
}
