//! End-to-end packet-level replay of a client session.
//!
//! The closed-form [`crate::trace::SessionTrace`] treats receptions as
//! fluid flows. This module re-executes a session at *packet* granularity
//! on the discrete-event [`crate::engine::Engine`]: each reception window
//! is chopped into fixed-duration packets, every packet arrival is an
//! engine event, the player's deadline for each byte is checked against
//! actual cumulative deliveries, and the buffer peak is measured from the
//! event sequence alone.
//!
//! Its purpose is defence in depth: the fluid model and the packet replay
//! are *independent* accountings of the same session, so agreement (peak
//! within one packet per concurrent stream, zero underruns) catches
//! errors in either. Because the input is a trace, the replay works for
//! every client model uniformly — tune-at-start downloads, PPB's
//! mid-broadcast chunks, HB's wrap-around recordings — and it also gives
//! the repository a concrete answer to "what does the set-top box
//! actually see on the wire": packets per second, instantaneous stream
//! counts, burst boundaries.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Minutes, Seconds, TickScale, Ticks};

use crate::engine::Engine;
use crate::trace::SessionTrace;

/// Configuration of the packet replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketConfig {
    /// Simulated-time resolution.
    pub scale: TickScale,
    /// Packet pacing: one packet per this many ticks per active stream.
    pub ticks_per_packet: u64,
    /// Network delay jitter: each packet is delayed by a deterministic
    /// pseudo-random amount in `[0, jitter_ticks]`. Zero = ideal plant.
    pub jitter_ticks: u64,
    /// Client de-jitter buffer: playback deadlines are relaxed by this
    /// startup delay (the set-top box holds back playback to absorb
    /// `jitter_ticks` of network variation).
    pub dejitter_ticks: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for PacketConfig {
    fn default() -> Self {
        Self {
            // 100 ticks/s, one packet per 10 ticks → 10 packets/s/stream:
            // at 1.5 Mb/s a packet is 18.75 kB, a cable-plant-ish burst.
            scale: TickScale::default(),
            ticks_per_packet: 10,
            jitter_ticks: 0,
            dejitter_ticks: 0,
            seed: 0,
        }
    }
}

impl PacketConfig {
    /// An ideal plant with the given jitter and a matching de-jitter
    /// buffer (the correct dimensioning: hold back exactly the worst-case
    /// network delay).
    #[must_use]
    pub fn with_jitter(jitter_ticks: u64, seed: u64) -> Self {
        Self {
            jitter_ticks,
            dejitter_ticks: jitter_ticks,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic per-packet delay in `[0, jitter]` (splitmix-style hash of
/// seed, stream and packet index).
fn packet_jitter(seed: u64, stream: usize, idx: u64, jitter: u64) -> u64 {
    if jitter == 0 {
        return 0;
    }
    let mut x = seed
        ^ (stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ idx.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % (jitter + 1)
}

/// One detected underrun: the player needed data that had not arrived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Underrun {
    /// The starving segment.
    pub segment: usize,
    /// When the player ran dry.
    pub at: Minutes,
    /// How many Mbits short the delivery was at that instant.
    pub shortfall: Mbits,
}

/// The outcome of a packet-level replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eReport {
    /// Total packets delivered.
    pub packets: usize,
    /// Peak buffer observed across packet events, Mbits.
    pub peak_buffer: Mbits,
    /// Largest number of simultaneously active reception streams.
    pub max_streams: usize,
    /// Underruns detected (empty for a correct trace).
    pub underruns: Vec<Underrun>,
}

/// Replay `trace` at packet granularity.
///
/// # Panics
/// Panics if the trace's times are not finite.
#[must_use]
pub fn replay(trace: &SessionTrace, cfg: PacketConfig) -> E2eReport {
    #[derive(Clone, Copy)]
    enum Ev {
        /// A packet of `bits` for reception stream `reception` (cumulative
        /// delivery bookkeeping happens in the handler).
        Packet {
            reception: usize,
            bits: f64,
        },
        StreamStart,
        StreamEnd,
    }

    let scale = cfg.scale;
    let mut engine: Engine<Ev> = Engine::new();

    // Enqueue every packet of every reception window up front; the engine
    // orders and replays them. Each window [start, end) at rate r becomes
    // ⌈window/packet⌉ packets, the last one short.
    for (reception, rec) in trace.receptions.iter().enumerate() {
        let start = scale.duration_from_seconds(Seconds(rec.start.value() * 60.0));
        let end = scale.duration_from_seconds(Seconds(rec.end().value() * 60.0));
        engine.schedule_at(Ticks::ZERO + start, Ev::StreamStart);
        engine.schedule_at(Ticks::ZERO + end, Ev::StreamEnd);
        let window_ticks = (end.0).saturating_sub(start.0);
        let mut t = start.0;
        let mut delivered = 0.0f64;
        let mut idx = 0u64;
        while t < start.0 + window_ticks {
            let step = cfg.ticks_per_packet.min(start.0 + window_ticks - t);
            t += step;
            let upto = scale
                .data_over(rec.rate, vod_units::TickDuration(t - start.0))
                .value()
                .min(rec.size.value());
            let bits = upto - delivered;
            delivered = upto;
            if bits > 0.0 {
                let delay = packet_jitter(cfg.seed, reception, idx, cfg.jitter_ticks);
                engine.schedule_at(Ticks(t + delay), Ev::Packet { reception, bits });
            }
            idx += 1;
        }
    }

    let b = trace.display_rate.value();
    // The de-jitter buffer shifts every playback deadline later.
    let dejitter_min = cfg.dejitter_ticks as f64 / scale.ticks_per_second as f64 / 60.0;
    let playback_start_min = trace.playback_start.value() + dejitter_min;
    let total: f64 = trace.segment_sizes.iter().map(|s| s.value()).sum();
    let playback_end_min = trace.playback_end().value();

    // Per-reception cumulative deliveries, per-segment playback offsets,
    // and each segment's reception streams (a segment may arrive as
    // several content intervals — PPB chunks, HB wrap halves).
    let n = trace.segment_sizes.len();
    let mut delivered_rec = vec![0.0f64; trace.receptions.len()];
    let pb_start: Vec<f64> = (0..n)
        .map(|i| trace.playback_start_of(i).value() + dejitter_min)
        .collect();
    let mut streams_of_segment: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, rec) in trace.receptions.iter().enumerate() {
        streams_of_segment[rec.segment].push(i);
    }

    let mut packets = 0usize;
    let mut peak = 0.0f64;
    let mut streams = 0usize;
    let mut max_streams = 0usize;
    let mut delivered_total = 0.0f64;
    let mut underruns = Vec::new();

    engine.run(|_eng, at, ev| match ev {
        Ev::StreamStart => {
            streams += 1;
            max_streams = max_streams.max(streams);
        }
        Ev::StreamEnd => {
            streams = streams.saturating_sub(1);
        }
        Ev::Packet { reception, bits } => {
            let now_min = scale.seconds(at.since(Ticks::ZERO)).value() / 60.0;
            let segment = trace.receptions[reception].segment;
            // Underrun check: everything the player needed from this
            // segment *just before* this packet must already be there.
            // `needed` is a content level; each reception stream owes the
            // part of [0, needed) its content interval covers.
            let needed = ((now_min - pb_start[segment]) * b * 60.0)
                .clamp(0.0, trace.segment_sizes[segment].value());
            let packet_seconds = cfg.ticks_per_packet as f64 / scale.ticks_per_second as f64;
            let mut worst_short = 0.0f64;
            for &k in &streams_of_segment[segment] {
                let rec = &trace.receptions[k];
                let owed = (needed - rec.content_offset.value()).clamp(0.0, rec.size.value());
                // Packetization slack: a just-in-time fluid stream lags by
                // up to one whole packet at its own rate, plus tick
                // rounding of the window start. Two packets' worth is the
                // agreed margin. Network jitter is NOT added — absorbing
                // it is the de-jitter buffer's job; an undersized buffer
                // must surface as an underrun.
                let slack = 2.0 * rec.rate.value() * packet_seconds
                    + 2.0 * b / scale.ticks_per_second as f64;
                if owed > delivered_rec[k] + slack + 1e-9 {
                    worst_short = worst_short.max(owed - delivered_rec[k]);
                }
            }
            if worst_short > 0.0 {
                underruns.push(Underrun {
                    segment,
                    at: Minutes(now_min),
                    shortfall: Mbits(worst_short),
                });
            }
            delivered_rec[reception] += bits;
            delivered_total += bits;
            packets += 1;
            let consumed = ((now_min - playback_start_min) * b * 60.0).clamp(
                0.0,
                total.min((playback_end_min - playback_start_min) * b * 60.0),
            );
            peak = peak.max(delivered_total - consumed);
        }
    });

    E2eReport {
        packets,
        peak_buffer: Mbits(peak.max(0.0)),
        max_streams,
        underruns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schedule_client, ClientPolicy};
    use crate::trace::{ClientModel, PausingClient, RecordingClient};
    use sb_core::config::SystemConfig;
    use sb_core::plan::VideoId;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use sb_pyramid::{PermutationPyramid, PyramidBroadcasting, StaggeredBroadcasting};
    use vod_units::Mbps;

    fn replay_scheme(
        plan: &sb_core::plan::ChannelPlan,
        policy: ClientPolicy,
        arrival: f64,
    ) -> (SessionTrace, E2eReport) {
        let trace = policy
            .session(plan, VideoId(0), Minutes(arrival), Mbps(1.5))
            .unwrap();
        let report = replay(&trace, PacketConfig::default());
        (trace, report)
    }

    /// One packet's worth of data per concurrently active stream, the
    /// agreed tolerance between fluid and packet accounting.
    fn tolerance(report: &E2eReport, trace: &SessionTrace) -> f64 {
        let packet_seconds = 0.1; // 10 ticks at 100 ticks/s
        let max_rate: f64 = trace
            .receptions
            .iter()
            .map(|r| r.rate.value())
            .fold(0.0, f64::max);
        report.max_streams as f64 * max_rate * packet_seconds + 1.0
    }

    #[test]
    fn sb_replay_matches_fluid_model() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(52))
            .plan(&cfg)
            .unwrap();
        for arrival in [0.0, 3.7, 7.31, 11.9] {
            let (trace, report) = replay_scheme(&plan, ClientPolicy::LatestFeasible, arrival);
            assert!(
                report.underruns.is_empty(),
                "arrival {arrival}: {:?}",
                report.underruns
            );
            assert!(report.max_streams <= 2);
            let fluid = trace.peak_buffer().value();
            let diff = (report.peak_buffer.value() - fluid).abs();
            assert!(
                diff <= tolerance(&report, &trace),
                "arrival {arrival}: packet {} vs fluid {fluid}",
                report.peak_buffer
            );
            // 2 hours of video at ≥1 packet per second per stream.
            assert!(report.packets > 10_000, "{} packets", report.packets);
        }
    }

    #[test]
    fn pb_replay_matches_fluid_model() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = PyramidBroadcasting::a().plan(&cfg).unwrap();
        let (trace, report) = replay_scheme(&plan, ClientPolicy::PbEarliest, 4.4);
        assert!(report.underruns.is_empty());
        assert!(report.max_streams <= 2);
        let diff = (report.peak_buffer.value() - trace.peak_buffer().value()).abs();
        assert!(diff <= tolerance(&report, &trace));
    }

    #[test]
    fn ppb_and_staggered_replay() {
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        for plan in [
            PermutationPyramid::b().plan(&cfg).unwrap(),
            StaggeredBroadcasting.plan(&cfg).unwrap(),
        ] {
            let (trace, report) = replay_scheme(&plan, ClientPolicy::LatestFeasible, 2.2);
            assert!(report.underruns.is_empty(), "{}", plan.scheme);
            let diff = (report.peak_buffer.value() - trace.peak_buffer().value()).abs();
            assert!(diff <= tolerance(&report, &trace), "{}", plan.scheme);
        }
    }

    #[test]
    fn pausing_replay_is_underrun_free() {
        // The replay consumes traces from any model: PPB's max-saving
        // client streams dozens of mid-broadcast chunks, and the packet
        // accounting still sees every byte arrive on time.
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        let plan = PermutationPyramid::b().plan(&cfg).unwrap();
        let trace = PausingClient
            .session(&plan, VideoId(0), Minutes(3.7), cfg.display_rate)
            .unwrap();
        let report = replay(&trace, PacketConfig::default());
        assert!(
            report.underruns.is_empty(),
            "{:?}",
            &report.underruns[..report.underruns.len().min(3)]
        );
        let diff = (report.peak_buffer.value() - trace.peak_buffer().value()).abs();
        assert!(diff <= tolerance(&report, &trace));
    }

    #[test]
    fn recording_replay_catches_the_hb_bug() {
        // The HB wrap-around receptions starve at zero delay (the
        // Pâris–Carter–Long bug) and play cleanly with the one-slot fix —
        // at packet granularity, independent of the fluid analysis.
        let cfg = SystemConfig::paper_defaults(Mbps(60.0));
        let scheme = sb_pyramid::HarmonicBroadcasting::original();
        let plan = scheme.plan(&cfg).unwrap();
        let slot = scheme.slot(&cfg).unwrap();
        // An arrival phase where the fluid check shows starvation.
        let mut bug_seen = false;
        for i in 0..12 {
            let arrival = Minutes(slot.value() * i as f64 / 12.0 * 7.0);
            let buggy = RecordingClient::default()
                .session(&plan, VideoId(0), arrival, cfg.display_rate)
                .unwrap();
            let fixed = RecordingClient {
                playback_delay: slot,
            }
            .session(&plan, VideoId(0), arrival, cfg.display_rate)
            .unwrap();
            let fixed_report = replay(&fixed, PacketConfig::default());
            assert!(
                fixed_report.underruns.is_empty(),
                "arrival {arrival}: {:?}",
                &fixed_report.underruns[..fixed_report.underruns.len().min(3)]
            );
            if !buggy.is_jitter_free(1e-6) {
                let report = replay(&buggy, PacketConfig::default());
                assert!(
                    !report.underruns.is_empty(),
                    "fluid model starves at arrival {arrival}, replay must too"
                );
                bug_seen = true;
            }
        }
        assert!(bug_seen, "no starving phase sampled");
    }

    #[test]
    fn corrupted_trace_is_caught() {
        // Push one reception past its deadline: the replay must flag it.
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap();
        let mut trace = schedule_client(
            &plan,
            VideoId(0),
            Minutes(1.0),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        let last = trace.receptions.len() - 1;
        trace.receptions[last].start = Minutes(trace.receptions[last].start.value() + 5.0);
        let report = replay(&trace, PacketConfig::default());
        assert!(
            !report.underruns.is_empty(),
            "a 5-minute-late segment must starve the player"
        );
        assert_eq!(report.underruns[0].segment, last);
    }

    #[test]
    fn jitter_within_dejitter_buffer_is_absorbed() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap();
        let trace = schedule_client(
            &plan,
            VideoId(0),
            Minutes(5.2),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        // 2 seconds of network jitter, correctly dimensioned buffer.
        for seed in 0..5 {
            let report = replay(&trace, PacketConfig::with_jitter(200, seed));
            assert!(
                report.underruns.is_empty(),
                "seed {seed}: {:?}",
                &report.underruns[..report.underruns.len().min(3)]
            );
        }
    }

    #[test]
    fn undersized_dejitter_buffer_underruns() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap();
        let trace = schedule_client(
            &plan,
            VideoId(0),
            Minutes(5.2),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        // Heavy jitter (30 s) with NO de-jitter buffer: must starve.
        let mut cfg_bad = PacketConfig::with_jitter(3000, 7);
        cfg_bad.dejitter_ticks = 0;
        let report = replay(&trace, cfg_bad);
        assert!(
            !report.underruns.is_empty(),
            "3000 ticks of jitter with no buffer must underrun"
        );
    }

    #[test]
    fn finer_packets_converge_to_fluid() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap();
        let trace = schedule_client(
            &plan,
            VideoId(0),
            Minutes(5.2),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        let fluid = trace.peak_buffer().value();
        let coarse = replay(
            &trace,
            PacketConfig {
                scale: TickScale::new(100),
                ticks_per_packet: 100,
                ..PacketConfig::default()
            },
        );
        let fine = replay(
            &trace,
            PacketConfig {
                scale: TickScale::new(1000),
                ticks_per_packet: 10,
                ..PacketConfig::default()
            },
        );
        let err_coarse = (coarse.peak_buffer.value() - fluid).abs();
        let err_fine = (fine.peak_buffer.value() - fluid).abs();
        assert!(
            err_fine <= err_coarse + 1e-9,
            "fine {err_fine} vs coarse {err_coarse}"
        );
        assert!(
            err_fine < 0.2,
            "fine-grained replay within 0.2 Mbit of fluid"
        );
    }
}
