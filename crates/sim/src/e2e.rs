//! End-to-end packet-level replay of a client session.
//!
//! The closed-form [`crate::schedule::ClientSchedule`] treats receptions
//! as fluid flows. This module re-executes a session at *packet*
//! granularity on the discrete-event [`crate::engine::Engine`]: each
//! reception window is chopped into fixed-duration packets, every packet
//! arrival is an engine event, the player's deadline for each byte is
//! checked against actual cumulative deliveries, and the buffer peak is
//! measured from the event sequence alone.
//!
//! Its purpose is defence in depth: the fluid model and the packet replay
//! are *independent* accountings of the same session, so agreement (peak
//! within one packet per concurrent stream, zero underruns) catches
//! errors in either. It also gives the repository a concrete answer to
//! "what does the set-top box actually see on the wire" — packets per
//! second, instantaneous stream counts, burst boundaries.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Minutes, Seconds, TickScale, Ticks};

use crate::engine::Engine;
use crate::schedule::ClientSchedule;

/// Configuration of the packet replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketConfig {
    /// Simulated-time resolution.
    pub scale: TickScale,
    /// Packet pacing: one packet per this many ticks per active stream.
    pub ticks_per_packet: u64,
    /// Network delay jitter: each packet is delayed by a deterministic
    /// pseudo-random amount in `[0, jitter_ticks]`. Zero = ideal plant.
    pub jitter_ticks: u64,
    /// Client de-jitter buffer: playback deadlines are relaxed by this
    /// startup delay (the set-top box holds back playback to absorb
    /// `jitter_ticks` of network variation).
    pub dejitter_ticks: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for PacketConfig {
    fn default() -> Self {
        Self {
            // 100 ticks/s, one packet per 10 ticks → 10 packets/s/stream:
            // at 1.5 Mb/s a packet is 18.75 kB, a cable-plant-ish burst.
            scale: TickScale::default(),
            ticks_per_packet: 10,
            jitter_ticks: 0,
            dejitter_ticks: 0,
            seed: 0,
        }
    }
}

impl PacketConfig {
    /// An ideal plant with the given jitter and a matching de-jitter
    /// buffer (the correct dimensioning: hold back exactly the worst-case
    /// network delay).
    #[must_use]
    pub fn with_jitter(jitter_ticks: u64, seed: u64) -> Self {
        Self {
            jitter_ticks,
            dejitter_ticks: jitter_ticks,
            seed,
            ..Self::default()
        }
    }
}

/// Deterministic per-packet delay in `[0, jitter]` (splitmix-style hash of
/// seed, segment and packet index).
fn packet_jitter(seed: u64, segment: usize, idx: u64, jitter: u64) -> u64 {
    if jitter == 0 {
        return 0;
    }
    let mut x = seed
        ^ (segment as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ idx.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % (jitter + 1)
}

/// One detected underrun: the player needed data that had not arrived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Underrun {
    /// The starving segment.
    pub segment: usize,
    /// When the player ran dry.
    pub at: Minutes,
    /// How many Mbits short the delivery was at that instant.
    pub shortfall: Mbits,
}

/// The outcome of a packet-level replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2eReport {
    /// Total packets delivered.
    pub packets: usize,
    /// Peak buffer observed across packet events, Mbits.
    pub peak_buffer: Mbits,
    /// Largest number of simultaneously active reception streams.
    pub max_streams: usize,
    /// Underruns detected (empty for a correct schedule).
    pub underruns: Vec<Underrun>,
}

/// Replay `schedule` at packet granularity.
///
/// # Panics
/// Panics if the schedule's times are not finite.
#[must_use]
pub fn replay(schedule: &ClientSchedule, cfg: PacketConfig) -> E2eReport {
    #[derive(Clone, Copy)]
    enum Ev {
        /// A packet of `bits` for `segment` (cumulative delivery bookkeeping
        /// happens in the handler).
        Packet { segment: usize, bits: f64 },
        StreamStart,
        StreamEnd,
    }

    let scale = cfg.scale;
    let mut engine: Engine<Ev> = Engine::new();

    // Enqueue every packet of every download window up front; the engine
    // orders and replays them. Each window [start, end) at rate r becomes
    // ⌈window/packet⌉ packets, the last one short.
    for (segment, d) in schedule.downloads.iter().enumerate() {
        let start = scale.duration_from_seconds(Seconds(d.start.value() * 60.0));
        let end = scale.duration_from_seconds(Seconds(d.end().value() * 60.0));
        engine.schedule_at(Ticks::ZERO + start, Ev::StreamStart);
        engine.schedule_at(Ticks::ZERO + end, Ev::StreamEnd);
        let window_ticks = (end.0).saturating_sub(start.0);
        let mut t = start.0;
        let mut delivered = 0.0f64;
        let mut idx = 0u64;
        while t < start.0 + window_ticks {
            let step = cfg.ticks_per_packet.min(start.0 + window_ticks - t);
            t += step;
            let upto = scale
                .data_over(d.rate, vod_units::TickDuration(t - start.0))
                .value()
                .min(d.size.value());
            let bits = upto - delivered;
            delivered = upto;
            if bits > 0.0 {
                let delay = packet_jitter(cfg.seed, segment, idx, cfg.jitter_ticks);
                engine.schedule_at(Ticks(t + delay), Ev::Packet { segment, bits });
            }
            idx += 1;
        }
    }

    let b = schedule.display_rate.value();
    // The de-jitter buffer shifts every playback deadline later.
    let dejitter_min = cfg.dejitter_ticks as f64 / scale.ticks_per_second as f64 / 60.0;
    let playback_start_min = schedule.playback_start.value() + dejitter_min;
    let total: f64 = schedule.segment_sizes.iter().map(|s| s.value()).sum();
    let playback_end_min = schedule.playback_end().value();

    // Per-segment cumulative deliveries and playback offsets.
    let n = schedule.segment_sizes.len();
    let mut delivered_seg = vec![0.0f64; n];
    let pb_start: Vec<f64> = (0..n)
        .map(|i| schedule.playback_start_of(i).value() + dejitter_min)
        .collect();

    let mut packets = 0usize;
    let mut peak = 0.0f64;
    let mut streams = 0usize;
    let mut max_streams = 0usize;
    let mut delivered_total = 0.0f64;
    let mut underruns = Vec::new();

    engine.run(|_eng, at, ev| match ev {
        Ev::StreamStart => {
            streams += 1;
            max_streams = max_streams.max(streams);
        }
        Ev::StreamEnd => {
            streams = streams.saturating_sub(1);
        }
        Ev::Packet { segment, bits } => {
            let now_min = scale.seconds(at.since(Ticks::ZERO)).value() / 60.0;
            // Underrun check: everything the player needed from this
            // segment *just before* this packet must already be there.
            let needed = ((now_min - pb_start[segment]) * b * 60.0)
                .clamp(0.0, schedule.segment_sizes[segment].value());
            // Packetization slack: a just-in-time fluid stream lags by up
            // to one whole packet at its own rate, plus tick rounding of
            // the window start. Two packets' worth is the agreed margin.
            let rate = schedule.downloads[segment].rate.value();
            let packet_seconds = cfg.ticks_per_packet as f64 / scale.ticks_per_second as f64;
            let slack = 2.0 * rate * packet_seconds + 2.0 * b / scale.ticks_per_second as f64;
            // Note: network jitter is NOT added to the slack — absorbing
            // it is the de-jitter buffer's job; an undersized buffer must
            // surface as an underrun.
            if needed > delivered_seg[segment] + slack + 1e-9 {
                underruns.push(Underrun {
                    segment,
                    at: Minutes(now_min),
                    shortfall: Mbits(needed - delivered_seg[segment]),
                });
            }
            delivered_seg[segment] += bits;
            delivered_total += bits;
            packets += 1;
            let consumed = ((now_min - playback_start_min) * b * 60.0)
                .clamp(0.0, total.min((playback_end_min - playback_start_min) * b * 60.0));
            peak = peak.max(delivered_total - consumed);
        }
    });

    E2eReport {
        packets,
        peak_buffer: Mbits(peak.max(0.0)),
        max_streams,
        underruns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schedule_client, ClientPolicy};
    use sb_core::config::SystemConfig;
    use sb_core::plan::VideoId;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use sb_pyramid::{PermutationPyramid, PyramidBroadcasting, StaggeredBroadcasting};
    use vod_units::Mbps;

    fn replay_scheme(
        plan: &sb_core::plan::ChannelPlan,
        policy: ClientPolicy,
        arrival: f64,
    ) -> (ClientSchedule, E2eReport) {
        let sched = schedule_client(
            plan,
            VideoId(0),
            Minutes(arrival),
            Mbps(1.5),
            policy,
        )
        .unwrap();
        let report = replay(&sched, PacketConfig::default());
        (sched, report)
    }

    /// One packet's worth of data per concurrently active stream, the
    /// agreed tolerance between fluid and packet accounting.
    fn tolerance(report: &E2eReport, sched: &ClientSchedule) -> f64 {
        let packet_seconds = 0.1; // 10 ticks at 100 ticks/s
        let max_rate: f64 = sched.downloads.iter().map(|d| d.rate.value()).fold(0.0, f64::max);
        report.max_streams as f64 * max_rate * packet_seconds + 1.0
    }

    #[test]
    fn sb_replay_matches_fluid_model() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(52)).plan(&cfg).unwrap();
        for arrival in [0.0, 3.7, 7.31, 11.9] {
            let (sched, report) = replay_scheme(&plan, ClientPolicy::LatestFeasible, arrival);
            assert!(report.underruns.is_empty(), "arrival {arrival}: {:?}", report.underruns);
            assert!(report.max_streams <= 2);
            let fluid = sched.peak_buffer().value();
            let diff = (report.peak_buffer.value() - fluid).abs();
            assert!(
                diff <= tolerance(&report, &sched),
                "arrival {arrival}: packet {} vs fluid {fluid}",
                report.peak_buffer
            );
            // 2 hours of video at ≥1 packet per second per stream.
            assert!(report.packets > 10_000, "{} packets", report.packets);
        }
    }

    #[test]
    fn pb_replay_matches_fluid_model() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = PyramidBroadcasting::a().plan(&cfg).unwrap();
        let (sched, report) = replay_scheme(&plan, ClientPolicy::PbEarliest, 4.4);
        assert!(report.underruns.is_empty());
        assert!(report.max_streams <= 2);
        let diff = (report.peak_buffer.value() - sched.peak_buffer().value()).abs();
        assert!(diff <= tolerance(&report, &sched));
    }

    #[test]
    fn ppb_and_staggered_replay() {
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        for plan in [
            PermutationPyramid::b().plan(&cfg).unwrap(),
            StaggeredBroadcasting.plan(&cfg).unwrap(),
        ] {
            let (sched, report) = replay_scheme(&plan, ClientPolicy::LatestFeasible, 2.2);
            assert!(report.underruns.is_empty(), "{}", plan.scheme);
            let diff = (report.peak_buffer.value() - sched.peak_buffer().value()).abs();
            assert!(diff <= tolerance(&report, &sched), "{}", plan.scheme);
        }
    }

    #[test]
    fn corrupted_schedule_is_caught() {
        // Push one reception past its deadline: the replay must flag it.
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12)).plan(&cfg).unwrap();
        let mut sched = schedule_client(
            &plan,
            VideoId(0),
            Minutes(1.0),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        let last = sched.downloads.len() - 1;
        sched.downloads[last].start = Minutes(sched.downloads[last].start.value() + 5.0);
        let report = replay(&sched, PacketConfig::default());
        assert!(
            !report.underruns.is_empty(),
            "a 5-minute-late segment must starve the player"
        );
        assert_eq!(report.underruns[0].segment, last);
    }

    #[test]
    fn jitter_within_dejitter_buffer_is_absorbed() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12)).plan(&cfg).unwrap();
        let sched = schedule_client(
            &plan,
            VideoId(0),
            Minutes(5.2),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        // 2 seconds of network jitter, correctly dimensioned buffer.
        for seed in 0..5 {
            let report = replay(&sched, PacketConfig::with_jitter(200, seed));
            assert!(
                report.underruns.is_empty(),
                "seed {seed}: {:?}",
                &report.underruns[..report.underruns.len().min(3)]
            );
        }
    }

    #[test]
    fn undersized_dejitter_buffer_underruns() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12)).plan(&cfg).unwrap();
        let sched = schedule_client(
            &plan,
            VideoId(0),
            Minutes(5.2),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        // Heavy jitter (30 s) with NO de-jitter buffer: must starve.
        let mut cfg_bad = PacketConfig::with_jitter(3000, 7);
        cfg_bad.dejitter_ticks = 0;
        let report = replay(&sched, cfg_bad);
        assert!(
            !report.underruns.is_empty(),
            "3000 ticks of jitter with no buffer must underrun"
        );
    }

    #[test]
    fn finer_packets_converge_to_fluid() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(12)).plan(&cfg).unwrap();
        let sched = schedule_client(
            &plan,
            VideoId(0),
            Minutes(5.2),
            Mbps(1.5),
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        let fluid = sched.peak_buffer().value();
        let coarse = replay(
            &sched,
            PacketConfig {
                scale: TickScale::new(100),
                ticks_per_packet: 100,
                ..PacketConfig::default()
            },
        );
        let fine = replay(
            &sched,
            PacketConfig {
                scale: TickScale::new(1000),
                ticks_per_packet: 10,
                ..PacketConfig::default()
            },
        );
        let err_coarse = (coarse.peak_buffer.value() - fluid).abs();
        let err_fine = (fine.peak_buffer.value() - fluid).abs();
        assert!(err_fine <= err_coarse + 1e-9, "fine {err_fine} vs coarse {err_coarse}");
        assert!(err_fine < 0.2, "fine-grained replay within 0.2 Mbit of fluid");
    }
}
