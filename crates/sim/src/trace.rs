//! The unified client session: one trace type, one buffer accounting.
//!
//! Every client model in this crate — the tune-at-start policies of
//! [`crate::policy`], the PPB pausing client of [`crate::pausing`], the
//! receive-everything Harmonic client of [`crate::receive_all`] — used to
//! carry its own playback/buffer/jitter arithmetic. A [`SessionTrace`] is
//! the common denominator they all reduce to: a list of [`Reception`]s,
//! each a constant-rate contiguous delivery of a content interval of one
//! segment. From that single representation this module derives, once:
//!
//! * **playback timing** — [`SessionTrace::playback_start_of`],
//!   [`SessionTrace::playback_end`], [`SessionTrace::startup_latency`];
//! * **the piecewise-linear buffer profile** —
//!   [`SessionTrace::buffer_profile`] / [`SessionTrace::peak_buffer`];
//! * **exact per-byte jitter checks** — [`SessionTrace::violations`],
//!   [`SessionTrace::worst_lateness`] (which generalises the closed-form
//!   per-segment test, PPB's first-byte-deadline test and HB's wrap-around
//!   shortfall: lateness of a constant-rate reception is linear in the
//!   content offset, so its maximum sits at an interval endpoint);
//! * **client I/O pressure** — [`SessionTrace::max_concurrent_receptions`],
//!   [`SessionTrace::peak_concurrent_receive_rate`],
//!   [`SessionTrace::single_tuner`].
//!
//! The [`ClientModel`] trait is the uniform entry point producing traces:
//! [`crate::policy::ClientPolicy`] (SB / PB / PPB-tune-at-start /
//! staggered), [`PausingClient`] (PPB max-saving) and [`RecordingClient`]
//! (Harmonic) all implement it, so [`crate::system::SystemSim`],
//! [`crate::faults`] loss injection and [`crate::e2e`] packet replay work
//! identically across every scheme in the paper.

use serde::{Deserialize, Serialize};
use vod_units::{MBytes, Mbits, Mbps, Minutes};

use sb_core::plan::{ChannelPlan, PlanIndex, VideoId};

use crate::cycle_record::{record_cycles, record_cycles_indexed};
use crate::pausing::schedule_pausing_client;
use crate::policy::{schedule_client, schedule_client_indexed, ClientPolicy, PolicyError};
use crate::receive_all::{record_all, record_all_indexed};

/// One contiguous constant-rate delivery of part of a segment.
///
/// `content_offset` is where the delivered bytes sit inside the segment:
/// a whole-segment download has offset zero and `size` equal to the
/// segment size; a PPB chunk or the wrap-around half of an HB recording
/// covers an interior interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reception {
    /// The segment being (partially) received.
    pub segment: usize,
    /// The plan channel delivering it.
    pub channel: usize,
    /// Wall-clock reception start, minutes.
    pub start: Minutes,
    /// Reception duration, minutes (`size / rate`).
    pub duration: Minutes,
    /// Reception rate (the channel rate).
    pub rate: Mbps,
    /// Byte offset of the delivered interval within the segment, Mbits.
    pub content_offset: Mbits,
    /// Delivered payload, Mbits.
    pub size: Mbits,
}

impl Reception {
    /// Wall-clock reception end.
    #[must_use]
    pub fn end(&self) -> Minutes {
        self.start + self.duration
    }
}

/// A reception that starts too late to deliver all its bytes on time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceViolation {
    /// Index of the late reception within the trace.
    pub reception: usize,
    /// The segment it delivers.
    pub segment: usize,
    /// Playback start of the segment.
    pub playback_start: Minutes,
    /// The latest start that would still be jitter-free.
    pub required_start: Minutes,
    /// The actual start.
    pub actual_start: Minutes,
}

/// The complete record of one client session, scheme-agnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionTrace {
    /// Arrival time of the request.
    pub arrival: Minutes,
    /// When playback of segment 0 begins.
    pub playback_start: Minutes,
    /// Display rate `b`.
    pub display_rate: Mbps,
    /// Segment sizes in playback order.
    pub segment_sizes: Vec<Mbits>,
    /// All receptions (any order; whole segments or interior intervals).
    pub receptions: Vec<Reception>,
}

impl SessionTrace {
    /// Playback duration of segment `i`.
    #[must_use]
    pub fn segment_duration(&self, i: usize) -> Minutes {
        (self.segment_sizes[i] / self.display_rate).to_minutes()
    }

    /// Playback start of segment `i`.
    #[must_use]
    pub fn playback_start_of(&self, i: usize) -> Minutes {
        let prefix: f64 = (0..i).map(|j| self.segment_duration(j).value()).sum();
        Minutes(self.playback_start.value() + prefix)
    }

    /// End of playback.
    #[must_use]
    pub fn playback_end(&self) -> Minutes {
        self.playback_start_of(self.segment_sizes.len())
    }

    /// The §5 access latency of this session: arrival → playback start.
    #[must_use]
    pub fn startup_latency(&self) -> Minutes {
        Minutes(self.playback_start.value() - self.arrival.value())
    }

    /// Running prefix of segment playback durations: entry `i` is the
    /// offset of segment `i`'s playback start from `playback_start`.
    /// Built with the same left-fold as [`SessionTrace::playback_start_of`]
    /// so the two agree bit-for-bit; lets the per-reception checks below
    /// run in linear rather than quadratic time.
    fn playback_prefix(&self) -> Vec<f64> {
        let mut prefix = Vec::with_capacity(self.segment_sizes.len() + 1);
        let mut acc = 0.0f64;
        prefix.push(acc);
        for j in 0..self.segment_sizes.len() {
            acc += self.segment_duration(j).value();
            prefix.push(acc);
        }
        prefix
    }

    fn required_start_with(&self, prefix: &[f64], i: usize) -> Minutes {
        let rec = &self.receptions[i];
        let b = self.display_rate.value() * 60.0; // Mbits per minute
        let r = rec.rate.value() * 60.0;
        let first_byte =
            self.playback_start.value() + prefix[rec.segment] + rec.content_offset.value() / b;
        if r >= b {
            Minutes(first_byte)
        } else {
            Minutes(first_byte + rec.size.value() * (1.0 / b - 1.0 / r))
        }
    }

    /// The latest start for reception `i` that still delivers every byte
    /// on time. Byte `x` of the interval (content offset `o + x`) arrives
    /// at `start + x/r` and is consumed at `pb + (o + x)/b`, so the
    /// constraint `start ≤ pb + o/b + x·(1/b − 1/r)` is tight at `x = 0`
    /// when `r ≥ b` and at `x = size` when `r < b`.
    #[must_use]
    pub fn required_start(&self, i: usize) -> Minutes {
        self.required_start_with(&self.playback_prefix(), i)
    }

    /// How late the most-delayed byte of the whole session arrives, in
    /// minutes past its playback deadline (negative = all on time). For
    /// each reception the lateness is linear in the content offset, so the
    /// session maximum is `max_i (start_i − required_start(i))`.
    #[must_use]
    pub fn worst_lateness(&self) -> f64 {
        let prefix = self.playback_prefix();
        self.receptions
            .iter()
            .enumerate()
            .map(|(i, rec)| rec.start.value() - self.required_start_with(&prefix, i).value())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// All receptions that start more than `tol` minutes past their
    /// latest jitter-free start.
    #[must_use]
    pub fn violations(&self, tol: f64) -> Vec<TraceViolation> {
        let prefix = self.playback_prefix();
        let mut out = Vec::new();
        for (i, rec) in self.receptions.iter().enumerate() {
            let required = self.required_start_with(&prefix, i);
            if rec.start.value() > required.value() + tol {
                out.push(TraceViolation {
                    reception: i,
                    segment: rec.segment,
                    playback_start: Minutes(self.playback_start.value() + prefix[rec.segment]),
                    required_start: required,
                    actual_start: rec.start,
                });
            }
        }
        out
    }

    /// `true` when no byte misses its deadline by more than `tol` minutes.
    #[must_use]
    pub fn is_jitter_free(&self, tol: f64) -> bool {
        self.violations(tol).is_empty()
    }

    /// Maximum number of simultaneously active receptions.
    #[must_use]
    pub fn max_concurrent_receptions(&self) -> usize {
        let mut events: Vec<(f64, i32)> = Vec::with_capacity(self.receptions.len() * 2);
        for rec in &self.receptions {
            events.push((rec.start.value(), 1));
            events.push((rec.end().value() - 1e-9, -1));
        }
        events.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mut cur = 0;
        let mut max = 0;
        for (_, delta) in events {
            cur += delta;
            max = max.max(cur);
        }
        max as usize
    }

    /// Peak aggregate reception rate across concurrent receptions — the
    /// "receiving" half of the client's disk-bandwidth requirement.
    #[must_use]
    pub fn peak_concurrent_receive_rate(&self) -> Mbps {
        let mut events: Vec<(f64, f64)> = Vec::with_capacity(self.receptions.len() * 2);
        for rec in &self.receptions {
            events.push((rec.start.value(), rec.rate.value()));
            events.push((rec.end().value() - 1e-9, -rec.rate.value()));
        }
        events.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let mut cur = 0.0f64;
        let mut max = 0.0f64;
        for (_, delta) in events {
            cur += delta;
            max = max.max(cur);
        }
        Mbps(max)
    }

    /// `true` when no two receptions overlap by more than `tol` minutes
    /// (the client has a single tuner).
    #[must_use]
    pub fn single_tuner(&self, tol: f64) -> bool {
        let mut sorted: Vec<(f64, f64)> = self
            .receptions
            .iter()
            .map(|r| (r.start.value(), r.end().value()))
            .collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        sorted.windows(2).all(|w| w[0].1 <= w[1].0 + tol)
    }

    /// The buffer-occupancy curve as `(time, Mbits)` vertices: total data
    /// received minus total data consumed, evaluated at every breakpoint
    /// (reception starts/ends, playback start/end).
    #[must_use]
    pub fn buffer_profile(&self) -> Vec<(Minutes, Mbits)> {
        let play_start = self.playback_start.value();
        let play_end = self.playback_end().value();
        let mut points: Vec<f64> = vec![play_start, play_end];
        for rec in &self.receptions {
            points.push(rec.start.value());
            points.push(rec.end().value());
        }
        points.sort_by(f64::total_cmp);
        points.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        // One sweep over rate-change events instead of re-integrating every
        // reception at every breakpoint: the aggregate receive rate is
        // piecewise constant, so `received` advances by `rate · Δt` between
        // consecutive event/breakpoint times.
        let mut events: Vec<(f64, f64)> = Vec::with_capacity(self.receptions.len() * 2);
        for rec in &self.receptions {
            let r = rec.rate.value() * 60.0; // Mbits per minute
            events.push((rec.start.value(), r));
            events.push((rec.end().value(), -r));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));

        let total: f64 = self.segment_sizes.iter().map(|s| s.value()).sum();
        let mut out = Vec::with_capacity(points.len());
        let mut received = 0.0f64;
        let mut rate = 0.0f64;
        let mut cursor = points.first().copied().unwrap_or(0.0);
        let mut next_event = 0usize;
        for &t in &points {
            while next_event < events.len() && events[next_event].0 <= t {
                let (et, dr) = events[next_event];
                let et = et.max(cursor);
                if et > cursor {
                    received += rate * (et - cursor);
                    cursor = et;
                }
                rate += dr;
                next_event += 1;
            }
            if t > cursor {
                received += rate * (t - cursor);
                cursor = t;
            }
            let played = (t - play_start).clamp(0.0, play_end - play_start);
            let consumed = (self.display_rate.value() * played * 60.0).min(total);
            out.push((Minutes(t), Mbits((received - consumed).max(0.0))));
        }
        out
    }

    /// Peak of the buffer-occupancy curve.
    #[must_use]
    pub fn peak_buffer(&self) -> Mbits {
        self.buffer_profile()
            .into_iter()
            .map(|(_, b)| b)
            .fold(Mbits::ZERO, Mbits::max)
    }

    /// Peak buffer in the paper's Figure-8 unit.
    #[must_use]
    pub fn peak_buffer_mbytes(&self) -> MBytes {
        self.peak_buffer().to_mbytes()
    }

    /// Total payload across all receptions.
    #[must_use]
    pub fn total_received(&self) -> Mbits {
        Mbits(self.receptions.iter().map(|r| r.size.value()).sum())
    }

    /// Structural sanity: receptions reference real channels at the
    /// channel's rate, start no earlier than arrival, stay inside their
    /// segment, and together deliver each segment exactly once.
    pub fn validate(&self, plan: &ChannelPlan) -> Result<(), String> {
        let mut covered = vec![0.0f64; self.segment_sizes.len()];
        for (i, rec) in self.receptions.iter().enumerate() {
            let size = self
                .segment_sizes
                .get(rec.segment)
                .ok_or_else(|| format!("reception {i} delivers unknown segment {}", rec.segment))?;
            if rec.start.value() + 1e-9 < self.arrival.value() {
                return Err(format!(
                    "reception {i} at {} precedes arrival {}",
                    rec.start, self.arrival
                ));
            }
            let ch = plan
                .channels
                .get(rec.channel)
                .ok_or_else(|| format!("reception {i} uses unknown channel {}", rec.channel))?;
            if !ch.rate.approx_eq(rec.rate, 1e-9) {
                return Err(format!(
                    "reception {i} rate mismatch with channel {}",
                    rec.channel
                ));
            }
            let end = rec.content_offset.value() + rec.size.value();
            if end > size.value() * (1.0 + 1e-9) + 1e-9 {
                return Err(format!(
                    "reception {i} covers [{}, {end}) past segment size {size}",
                    rec.content_offset
                ));
            }
            covered[rec.segment] += rec.size.value();
        }
        for (segment, (&got, size)) in covered.iter().zip(&self.segment_sizes).enumerate() {
            if (got - size.value()).abs() > 1e-6 * size.value().max(1.0) {
                return Err(format!("segment {segment}: received {got} of {size} Mbit"));
            }
        }
        Ok(())
    }
}

/// A client model: anything that can turn an arrival against a broadcast
/// plan into a [`SessionTrace`].
///
/// This is the single entry point [`crate::system::SystemSim`] (and the
/// fault/replay pipelines via the traces it yields) uses for every scheme:
/// pass a [`ClientPolicy`] for the tune-at-start schemes, a
/// [`PausingClient`] for PPB's max-saving client, a [`RecordingClient`]
/// for Harmonic Broadcasting.
///
/// `Sync` is a supertrait because the sharded executor shares one model
/// across its shard workers; models are pure functions of their inputs
/// (all implementors here are plain data), so this costs nothing.
pub trait ClientModel: Sync {
    /// Compute the session for one client arrival.
    fn session(
        &self,
        plan: &ChannelPlan,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError>;

    /// [`ClientModel::session`] against a prebuilt [`PlanIndex`] — same
    /// trace, bit for bit. The engine builds the index once per run and
    /// calls this for every arrival; models with an indexed scheduler
    /// override it, everything else falls back to the scanning path.
    fn session_indexed(
        &self,
        index: &PlanIndex<'_>,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        self.session(index.plan(), video, arrival, display_rate)
    }
}

impl<M: ClientModel + ?Sized> ClientModel for &M {
    fn session(
        &self,
        plan: &ChannelPlan,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        (**self).session(plan, video, arrival, display_rate)
    }

    fn session_indexed(
        &self,
        index: &PlanIndex<'_>,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        (**self).session_indexed(index, video, arrival, display_rate)
    }
}

impl ClientModel for Box<dyn ClientModel + '_> {
    fn session(
        &self,
        plan: &ChannelPlan,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        (**self).session(plan, video, arrival, display_rate)
    }

    fn session_indexed(
        &self,
        index: &PlanIndex<'_>,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        (**self).session_indexed(index, video, arrival, display_rate)
    }
}

impl ClientModel for ClientPolicy {
    fn session(
        &self,
        plan: &ChannelPlan,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        schedule_client(plan, video, arrival, display_rate, *self).map(|s| s.trace())
    }

    fn session_indexed(
        &self,
        index: &PlanIndex<'_>,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        schedule_client_indexed(index, video, arrival, display_rate, *self).map(|s| s.trace())
    }
}

/// The PPB max-saving client as a [`ClientModel`]
/// (see [`crate::pausing`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PausingClient;

impl ClientModel for PausingClient {
    fn session(
        &self,
        plan: &ChannelPlan,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        schedule_pausing_client(plan, video, arrival, display_rate).map(|s| s.trace())
    }
}

/// The Harmonic receive-everything client as a [`ClientModel`]
/// (see [`crate::receive_all`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecordingClient {
    /// Delay between tune-in and playback start (zero reproduces the
    /// original — buggy — HB rule; one slot time is the fix).
    pub playback_delay: Minutes,
}

impl ClientModel for RecordingClient {
    fn session(
        &self,
        plan: &ChannelPlan,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        record_all(plan, video, arrival, display_rate, self.playback_delay).map(|s| s.trace())
    }

    fn session_indexed(
        &self,
        index: &PlanIndex<'_>,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        record_all_indexed(index, video, arrival, display_rate, self.playback_delay)
            .map(|s| s.trace())
    }
}

/// The CTIFB cycle-recording client as a [`ClientModel`]
/// (see [`crate::cycle_record`]): tune every channel at the next slot
/// boundary, record each for one full period, play from the boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleRecordingClient;

impl ClientModel for CycleRecordingClient {
    fn session(
        &self,
        plan: &ChannelPlan,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        record_cycles(plan, video, arrival, display_rate)
    }

    fn session_indexed(
        &self,
        index: &PlanIndex<'_>,
        video: VideoId,
        arrival: Minutes,
        display_rate: Mbps,
    ) -> Result<SessionTrace, PolicyError> {
        record_cycles_indexed(index, video, arrival, display_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use sb_pyramid::{HarmonicBroadcasting, PermutationPyramid};

    #[test]
    fn sb_trace_matches_legacy_schedule() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(52))
            .plan(&cfg)
            .unwrap();
        let s = schedule_client(
            &plan,
            VideoId(0),
            Minutes(7.3),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        let t = ClientPolicy::LatestFeasible
            .session(&plan, VideoId(0), Minutes(7.3), cfg.display_rate)
            .unwrap();
        t.validate(&plan).unwrap();
        assert_eq!(t.peak_buffer(), s.peak_buffer());
        assert_eq!(t.startup_latency(), s.startup_latency());
        assert_eq!(t.max_concurrent_receptions(), s.max_concurrent_downloads());
        assert!(t.is_jitter_free(1e-9));
    }

    #[test]
    fn pausing_trace_covers_video_and_validates() {
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        let plan = PermutationPyramid::b().plan(&cfg).unwrap();
        let t = PausingClient
            .session(&plan, VideoId(0), Minutes(3.7), cfg.display_rate)
            .unwrap();
        t.validate(&plan).unwrap();
        assert!(t.is_jitter_free(1e-6));
        assert!(t.single_tuner(1e-6));
        let total: f64 = t.segment_sizes.iter().map(|s| s.value()).sum();
        assert!((t.total_received().value() - total).abs() < 1e-6 * total);
    }

    #[test]
    fn recording_trace_reproduces_the_hb_bug_and_fix() {
        let cfg = SystemConfig::paper_defaults(Mbps(60.0));
        let scheme = HarmonicBroadcasting::original();
        let plan = scheme.plan(&cfg).unwrap();
        let slot = scheme.slot(&cfg).unwrap();
        let mut starved = 0usize;
        for i in 0..40 {
            let arrival = Minutes(slot.value() * i as f64 / 40.0 * 7.0);
            let buggy = RecordingClient::default()
                .session(&plan, VideoId(0), arrival, cfg.display_rate)
                .unwrap();
            buggy.validate(&plan).unwrap();
            if !buggy.is_jitter_free(1e-6) {
                starved += 1;
            }
            let fixed = RecordingClient {
                playback_delay: slot,
            }
            .session(&plan, VideoId(0), arrival, cfg.display_rate)
            .unwrap();
            assert!(fixed.is_jitter_free(1e-6), "arrival {arrival}");
        }
        assert!(starved > 0, "original HB must starve at some phases");
    }
}
