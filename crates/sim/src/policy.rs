//! Per-scheme client policies: how a set-top box decides *which broadcast
//! to catch* for each fragment.
//!
//! All policies share the tune-at-start discipline the paper insists on
//! ("we only tune to the beginning of any broadcast as in the original
//! PB") and differ only in which beginning they pick:
//!
//! * [`ClientPolicy::LatestFeasible`] — for each segment, catch the
//!   **latest** broadcast that still delivers every byte by its playback
//!   deadline. This is the behaviour of SB's odd/even loaders (see
//!   `sb_core::client`), of a PPB client choosing among its phase-shifted
//!   replicas, and of a staggered client (which degenerates to "play the
//!   next start live"). It is the buffer-minimizing choice.
//! * [`ClientPolicy::PbEarliest`] — PB's rule from §2: "it downloads the
//!   next fragment at the earliest possible time after beginning to play
//!   back the current fragment". Buffer-hungry but simple; reproducing
//!   PB's storage numbers requires modeling it faithfully.
//!
//! Playback start is policy-independent: the earliest broadcast of the
//! video's first fragment at or after the client's arrival, over all
//! channels that carry it — whose worst case over arrivals is exactly the
//! scheme's access latency.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::plan::{BroadcastItem, ChannelPlan, PlanIndex, VideoId};

use crate::schedule::{ClientSchedule, Download};

/// Which broadcast a client catches for each fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClientPolicy {
    /// Latest deadline-meeting broadcast (SB / PPB / staggered).
    LatestFeasible,
    /// Earliest broadcast after the previous fragment's playback begins
    /// (PB's prefetch rule).
    PbEarliest,
}

/// Errors a client session can hit against a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyError {
    /// The requested video is not in the plan.
    UnknownVideo(VideoId),
    /// A segment is not carried by any channel.
    MissingSegment(usize),
    /// No catchable broadcast exists for a segment: every deadline-meeting
    /// broadcast begins before the client's arrival. (Cannot happen for a
    /// correct scheme; surfaces plan bugs.)
    NoFeasibleBroadcast {
        /// The segment without a catchable broadcast.
        segment: usize,
    },
    /// A shard's results could not be merged: the per-shard streams were
    /// inconsistent (e.g. a trace stream shorter than its scalar stream,
    /// or metric families of conflicting shapes). Carries the offending
    /// shard and the experiment/pool label, mirroring the worker-panic
    /// attribution of `sim::pool`.
    ShardMerge {
        /// Index of the shard whose results broke the merge.
        shard: usize,
        /// Experiment or pool label identifying the run.
        label: String,
        /// What was inconsistent.
        what: String,
    },
}

impl core::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PolicyError::UnknownVideo(v) => write!(f, "video {v} is not in the plan"),
            PolicyError::MissingSegment(s) => write!(f, "segment {s} is never broadcast"),
            PolicyError::NoFeasibleBroadcast { segment } => {
                write!(f, "no catchable broadcast for segment {segment}")
            }
            PolicyError::ShardMerge { shard, label, what } => {
                write!(f, "shard {shard} ({label}): merge failed: {what}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

/// Compute a complete client session: arrival at `arrival`, watching
/// `video` from `plan`, consuming at `display_rate`, catching broadcasts
/// according to `policy`.
///
/// Builds a throwaway [`PlanIndex`] — callers scheduling many sessions
/// against one plan (the simulator does) should build the index once and
/// use [`schedule_client_indexed`].
pub fn schedule_client(
    plan: &ChannelPlan,
    video: VideoId,
    arrival: Minutes,
    display_rate: Mbps,
    policy: ClientPolicy,
) -> Result<ClientSchedule, PolicyError> {
    schedule_client_indexed(&plan.index(), video, arrival, display_rate, policy)
}

/// [`schedule_client`] against a prebuilt carrier index — bit-identical
/// output, lookup cost proportional to the answer instead of the plan.
pub fn schedule_client_indexed(
    index: &PlanIndex<'_>,
    video: VideoId,
    arrival: Minutes,
    display_rate: Mbps,
    policy: ClientPolicy,
) -> Result<ClientSchedule, PolicyError> {
    let plan = index.plan();
    let sizes = plan
        .segment_sizes
        .get(video.0)
        .ok_or(PolicyError::UnknownVideo(video))?
        .clone();

    // Playback start: earliest catchable broadcast of segment 0.
    let first = BroadcastItem { video, segment: 0 };
    let (first_ch, first_start) =
        earliest_start(index, first, arrival).ok_or(PolicyError::MissingSegment(0))?;

    let mut sched = ClientSchedule {
        arrival,
        playback_start: first_start,
        display_rate,
        segment_sizes: sizes.clone(),
        downloads: Vec::with_capacity(sizes.len()),
    };
    sched.downloads.push(Download {
        item: first,
        channel: first_ch,
        start: first_start,
        rate: plan.channels[first_ch].rate,
        size: sizes[0],
    });

    // Running playback-time prefixes — the same left-to-right summation
    // `ClientSchedule::playback_start_of` performs, kept incrementally so
    // the per-segment deadline is O(1) instead of O(segment).
    let durs: Vec<f64> = sizes
        .iter()
        .map(|&s| (s / display_rate).to_minutes().value())
        .collect();
    let b = display_rate.value();
    let mut prefix = 0.0f64; // Σ durs[j] for j < segment (updated below)
    #[allow(clippy::needless_range_loop)] // `segment` is an identifier, not just an index
    for segment in 1..sizes.len() {
        let prefix_prev = prefix; // Σ_{j < segment−1}
        prefix += durs[segment - 1]; // Σ_{j < segment}
        let pb = sched.playback_start.value() + prefix;
        let item = BroadcastItem { video, segment };
        let pick = match policy {
            ClientPolicy::LatestFeasible => {
                // Latest broadcast start that both (a) is not before
                // arrival and (b) meets the segment's delivery deadline,
                // accounting for the channel's rate.
                let mut best: Option<(usize, Minutes)> = None;
                for occ in index.carriers(item) {
                    let ch = index.channel(occ);
                    // `ClientSchedule::required_start(segment, ch.rate)`.
                    let r = ch.rate.value();
                    let deadline = if r >= b {
                        Minutes(pb)
                    } else {
                        Minutes(pb + durs[segment] * (1.0 - b / r))
                    };
                    if let Some(s) = index.prev_start(occ, deadline) {
                        if s.value() >= arrival.value() - 1e-9 && best.is_none_or(|(_, b)| s > b) {
                            best = Some((ch.id, s));
                        }
                    }
                }
                best
            }
            ClientPolicy::PbEarliest => {
                // Earliest broadcast at or after the previous segment's
                // playback begins.
                let after = Minutes(sched.playback_start.value() + prefix_prev);
                earliest_start(index, item, after)
            }
        };
        let (ch_id, start) = pick.ok_or(PolicyError::NoFeasibleBroadcast { segment })?;
        sched.downloads.push(Download {
            item,
            channel: ch_id,
            start,
            rate: plan.channels[ch_id].rate,
            size: sizes[segment],
        });
    }
    Ok(sched)
}

/// The earliest broadcast start of `item` at or after `t`, over all
/// carrying channels. Returns `(channel id, start)`.
fn earliest_start(
    index: &PlanIndex<'_>,
    item: BroadcastItem,
    t: Minutes,
) -> Option<(usize, Minutes)> {
    let mut best: Option<(usize, Minutes)> = None;
    for occ in index.carriers(item) {
        let s = index.next_start(occ, t);
        if best.is_none_or(|(_, b)| s < b) {
            best = Some((index.channel(occ).id, s));
        }
    }
    best
}

/// The worst observed startup latency over a grid of `n` arrival times in
/// `[0, horizon)` — an empirical stand-in for the scheme's analytic access
/// latency.
pub fn empirical_worst_latency(
    plan: &ChannelPlan,
    video: VideoId,
    display_rate: Mbps,
    policy: ClientPolicy,
    horizon: Minutes,
    n: usize,
) -> Result<Minutes, PolicyError> {
    let index = plan.index();
    let mut worst = Minutes(0.0);
    for i in 0..n {
        let arrival = Minutes(horizon.value() * (i as f64 + 0.37) / n as f64);
        let s = schedule_client_indexed(&index, video, arrival, display_rate, policy)?;
        worst = worst.max(s.startup_latency());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use sb_pyramid::{PermutationPyramid, PyramidBroadcasting, StaggeredBroadcasting};

    use vod_units::Mbits;

    fn cfg(b: f64) -> SystemConfig {
        SystemConfig::paper_defaults(Mbps(b))
    }

    #[test]
    fn sb_client_matches_slot_model() {
        // The continuous LatestFeasible policy must reproduce the exact
        // integer slot model of sb_core::client, phase for phase.
        let c = cfg(150.0); // K = 10
        let scheme = Skyscraper::with_width(Width::Capped(12));
        let plan = scheme.plan(&c).unwrap();
        let frag = scheme.fragmentation(&c).unwrap();
        let d1 = frag.slot.value();
        for phase_slots in [0u64, 1, 3, 7, 11, 23, 59] {
            let arrival = Minutes(d1 * phase_slots as f64);
            let cont = schedule_client(
                &plan,
                VideoId(2),
                arrival,
                c.display_rate,
                ClientPolicy::LatestFeasible,
            )
            .unwrap();
            cont.validate(&plan).unwrap();
            assert!(cont.jitter_violations(1e-6).is_empty());

            let slot = sb_core::client::ClientTimeline::compute(&frag.units, phase_slots);
            // Same playback start (arrival is exactly on a slot boundary).
            assert!(
                (cont.playback_start.value() - d1 * slot.t0 as f64).abs() < 1e-6,
                "phase {phase_slots}"
            );
            // Same peak buffer, converted through 60·b·D₁ per unit.
            let unit_mbits = c.display_rate.value() * d1 * 60.0;
            let expect = slot.peak_buffer_units() as f64 * unit_mbits;
            let got = cont.peak_buffer().value();
            assert!(
                (got - expect).abs() < 1e-3 * unit_mbits.max(1.0),
                "phase {phase_slots}: slot model {expect} vs continuous {got}"
            );
            assert!(cont.max_concurrent_downloads() <= 2);
        }
    }

    #[test]
    fn sb_latency_bound_holds_empirically() {
        let c = cfg(300.0);
        let scheme = Skyscraper::with_width(Width::Capped(52));
        let plan = scheme.plan(&c).unwrap();
        let analytic = scheme.metrics(&c).unwrap().access_latency;
        let worst = empirical_worst_latency(
            &plan,
            VideoId(0),
            c.display_rate,
            ClientPolicy::LatestFeasible,
            Minutes(10.0),
            400,
        )
        .unwrap();
        assert!(
            worst.value() <= analytic.value() + 1e-9,
            "worst {worst} vs analytic {analytic}"
        );
        // And the bound is nearly attained on a fine grid.
        assert!(worst.value() > analytic.value() * 0.9);
    }

    #[test]
    fn pb_client_buffer_matches_table1() {
        // Drive a PB client at the worst-ish phase and compare the peak
        // buffer with the analytic 60·b·(D_{K−1}(1−1/M)+D_K).
        let c = cfg(300.0);
        let scheme = PyramidBroadcasting::a();
        let plan = scheme.plan(&c).unwrap();
        let analytic = scheme.metrics(&c).unwrap().buffer_requirement;
        let mut worst = Mbits(0.0);
        for i in 0..300 {
            let arrival = Minutes(12.0 * i as f64 / 300.0);
            let s = schedule_client(
                &plan,
                VideoId(0),
                arrival,
                c.display_rate,
                ClientPolicy::PbEarliest,
            )
            .unwrap();
            assert!(s.jitter_violations(1e-6).is_empty(), "arrival {arrival}");
            assert!(s.max_concurrent_downloads() <= 2, "PB uses ≤ 2 channels");
            worst = worst.max(s.peak_buffer());
        }
        let ratio = worst.value() / analytic.value();
        assert!(
            (0.85..=1.01).contains(&ratio),
            "empirical {worst} vs analytic {analytic} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn ppb_client_single_stream_and_latency() {
        let c = cfg(320.0);
        let scheme = PermutationPyramid::b();
        let plan = scheme.plan(&c).unwrap();
        let analytic = scheme.metrics(&c).unwrap();
        let mut worst_latency = Minutes(0.0);
        let mut worst_buffer = Mbits(0.0);
        for i in 0..200 {
            let arrival = Minutes(30.0 * i as f64 / 200.0);
            let s = schedule_client(
                &plan,
                VideoId(1),
                arrival,
                c.display_rate,
                ClientPolicy::LatestFeasible,
            )
            .unwrap();
            assert!(s.jitter_violations(1e-6).is_empty(), "arrival {arrival}");
            // §2: PPB's receptions are (near) sequential — one subchannel
            // stream at a time (abutting windows may share an instant).
            assert!(s.max_concurrent_downloads() <= 2);
            worst_latency = worst_latency.max(s.startup_latency());
            worst_buffer = worst_buffer.max(s.peak_buffer());
        }
        assert!(
            worst_latency.value() <= analytic.access_latency.value() + 1e-6,
            "latency {worst_latency} vs analytic {}",
            analytic.access_latency
        );
        assert!(worst_latency.value() > analytic.access_latency.value() * 0.8);
        // Empirical buffer within the analytic requirement.
        assert!(
            worst_buffer.value() <= analytic.buffer_requirement.value() * 1.02,
            "buffer {worst_buffer} vs analytic {}",
            analytic.buffer_requirement
        );
    }

    #[test]
    fn staggered_client_plays_live() {
        let c = cfg(300.0);
        let plan = StaggeredBroadcasting.plan(&c).unwrap();
        let s = schedule_client(
            &plan,
            VideoId(4),
            Minutes(2.0),
            c.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        assert!(s.jitter_violations(1e-6).is_empty());
        assert_eq!(s.max_concurrent_downloads(), 1);
        assert!(s.peak_buffer().value() < 1e-6);
        // Worst wait 6 minutes (120/20).
        assert!(s.startup_latency().value() <= 6.0 + 1e-9);
    }

    #[test]
    fn unknown_video_is_an_error() {
        let c = cfg(300.0);
        let plan = StaggeredBroadcasting.plan(&c).unwrap();
        let err = schedule_client(
            &plan,
            VideoId(99),
            Minutes(0.0),
            c.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap_err();
        assert_eq!(err, PolicyError::UnknownVideo(VideoId(99)));
    }
}
