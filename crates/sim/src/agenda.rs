//! Pluggable event-store backends for the engine: the [`Agenda`] trait,
//! the classic binary-heap backend, and a hierarchical timing wheel.
//!
//! The engine's hot loop is `push`/`pop` on a priority queue keyed by
//! `(tick, seq)`. The paper's workloads are *near-periodic* — millions of
//! `Finish` events all landing one video-length after their `Arrive` —
//! which is exactly the distribution hierarchical timing wheels were
//! designed for (Varghese & Lauck's hashed/hierarchical wheels): O(1)
//! insert into a bucket keyed by the tick delta, O(1) next-bucket lookup
//! through per-level occupancy bitmasks, and a bounded number of cascades
//! per event instead of O(log n) sift per operation.
//!
//! ## Division of labour
//!
//! A backend is a **pure priority queue**: it stores [`AgendaEntry`]
//! values and yields them in exactly `(at, seq)` order. Everything else —
//! slot liveness, generation checks, lazy cancellation, stale/live
//! accounting and compaction policy — stays in [`crate::engine::Engine`].
//! That split is what makes backend choice invisible: both backends
//! surface the *same* entries (stale ones included) in the *same* order,
//! so every downstream float op, metric event and compaction trigger is
//! bitwise identical whichever backend runs. The
//! `heap_wheel_equivalence` proptests pin this.
//!
//! ## The wheel
//!
//! [`WheelAgenda`] keeps [`LEVELS`] levels of 64 buckets. A level-`k`
//! bucket spans `64^k` ticks; an entry with delta `d = at - cursor` lands
//! on level `⌊log64 d⌋` in the bucket `(at >> 6k) & 63`. Advancing time
//! means jumping the cursor straight to the next occupied bucket (found
//! by `trailing_zeros` on the level bitmask), **cascading** higher-level
//! buckets down as their range start is reached, and draining level-0
//! buckets — whose entries all share one tick — into a FIFO sorted by
//! `seq`. Entries further out than `64^LEVELS` ticks wait in an
//! **overflow** heap and are promoted into the wheel when the cursor
//! approaches; entries scheduled *behind* the cursor (possible because
//! the cursor may run ahead of the engine clock after a peek) go to a
//! small **fallback** heap that is consulted at every pop. See DESIGN.md
//! §12 for the full determinism argument.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, VecDeque};

use vod_units::Ticks;

use crate::engine::EventId;

/// Which [`Agenda`] backend an [`crate::engine::Engine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AgendaKind {
    /// The slab-backed binary heap: O(log n) per operation, no
    /// quantization assumptions. The safe default.
    #[default]
    Heap,
    /// The hierarchical timing wheel: O(1) insert and next-bucket
    /// lookup, amortized O(levels) per event. Fire order is bitwise
    /// identical to [`AgendaKind::Heap`].
    Wheel,
}

impl AgendaKind {
    /// Parse a CLI-facing backend name (`heap` / `wheel`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(Self::Heap),
            "wheel" => Some(Self::Wheel),
            _ => None,
        }
    }

    /// The CLI-facing backend name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Heap => "heap",
            Self::Wheel => "wheel",
        }
    }
}

/// One scheduled event as the backend stores it: the firing tick, the
/// global FIFO tie-break sequence, the engine's liveness handle, and the
/// payload. Backends order strictly by `(at, seq)` and never interpret
/// `id` — liveness is the engine's business.
#[derive(Debug)]
pub struct AgendaEntry<E> {
    /// Absolute firing tick.
    pub at: Ticks,
    /// Globally monotonic schedule sequence (FIFO tie-break).
    pub seq: u64,
    /// The engine's slab handle for liveness checks.
    pub id: EventId,
    /// The event payload.
    pub payload: E,
}

/// A pluggable event store: a priority queue of [`AgendaEntry`] in
/// strict `(at, seq)` order.
///
/// Implementations must yield *every* pushed entry (the engine filters
/// cancelled ones itself) and must be deterministic: the pop sequence is
/// a pure function of the push/pop/retain history. `peek` takes `&mut
/// self` because the wheel advances its cursor to locate the next
/// occupied bucket.
pub trait Agenda<E> {
    /// Insert an entry. `entry.seq` is strictly greater than every
    /// previously pushed seq.
    fn push(&mut self, entry: AgendaEntry<E>);

    /// Remove and return the `(at, seq)`-minimal entry.
    fn pop(&mut self) -> Option<AgendaEntry<E>>;

    /// The firing tick and id of the `(at, seq)`-minimal entry.
    fn peek(&mut self) -> Option<(Ticks, EventId)>;

    /// Number of stored entries (live and stale alike).
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry for which `keep` returns `false`, preserving the
    /// relative order of survivors. The engine's compaction path.
    fn retain(&mut self, keep: &mut dyn FnMut(&AgendaEntry<E>) -> bool);

    /// Backend-specific counters; zero for backends without them.
    fn wheel_stats(&self) -> WheelStats {
        WheelStats::default()
    }
}

/// Counters specific to the timing-wheel backend.
///
/// Carried inside [`crate::engine::EngineStats`] but deliberately *not*
/// serialized with it: artifacts must stay byte-identical across
/// backends, and these counters are exactly the bytes that would differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Higher-level buckets redistributed to lower levels as the cursor
    /// reached their range start.
    pub cascades: u64,
    /// Entries promoted from the overflow heap into the wheel proper.
    pub overflow_promotions: u64,
    /// High-water mark of any single bucket's occupancy.
    pub peak_bucket: u64,
}

// ---------------------------------------------------------------------------
// MinQueue: the workspace's one min-heap idiom.
// ---------------------------------------------------------------------------

/// A min-heap: [`BinaryHeap`] with the `Reverse` inversion applied once,
/// here, instead of hand-rolled at every use site (the engine's agenda
/// backends, the sharded peak-active sweep, the batching server's busy
/// queue).
#[derive(Debug, Clone)]
pub struct MinQueue<T: Ord>(BinaryHeap<Reverse<T>>);

impl<T: Ord> Default for MinQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> MinQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self(BinaryHeap::new())
    }

    /// Insert a value.
    pub fn push(&mut self, value: T) {
        self.0.push(Reverse(value));
    }

    /// Remove and return the minimum.
    pub fn pop(&mut self) -> Option<T> {
        self.0.pop().map(|Reverse(v)| v)
    }

    /// The minimum, without removing it.
    #[must_use]
    pub fn peek(&self) -> Option<&T> {
        self.0.peek().map(|Reverse(v)| v)
    }

    /// Number of stored values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Keep only the values for which `keep` returns `true`.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) {
        self.0.retain(|Reverse(v)| keep(v));
    }
}

/// An [`AgendaEntry`] ordered by `(at, seq)`, for heap storage. `seq` is
/// globally unique, so the order is total and payloads never compare.
struct OrderedEntry<E>(AgendaEntry<E>);

impl<E> PartialEq for OrderedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.seq) == (other.0.at, other.0.seq)
    }
}
impl<E> Eq for OrderedEntry<E> {}
impl<E> PartialOrd for OrderedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for OrderedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.0.at, self.0.seq).cmp(&(other.0.at, other.0.seq))
    }
}

// ---------------------------------------------------------------------------
// HeapAgenda
// ---------------------------------------------------------------------------

/// The classic backend: a [`MinQueue`] over `(at, seq)`.
pub struct HeapAgenda<E> {
    heap: MinQueue<OrderedEntry<E>>,
}

impl<E> Default for HeapAgenda<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapAgenda<E> {
    /// An empty heap agenda.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: MinQueue::new(),
        }
    }
}

impl<E> Agenda<E> for HeapAgenda<E> {
    fn push(&mut self, entry: AgendaEntry<E>) {
        self.heap.push(OrderedEntry(entry));
    }

    fn pop(&mut self) -> Option<AgendaEntry<E>> {
        self.heap.pop().map(|e| e.0)
    }

    fn peek(&mut self) -> Option<(Ticks, EventId)> {
        self.heap.peek().map(|e| (e.0.at, e.0.id))
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn retain(&mut self, keep: &mut dyn FnMut(&AgendaEntry<E>) -> bool) {
        self.heap.retain(|e| keep(&e.0));
    }
}

// ---------------------------------------------------------------------------
// WheelAgenda
// ---------------------------------------------------------------------------

/// Bits per wheel level: 64 buckets each.
const BITS: u32 = 6;
/// Buckets per level.
const SLOTS: u64 = 1 << BITS;
/// Number of hierarchical levels. Level `k` buckets span `64^k` ticks,
/// so the wheel as a whole reaches `64^LEVELS` ticks (≈ 6.9 × 10¹⁰; at
/// the default 10 ms tick, over two decades of simulated time) before
/// the overflow heap takes over.
pub const LEVELS: usize = 6;
/// Deltas at or beyond this many ticks wait in the overflow heap.
const SPAN: u64 = 1 << (BITS * LEVELS as u32);

/// The hierarchical timing wheel backend. See the module docs and
/// DESIGN.md §12.
pub struct WheelAgenda<E> {
    /// The wheel's time floor. Never decreases; may run *ahead* of the
    /// engine clock (a peek advances it to the next occupied bucket).
    cursor: u64,
    /// Total stored entries across all structures.
    len: usize,
    /// `levels[k][idx]`: the bucket vectors. Entries within a bucket are
    /// in insertion order, *not* seq order (cascades interleave).
    levels: Vec<Vec<Vec<AgendaEntry<E>>>>,
    /// Per-level occupancy bitmasks: bit `i` set iff `levels[k][i]` is
    /// non-empty. Next-bucket search is `trailing_zeros`, not a scan.
    masks: [u64; LEVELS],
    /// The drained level-0 bucket currently being consumed: entries of a
    /// single tick, sorted by `seq`.
    current: VecDeque<AgendaEntry<E>>,
    /// Entries scheduled behind the cursor (engine time ≤ at < cursor).
    /// Rare — only reachable after a peek ran the cursor ahead — and
    /// always strictly earlier than `current`, so pops consult it first.
    fallback: MinQueue<OrderedEntry<E>>,
    /// Entries beyond the wheel's span, promoted as the cursor nears.
    overflow: MinQueue<OrderedEntry<E>>,
    stats: WheelStats,
}

impl<E> Default for WheelAgenda<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> WheelAgenda<E> {
    /// An empty wheel with the cursor at tick zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            cursor: 0,
            len: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            masks: [0; LEVELS],
            current: VecDeque::new(),
            fallback: MinQueue::new(),
            overflow: MinQueue::new(),
            stats: WheelStats::default(),
        }
    }

    /// Level for a delta: `⌊log64 delta⌋`. Callers guarantee
    /// `delta < SPAN`.
    fn level_of(delta: u64) -> usize {
        if delta == 0 {
            0
        } else {
            ((63 - delta.leading_zeros()) / BITS) as usize
        }
    }

    /// File `entry` into the wheel (or overflow) relative to the current
    /// cursor. Requires `entry.at >= cursor`.
    fn place(&mut self, entry: AgendaEntry<E>) {
        let at = entry.at.0;
        debug_assert!(at >= self.cursor, "place() behind the cursor");
        let delta = at - self.cursor;
        if delta >= SPAN {
            self.overflow.push(OrderedEntry(entry));
            return;
        }
        let level = Self::level_of(delta);
        let idx = ((at >> (BITS * level as u32)) & (SLOTS - 1)) as usize;
        let bucket = &mut self.levels[level][idx];
        bucket.push(entry);
        self.masks[level] |= 1 << idx;
        self.stats.peak_bucket = self.stats.peak_bucket.max(bucket.len() as u64);
    }

    /// The earliest pending wheel position as `(tick, level, idx)`:
    /// level 0 positions are exact due ticks, higher levels are bucket
    /// range starts (cascade points). Ties prefer the *higher* level so
    /// a bucket cascades before the co-located level-0 bucket drains.
    fn next_wheel_position(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for level in (0..LEVELS).rev() {
            let mask = self.masks[level];
            if mask == 0 {
                continue;
            }
            let shift = BITS * level as u32;
            let cur = self.cursor >> shift;
            let rot = cur & !(SLOTS - 1);
            let pos = (cur & (SLOTS - 1)) as u32;
            // Partition the occupied buckets into rotations. The
            // cursor's own bucket is the subtle one — it can hold
            // either rotation, and cursor alignment decides which:
            //  * cursor exactly at the bucket's range start (always
            //    true at level 0; at level > 0 only via an
            //    overflow-tie promotion landing on a pending cascade
            //    point): *current*-rotation entries, due/cascading at
            //    the cursor itself — next-rotation entries would need
            //    a delta of a full 64^(level+1) and live a level up.
            //  * cursor strictly inside the bucket's range:
            //    *next*-rotation entries only — the cursor can only
            //    enter a range through its start, which cascades the
            //    current rotation out, and a later insert below the
            //    range end would have a sub-64^level delta and land
            //    on a lower level. (An unaligned cursor plus a delta
            //    just under 64^(level+1) lands exactly 64 units
            //    ahead: same index, next rotation.)
            let at_pos = mask & (1u64 << pos);
            let strictly_ahead = mask & !((1u64 << pos) - 1) & !(1u64 << pos);
            let (idx, unit) = if at_pos != 0 && self.cursor == cur << shift {
                (pos, cur)
            } else if strictly_ahead != 0 {
                let idx = strictly_ahead.trailing_zeros();
                (idx, rot + u64::from(idx))
            } else {
                // Wrap: the earliest occupied bucket of the next
                // rotation — bits below `pos`, or `pos` itself behind
                // an unaligned cursor.
                let idx = mask.trailing_zeros();
                (idx, rot + SLOTS + u64::from(idx))
            };
            let tick = unit << shift;
            debug_assert!(tick >= self.cursor, "stale bucket behind the cursor");
            // Strict `<` with high-to-low iteration: on equal ticks the
            // higher level wins and cascades first.
            if best.is_none_or(|b| tick < b.0) {
                best = Some((tick, level, idx as usize));
            }
        }
        best
    }

    /// Advance the cursor until `current` holds the next due tick's
    /// entries (sorted by seq) or the wheel side is exhausted. Cascades
    /// higher-level buckets and promotes overflow entries on the way.
    fn resolve(&mut self) {
        while self.current.is_empty() {
            let wheel = self.next_wheel_position();
            let ov = self.overflow.peek().map(|e| e.0.at.0);
            match (wheel, ov) {
                (None, None) => return,
                // Overflow first on ties: its entries may land in the
                // very bucket about to drain.
                (w, Some(o)) if w.is_none_or(|(t, _, _)| o <= t) => {
                    debug_assert!(o >= self.cursor, "overflow behind the cursor");
                    self.cursor = o;
                    while let Some(e) = self.overflow.peek() {
                        if e.0.at.0 - self.cursor >= SPAN {
                            break;
                        }
                        let e = self.overflow.pop().expect("peeked entry exists").0;
                        self.place(e);
                        self.stats.overflow_promotions += 1;
                    }
                }
                (Some((tick, level, idx)), _) => {
                    debug_assert!(tick >= self.cursor, "wheel went backwards");
                    self.cursor = tick;
                    self.masks[level] &= !(1 << idx);
                    let bucket = std::mem::take(&mut self.levels[level][idx]);
                    if level == 0 {
                        // One tick per level-0 bucket; seq-sort restores
                        // FIFO across direct inserts and cascades.
                        let mut bucket = bucket;
                        bucket.sort_unstable_by_key(|e| e.seq);
                        self.current.extend(bucket);
                    } else {
                        self.stats.cascades += 1;
                        for e in bucket {
                            self.place(e);
                        }
                    }
                }
                (None, Some(_)) => unreachable!("covered by the overflow arm"),
            }
        }
    }

    /// Whether the next pop comes from the fallback heap rather than the
    /// resolved `current` queue. Requires `resolve()` to have run.
    fn fallback_first(&self) -> Option<bool> {
        match (self.current.front(), self.fallback.peek()) {
            (None, None) => None,
            (None, Some(_)) => Some(true),
            (Some(_), None) => Some(false),
            (Some(c), Some(f)) => Some((f.0.at, f.0.seq) < (c.at, c.seq)),
        }
    }
}

impl<E> Agenda<E> for WheelAgenda<E> {
    fn push(&mut self, entry: AgendaEntry<E>) {
        self.len += 1;
        if entry.at.0 < self.cursor {
            self.fallback.push(OrderedEntry(entry));
        } else {
            self.place(entry);
        }
    }

    fn pop(&mut self) -> Option<AgendaEntry<E>> {
        self.resolve();
        let from_fallback = self.fallback_first()?;
        self.len -= 1;
        Some(if from_fallback {
            self.fallback.pop().expect("peeked entry exists").0
        } else {
            self.current.pop_front().expect("peeked entry exists")
        })
    }

    fn peek(&mut self) -> Option<(Ticks, EventId)> {
        self.resolve();
        Some(if self.fallback_first()? {
            let e = &self.fallback.peek().expect("peeked entry exists").0;
            (e.at, e.id)
        } else {
            let e = self.current.front().expect("peeked entry exists");
            (e.at, e.id)
        })
    }

    fn len(&self) -> usize {
        self.len
    }

    fn retain(&mut self, keep: &mut dyn FnMut(&AgendaEntry<E>) -> bool) {
        let mut len = 0usize;
        for level in 0..LEVELS {
            let mut mask = 0u64;
            for idx in 0..SLOTS as usize {
                let bucket = &mut self.levels[level][idx];
                bucket.retain(|e| keep(e));
                if !bucket.is_empty() {
                    mask |= 1 << idx;
                    len += bucket.len();
                }
            }
            self.masks[level] = mask;
        }
        self.current.retain(|e| keep(e));
        len += self.current.len();
        self.fallback.retain(|e| keep(&e.0));
        len += self.fallback.len();
        self.overflow.retain(|e| keep(&e.0));
        len += self.overflow.len();
        self.len = len;
    }

    fn wheel_stats(&self) -> WheelStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, seq: u64) -> AgendaEntry<u64> {
        AgendaEntry {
            at: Ticks(at),
            seq,
            id: EventId::new(seq as u32, 0),
            payload: seq,
        }
    }

    fn drain<A: Agenda<u64>>(a: &mut A) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = a.pop() {
            out.push((e.at.0, e.seq));
        }
        out
    }

    #[test]
    fn min_queue_pops_in_order() {
        let mut q = MinQueue::new();
        for v in [5u64, 1, 9, 3] {
            q.push(v);
        }
        assert_eq!(q.peek(), Some(&1));
        q.retain(|&v| v != 3);
        assert_eq!(q.len(), 3);
        assert_eq!(
            std::iter::from_fn(|| q.pop()).collect::<Vec<_>>(),
            vec![1, 5, 9]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn level_of_matches_log64() {
        assert_eq!(WheelAgenda::<()>::level_of(0), 0);
        assert_eq!(WheelAgenda::<()>::level_of(63), 0);
        assert_eq!(WheelAgenda::<()>::level_of(64), 1);
        assert_eq!(WheelAgenda::<()>::level_of(64 * 64 - 1), 1);
        assert_eq!(WheelAgenda::<()>::level_of(64 * 64), 2);
        assert_eq!(WheelAgenda::<()>::level_of(SPAN - 1), LEVELS - 1);
    }

    #[test]
    fn wheel_orders_like_heap_on_a_mixed_schedule() {
        // Deltas spread across every level, plus same-tick ties and
        // far-future overflow entries.
        let ats = [
            0u64,
            1,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 18,
            (1 << 18) + 1,
            SPAN - 1,
            SPAN,
            SPAN + 12345,
            7,
            7,
        ];
        let mut heap = HeapAgenda::new();
        let mut wheel = WheelAgenda::new();
        for (seq, &at) in ats.iter().enumerate() {
            heap.push(entry(at, seq as u64));
            wheel.push(entry(at, seq as u64));
        }
        assert_eq!(heap.len(), wheel.len());
        assert_eq!(drain(&mut heap), drain(&mut wheel));
        assert!(wheel.wheel_stats().overflow_promotions >= 2);
    }

    #[test]
    fn wheel_counts_cascades_and_peak_bucket() {
        let mut wheel = WheelAgenda::new();
        // Three entries one level-2 bucket, one nearby: draining the far
        // ones must cascade through at least one level.
        for (seq, at) in [
            (0u64, 5u64),
            (1, 64 * 64 + 3),
            (2, 64 * 64 + 3),
            (3, 64 * 64 + 9),
        ] {
            wheel.push(entry(at, seq));
        }
        let fired = drain(&mut wheel);
        assert_eq!(
            fired,
            vec![(5, 0), (64 * 64 + 3, 1), (64 * 64 + 3, 2), (64 * 64 + 9, 3)]
        );
        let s = wheel.wheel_stats();
        assert!(s.cascades >= 1, "level-2 bucket must cascade");
        assert!(s.peak_bucket >= 2, "co-bucketed entries counted");
    }

    #[test]
    fn insert_behind_cursor_goes_to_fallback_and_pops_first() {
        let mut wheel = WheelAgenda::new();
        wheel.push(entry(100, 0));
        // Peek runs the cursor to 100.
        assert_eq!(wheel.peek(), Some((Ticks(100), EventId::new(0, 0))));
        // An earlier insert (legal: the engine clock is still behind)
        // must still pop first.
        wheel.push(entry(40, 1));
        wheel.push(entry(100, 2));
        assert_eq!(drain(&mut wheel), vec![(40, 1), (100, 0), (100, 2)]);
    }

    #[test]
    fn unaligned_cursor_files_boundary_delta_into_next_rotation() {
        // With the cursor mid-bucket (127: level-1 pos 1, unaligned), a
        // delta just under 64^2 lands on the *same* level-1 index one
        // rotation ahead (4222 >> 6 = 65 ≡ 1 mod 64). Mistaking it for
        // the current rotation would run the wheel backwards.
        let mut wheel = WheelAgenda::new();
        wheel.push(entry(127, 0));
        assert_eq!(drain(&mut wheel), vec![(127, 0)]);
        wheel.push(entry(127 + 4095, 1));
        assert_eq!(drain(&mut wheel), vec![(127 + 4095, 1)]);
    }

    #[test]
    fn overflow_tie_promotion_still_cascades_the_cursor_bucket() {
        // An overflow promotion can land the cursor *exactly* on a
        // pending cascade point: B (overflow, at = SPAN) ties with A's
        // level-1 bucket whose range starts at SPAN. The aligned cursor
        // bucket holds current-rotation entries and must cascade now,
        // not a rotation later.
        let mut wheel = WheelAgenda::new();
        wheel.push(entry(SPAN - 64, 0)); // wheel, level 5
        wheel.push(entry(SPAN, 1)); // overflow (delta == SPAN)
        assert_eq!(wheel.pop().map(|e| (e.at.0, e.seq)), Some((SPAN - 64, 0)));
        // Cursor now sits at SPAN - 64; delta 96 puts A at level 1 in
        // the bucket spanning [SPAN, SPAN + 64).
        wheel.push(entry(SPAN + 32, 2));
        assert_eq!(drain(&mut wheel), vec![(SPAN, 1), (SPAN + 32, 2)]);
        assert_eq!(wheel.wheel_stats().overflow_promotions, 1);
    }

    #[test]
    fn retain_preserves_order_and_len() {
        let mut wheel = WheelAgenda::new();
        for (seq, at) in [(0u64, 3u64), (1, 3), (2, 70), (3, SPAN + 5), (4, 9)] {
            wheel.push(entry(at, seq));
        }
        // Drop the odd seqs wherever they live (bucket, overflow).
        wheel.retain(&mut |e: &AgendaEntry<u64>| e.seq % 2 == 0);
        assert_eq!(wheel.len(), 3);
        assert_eq!(drain(&mut wheel), vec![(3, 0), (9, 4), (70, 2)]);
    }
}
