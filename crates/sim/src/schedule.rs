//! Client schedules: the continuous-time counterpart of
//! `sb_core::client`, usable with *any* [`ChannelPlan`].
//!
//! A [`ClientSchedule`] is the complete record of one client session: when
//! playback of each segment begins and when each segment is received, from
//! which channel, at what rate. From it the simulator derives the three
//! Table-1 metrics empirically:
//!
//! * [`ClientSchedule::startup_latency`] — arrival → playback start,
//! * [`ClientSchedule::peak_concurrent_receive_rate`] /
//!   [`ClientSchedule::max_concurrent_downloads`] — client I/O pressure,
//! * [`ClientSchedule::peak_buffer`] — the maximum of the piecewise-linear
//!   buffer-occupancy curve (received − consumed).
//!
//! [`ClientSchedule::jitter_violations`] checks starvation exactly: byte
//! `b·τ` of a segment must be delivered no later than it is consumed, which
//! for a constant-rate contiguous reception reduces to a closed-form test
//! per segment (worst at the start for fast channels, at the end for slow
//! ones).

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes};

use sb_core::plan::{BroadcastItem, ChannelPlan};

use crate::trace::{Reception, SessionTrace};

/// One contiguous reception of a segment from a channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Download {
    /// What is received.
    pub item: BroadcastItem,
    /// The channel it is received from.
    pub channel: usize,
    /// Reception start (a broadcast start — clients only tune to
    /// beginnings of broadcasts).
    pub start: Minutes,
    /// Reception rate (the channel rate).
    pub rate: Mbps,
    /// Segment size.
    pub size: Mbits,
}

impl Download {
    /// Reception end.
    #[must_use]
    pub fn end(&self) -> Minutes {
        self.start + (self.size / self.rate).to_minutes()
    }
}

/// A starvation report: a segment whose delivery cannot keep up with its
/// playback.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterViolation {
    /// The late segment.
    pub segment: usize,
    /// Playback start of the segment.
    pub playback_start: Minutes,
    /// The latest time reception could start and still be jitter-free.
    pub required_start: Minutes,
    /// The actual reception start.
    pub actual_start: Minutes,
}

/// The full record of one client session against a broadcast plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientSchedule {
    /// Arrival time of the request.
    pub arrival: Minutes,
    /// When playback of segment 0 begins.
    pub playback_start: Minutes,
    /// Display rate `b`.
    pub display_rate: Mbps,
    /// Segment sizes in playback order.
    pub segment_sizes: Vec<Mbits>,
    /// One download per segment, in playback order.
    pub downloads: Vec<Download>,
}

impl ClientSchedule {
    /// Playback duration of segment `i`.
    #[must_use]
    pub fn segment_duration(&self, i: usize) -> Minutes {
        (self.segment_sizes[i] / self.display_rate).to_minutes()
    }

    /// Playback start of segment `i`.
    #[must_use]
    pub fn playback_start_of(&self, i: usize) -> Minutes {
        let prefix: f64 = (0..i).map(|j| self.segment_duration(j).value()).sum();
        Minutes(self.playback_start.value() + prefix)
    }

    /// End of playback.
    #[must_use]
    pub fn playback_end(&self) -> Minutes {
        self.playback_start_of(self.segment_sizes.len())
    }

    /// The §5 access latency of this session: arrival → playback start.
    #[must_use]
    pub fn startup_latency(&self) -> Minutes {
        Minutes(self.playback_start.value() - self.arrival.value())
    }

    /// The latest reception start for segment `i` (given its reception
    /// rate) that still delivers every byte on time: byte `b·τ` must arrive
    /// by playback time `τ`, i.e. `start + (b/r)·τ ≤ playback_start + τ`
    /// for all `τ ∈ [0, dur]`. Tight at `τ = 0` when `r ≥ b`, at `τ = dur`
    /// when `r < b`.
    #[must_use]
    pub fn required_start(&self, i: usize, rate: Mbps) -> Minutes {
        let pb = self.playback_start_of(i).value();
        let b = self.display_rate.value();
        let r = rate.value();
        if r >= b {
            Minutes(pb)
        } else {
            let dur = self.segment_duration(i).value();
            Minutes(pb + dur * (1.0 - b / r))
        }
    }

    /// The session as a scheme-agnostic [`SessionTrace`]: one
    /// [`Reception`] per download, covering its whole segment. All buffer,
    /// jitter and concurrency accounting lives on the trace.
    #[must_use]
    pub fn trace(&self) -> SessionTrace {
        SessionTrace {
            arrival: self.arrival,
            playback_start: self.playback_start,
            display_rate: self.display_rate,
            segment_sizes: self.segment_sizes.clone(),
            receptions: self
                .downloads
                .iter()
                .map(|d| Reception {
                    segment: d.item.segment,
                    channel: d.channel,
                    start: d.start,
                    duration: (d.size / d.rate).to_minutes(),
                    rate: d.rate,
                    content_offset: Mbits(0.0),
                    size: d.size,
                })
                .collect(),
        }
    }

    /// All segments whose reception starts too late for starvation-free
    /// playback, within a relative tolerance `tol` (in minutes).
    #[must_use]
    pub fn jitter_violations(&self, tol: f64) -> Vec<JitterViolation> {
        self.trace()
            .violations(tol)
            .into_iter()
            .map(|v| JitterViolation {
                segment: v.segment,
                playback_start: v.playback_start,
                required_start: v.required_start,
                actual_start: v.actual_start,
            })
            .collect()
    }

    /// Maximum number of simultaneously active receptions.
    #[must_use]
    pub fn max_concurrent_downloads(&self) -> usize {
        self.trace().max_concurrent_receptions()
    }

    /// Peak aggregate reception rate across concurrent downloads — the
    /// "receiving" half of the client's disk-bandwidth requirement.
    #[must_use]
    pub fn peak_concurrent_receive_rate(&self) -> Mbps {
        self.trace().peak_concurrent_receive_rate()
    }

    /// The buffer-occupancy curve as `(time, Mbits)` vertices: total data
    /// received minus total data consumed, evaluated at every breakpoint
    /// (download starts/ends, playback start/end).
    #[must_use]
    pub fn buffer_profile(&self) -> Vec<(Minutes, Mbits)> {
        self.trace().buffer_profile()
    }

    /// Peak of the buffer-occupancy curve.
    #[must_use]
    pub fn peak_buffer(&self) -> Mbits {
        self.trace().peak_buffer()
    }

    /// Structural sanity: one download per segment, in order, matching the
    /// plan's sizes; receptions start no earlier than arrival.
    pub fn validate(&self, plan: &ChannelPlan) -> Result<(), String> {
        if self.downloads.len() != self.segment_sizes.len() {
            return Err(format!(
                "{} downloads for {} segments",
                self.downloads.len(),
                self.segment_sizes.len()
            ));
        }
        for (i, d) in self.downloads.iter().enumerate() {
            if d.item.segment != i {
                return Err(format!("download {i} fetches segment {}", d.item.segment));
            }
            if d.start.value() + 1e-9 < self.arrival.value() {
                return Err(format!(
                    "segment {i} reception at {} precedes arrival {}",
                    d.start, self.arrival
                ));
            }
            let ch = plan
                .channels
                .get(d.channel)
                .ok_or_else(|| format!("download {i} uses unknown channel {}", d.channel))?;
            if !ch.rate.approx_eq(d.rate, 1e-9) {
                return Err(format!(
                    "download {i} rate mismatch with channel {}",
                    d.channel
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_core::plan::VideoId;

    /// A hand-built two-segment schedule for exercising the math:
    /// playback at t=10, segments of 2 and 4 minutes at b = 1.5;
    /// segment 0 received live (rate b), segment 1 prefetched early at 3 Mb/s.
    fn toy() -> ClientSchedule {
        let b = Mbps(1.5);
        let sizes = vec![b * Minutes(2.0), b * Minutes(4.0)];
        ClientSchedule {
            arrival: Minutes(9.5),
            playback_start: Minutes(10.0),
            display_rate: b,
            segment_sizes: sizes.clone(),
            downloads: vec![
                Download {
                    item: BroadcastItem {
                        video: VideoId(0),
                        segment: 0,
                    },
                    channel: 0,
                    start: Minutes(10.0),
                    rate: b,
                    size: sizes[0],
                },
                Download {
                    item: BroadcastItem {
                        video: VideoId(0),
                        segment: 1,
                    },
                    channel: 1,
                    start: Minutes(10.0),
                    rate: Mbps(3.0),
                    size: sizes[1],
                },
            ],
        }
    }

    #[test]
    fn latency_and_playback_times() {
        let s = toy();
        assert!(s.startup_latency().approx_eq(Minutes(0.5), 1e-12));
        assert!(s.playback_start_of(1).approx_eq(Minutes(12.0), 1e-12));
        assert!(s.playback_end().approx_eq(Minutes(16.0), 1e-12));
    }

    #[test]
    fn no_jitter_and_two_streams() {
        let s = toy();
        assert!(s.jitter_violations(1e-9).is_empty());
        assert_eq!(s.max_concurrent_downloads(), 2);
        assert!(s.peak_concurrent_receive_rate().approx_eq(Mbps(4.5), 1e-9));
    }

    #[test]
    fn buffer_peaks_when_prefetch_outruns_playback() {
        let s = toy();
        // Segment 1 (360 Mbit) arrives over [10, 12] at 3 Mb/s while only
        // segment 0 plays: at t=12 the whole 360 Mbit of segment 1 is
        // buffered and segment 0 has been consumed as received → 360.
        let peak = s.peak_buffer();
        assert!(
            peak.approx_eq(Mbits(360.0), 1e-6),
            "expected 360 Mbit, got {peak}"
        );
        // And the curve drains to zero at playback end.
        let profile = s.buffer_profile();
        let last = profile.last().unwrap();
        assert!(last.1.approx_eq(Mbits::ZERO, 1e-6));
    }

    #[test]
    fn late_start_is_flagged() {
        let mut s = toy();
        s.downloads[1].start = Minutes(12.5); // playback of seg 1 is at 12.0
        let v = s.jitter_violations(1e-9);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].segment, 1);
        assert!(v[0].required_start.approx_eq(Minutes(12.0), 1e-9));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Real SB sessions across random widths/bandwidths/arrivals keep
        /// every invariant: valid against the plan, jitter-free, ≤ 2
        /// streams, buffer profile starting and ending empty, latency
        /// within the analytic bound.
        #[test]
        fn sb_session_invariants(
            wi in 0usize..6,
            b in 100.0f64..600.0,
            arrival in 0.0f64..30.0,
            video in 0usize..10,
        ) {
            use sb_core::config::SystemConfig;
            use sb_core::scheme::BroadcastScheme;
            use sb_core::series::{unit, Width};
            use sb_core::Skyscraper;
            use crate::policy::{schedule_client, ClientPolicy};

            let width = if wi == 0 { Width::Unbounded } else { Width::Capped(unit(2 * wi)) };
            let cfg = SystemConfig::paper_defaults(Mbps(b));
            let scheme = Skyscraper::with_width(width);
            let plan = scheme.plan(&cfg).unwrap();
            let metrics = scheme.metrics(&cfg).unwrap();
            let s = schedule_client(
                &plan,
                VideoId(video),
                Minutes(arrival),
                cfg.display_rate,
                ClientPolicy::LatestFeasible,
            )
            .unwrap();
            s.validate(&plan).unwrap();
            prop_assert!(s.jitter_violations(1e-6).is_empty());
            prop_assert!(s.max_concurrent_downloads() <= 2);
            prop_assert!(s.startup_latency().value() <= metrics.access_latency.value() + 1e-6);
            prop_assert!(s.peak_buffer().value() <= metrics.buffer_requirement.value() * (1.0 + 1e-6));
            let profile = s.buffer_profile();
            prop_assert!(profile.first().unwrap().1.value() < 1e-6);
            prop_assert!(profile.last().unwrap().1.value() < 1e-6);
            // Peak receive rate is at most two display-rate streams.
            prop_assert!(s.peak_concurrent_receive_rate().value() <= 2.0 * 1.5 + 1e-9);
        }

        /// `required_start` is the exact feasibility boundary: starting at
        /// it is jitter-free, starting any later is not.
        #[test]
        fn required_start_is_tight(rate in 0.8f64..6.0, seg_minutes in 0.5f64..20.0) {
            let b = Mbps(1.5);
            let size = b * Minutes(seg_minutes);
            let mut s = toy();
            s.segment_sizes[1] = size;
            s.downloads[1].size = size;
            s.downloads[1].rate = Mbps(rate);
            let boundary = s.required_start(1, Mbps(rate));
            s.downloads[1].start = boundary;
            prop_assert!(s.jitter_violations(1e-9).is_empty());
            s.downloads[1].start = Minutes(boundary.value() + 0.01);
            prop_assert_eq!(s.jitter_violations(1e-9).len(), 1);
        }
    }

    #[test]
    fn slow_channel_needs_head_start() {
        let mut s = toy();
        // Receive segment 1 at half the display rate: must start dur·(1−b/r)
        // = 4·(1−2) = −4 minutes before its playback, i.e. by t = 8.
        s.downloads[1].rate = Mbps(0.75);
        let required = s.required_start(1, Mbps(0.75));
        assert!(required.approx_eq(Minutes(8.0), 1e-9));
        s.downloads[1].start = Minutes(8.0);
        // Can't actually receive before arrival, but the jitter math itself
        // is what we're testing here.
        assert!(s.jitter_violations(1e-9).is_empty());
        s.downloads[1].start = Minutes(9.0);
        assert_eq!(s.jitter_violations(1e-9).len(), 1);
    }
}
