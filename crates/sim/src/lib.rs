//! # Metropolitan VoD simulator
//!
//! The executable substrate under the paper's evaluation: broadcast
//! channels, per-scheme client policies, exact buffer accounting, fault
//! injection, and a discrete-event engine for whole-system runs.
//!
//! The paper's §4 and §5 are analytic. This crate exists to *check* that
//! analysis: it takes the very same [`sb_core::plan::ChannelPlan`] objects
//! the schemes build, drives simulated clients against them, and measures
//! the three Table-1 metrics empirically —
//!
//! * **access latency** — wait from arrival to the first catchable
//!   broadcast of the first fragment,
//! * **client I/O** — the number and rates of concurrent reception
//!   streams,
//! * **buffer occupancy** — the piecewise-linear fill level of the client
//!   disk, sampled at every breakpoint.
//!
//! ## Modules
//!
//! | module | contents |
//! |--------|----------|
//! | [`engine`] | a small, deterministic discrete-event engine (tick clock, pluggable agenda) |
//! | [`agenda`] | event-store backends: binary heap and hierarchical timing wheel, bitwise interchangeable |
//! | [`checkpoint`] | versioned, checksummed shard checkpoints and the crash/restore probe protocol |
//! | [`trace`] | the unified [`trace::SessionTrace`] every client model produces, and the [`trace::ClientModel`] trait |
//! | [`schedule`] | client schedules: downloads, playback, and conversion to traces |
//! | [`policy`] | per-scheme client policies (latest-feasible, PB's eager prefetch, live) |
//! | [`pausing`] | PPB's "max-saving" mid-broadcast-retuning client |
//! | [`receive_all`] | Harmonic Broadcasting's record-everything client (and its famous bug) |
//! | [`cycle_record`] | CTIFB's cycle-recording client and its channel-transition invariance property |
//! | [`faults`] | broadcast-loss injection and stall accounting over traces |
//! | [`sink`] | the [`sink::TraceSink`] streaming fold: aggregate populations without retaining traces |
//! | [`system`] | many-client system simulation driven by the engine, generic over client models |
//! | [`run`] | the one run entry point: the [`run::RunConfig`] builder and [`run::RunOutcome`] |
//! | [`shard`] | partitioned scale-out: seeded catalog sharding with byte-identical merge |
//! | [`distribution`] | the distributed metro tier: cross-server routing, backbone capacity, peer-assisted delivery accounting |
//! | [`pool`] | the deterministic scoped worker pool (order-preserving, attributable panics) |
//! | [`prelude`] | the one-stop public run surface (`use sb_sim::prelude::*`) |
//!
//! ## Example: measure a Skyscraper client empirically
//!
//! ```
//! use sb_core::prelude::*;
//! use sb_core::plan::VideoId;
//! use sb_sim::policy::{schedule_client, ClientPolicy};
//!
//! let cfg = SystemConfig::paper_defaults(Mbps(300.0));
//! let plan = Skyscraper::with_width(Width::capped(52).unwrap())
//!     .plan(&cfg)
//!     .unwrap();
//! let sched = schedule_client(
//!     &plan,
//!     VideoId(0),
//!     Minutes(7.3),
//!     cfg.display_rate,
//!     ClientPolicy::LatestFeasible,
//! )
//! .unwrap();
//! assert!(sched.jitter_violations(1e-9).is_empty());
//! // The empirical peak buffer respects the analytic bound 60·b·D₁·(W−1).
//! let analytic = Skyscraper::with_width(Width::capped(52).unwrap())
//!     .metrics(&cfg)
//!     .unwrap()
//!     .buffer_requirement;
//! assert!(sched.peak_buffer().value() <= analytic.value() * (1.0 + 1e-6));
//! ```

#![forbid(unsafe_code)]

pub mod agenda;
pub mod checkpoint;
pub mod cycle_record;
pub mod distribution;
pub mod e2e;
pub mod engine;
pub mod faults;
pub mod pausing;
pub mod policy;
pub mod pool;
pub mod prelude;
pub mod receive_all;
pub mod run;
pub mod schedule;
pub mod shard;
pub mod sink;
pub mod system;
pub mod trace;

pub use agenda::{Agenda, AgendaEntry, AgendaKind, HeapAgenda, MinQueue, WheelAgenda, WheelStats};
pub use checkpoint::{
    decode_state, CheckpointError, CheckpointState, Killed, Probe, ShardCrash, ShardRun, Verdict,
};
pub use cycle_record::{channel_windows, record_cycles};
pub use distribution::{
    route_catalog, DistributionConfig, RouteOutcome, SegmentWindow, SessionRecord,
};
pub use e2e::{replay, E2eReport, PacketConfig};
pub use engine::{Engine, EngineStats, EventId, FrozenEngine};
pub use faults::{
    apply_losses, jitter_free_with_stalls, LossModel, LossProcess, Stall, StallReport,
};
pub use pausing::{schedule_pausing_client, PausingSchedule};
pub use policy::{schedule_client, ClientPolicy};
pub use pool::parallel_map;
pub use receive_all::{record_all, RecordingSchedule};
pub use run::{ConfigError, RunConfig, RunOutcome, RunParts};
pub use schedule::{ClientSchedule, Download, JitterViolation};
pub use shard::{merge_shard_runs, plan_shards, shard_of, ShardSlice};
pub use sink::{CollectTraces, FoldState, NullSink, SessionSummary, StreamingFold, TraceSink};
pub use system::{Request, SystemReport, SystemSim};
pub use trace::{
    ClientModel, CycleRecordingClient, PausingClient, Reception, RecordingClient, SessionTrace,
    TraceViolation,
};
