//! Deterministic checkpoint/restore for shard execution.
//!
//! A checkpoint is a complete still image of one shard's mid-run state:
//! the engine ([`crate::engine::FrozenEngine`] — clock, FIFO counter,
//! stats, pending agenda in canonical order), the report accumulators
//! ([`crate::system`]'s `CoreState`), the streaming fold
//! ([`crate::sink::FoldState`]), the captured per-session scalars the
//! sharded merge replays, and the metrics registry snapshot. Restoring
//! one and running to completion produces **bitwise identical** artifacts
//! to the uninterrupted run, because every accumulator resumes with its
//! exact bit pattern and every remaining event fires in the same
//! `(tick, seq)` order (see `DESIGN.md` §14 for the full argument).
//!
//! ## Wire format
//!
//! ```text
//! SBCKPT <version> <fnv1a64-of-payload, 16 hex digits> <payload-len>\n
//! <payload: JSON, one line>
//! ```
//!
//! The header is checked before the payload is even parsed: wrong magic
//! or version → [`CheckpointError::BadHeader`] /
//! [`CheckpointError::UnsupportedVersion`]; any flipped payload byte →
//! [`CheckpointError::ChecksumMismatch`]. The supervisor uses that
//! rejection to fall back to the previous checkpoint (`resilience`'s
//! recovery module).
//!
//! Every `f64` in the payload is encoded as its IEEE-754 bit pattern
//! (`f64::to_bits`, a JSON unsigned integer), **not** as a decimal
//! float: the restore must reproduce accumulator bit patterns exactly,
//! including `-0.0` and values a shortest-representation printer would
//! round. This is a persistence format, not an artifact format — the
//! run's published JSON artifacts are unchanged.

use sb_metrics::{
    FamilySnapshot, HistogramValue, MetricKind, MetricValue, SeriesSnapshot, Snapshot,
};
use vod_units::{Mbits, Minutes, Ticks};

use crate::agenda::AgendaKind;
use crate::engine::{EngineStats, FrozenEngine};
use crate::policy::PolicyError;
use crate::shard::{SessionScalars, ShardSlice};
use crate::sink::FoldState;
use crate::system::{CoreState, Ev, SystemSim};

/// Format version written (and the only one accepted) by this build.
const VERSION: u64 = 1;

/// Header magic.
const MAGIC: &str = "SBCKPT";

/// A decoded checkpoint: one shard's complete mid-run execution state.
///
/// Obtain one with [`decode_state`]; the fields stay private — the only
/// supported operation is resuming a run from it
/// ([`SystemSim::run_shard`]).
#[derive(Debug, Clone)]
pub struct CheckpointState {
    pub(crate) frozen: FrozenEngine<Ev>,
    pub(crate) core: CoreState,
    pub(crate) fold: FoldState,
    pub(crate) scalars: Vec<SessionScalars>,
    pub(crate) snapshot: Snapshot,
    pub(crate) sessions_done: u64,
}

impl CheckpointState {
    /// Sessions the shard had served when this checkpoint was taken.
    #[must_use]
    pub fn sessions_done(&self) -> u64 {
        self.sessions_done
    }
}

/// Why a checkpoint could not be decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// No header line, or a header that does not parse.
    BadHeader(String),
    /// The header names a format version this build does not speak.
    UnsupportedVersion(u64),
    /// Payload bytes do not hash to the header's checksum — the
    /// checkpoint was corrupted (or truncated) after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum of the payload actually present.
        computed: u64,
    },
    /// Payload length differs from the header's declared length.
    LengthMismatch {
        /// Length recorded in the header.
        stored: usize,
        /// Length of the payload actually present.
        actual: usize,
    },
    /// The payload passed the checksum but has the wrong shape.
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::BadHeader(what) => write!(f, "bad checkpoint header: {what}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build speaks {VERSION})")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: header says {stored:016x}, payload hashes to {computed:016x}"
            ),
            CheckpointError::LengthMismatch { stored, actual } => write!(
                f,
                "checkpoint length mismatch: header says {stored} payload bytes, found {actual}"
            ),
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint payload: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What the supervisor's crash probe is shown.
#[derive(Debug, Clone, Copy)]
pub enum Probe<'a> {
    /// About to handle the event popped at `tick`.
    Event {
        /// The popped event's tick.
        tick: u64,
    },
    /// A checkpoint was just taken (and is handed over as `encoded` —
    /// the supervisor stores the bytes; the shard keeps nothing).
    Checkpoint {
        /// 1-based checkpoint index: `sessions_done / cadence`.
        index: u64,
        /// The encoded checkpoint (header + payload).
        encoded: &'a [u8],
    },
}

/// The probe's answer: keep running, or die right here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep running.
    Continue,
    /// Crash the shard at this point, deterministically.
    Kill,
}

/// Where and when a shard was killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Killed {
    /// Engine tick at the kill point.
    pub tick: u64,
    /// Sessions the shard had served.
    pub sessions_done: u64,
    /// Checkpoints the shard had taken (this attempt).
    pub checkpoints_taken: u64,
}

/// Why a shard attempt did not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardCrash {
    /// The simulation itself failed (e.g. a request for an unknown
    /// video) — retrying is pointless, the error is deterministic.
    Policy(PolicyError),
    /// The crash probe killed the shard.
    Killed(Killed),
    /// The resume bytes were rejected before the run even started.
    Corrupt(CheckpointError),
}

impl ShardCrash {
    pub(crate) fn killed(tick: u64, sessions_done: u64, checkpoints_taken: u64) -> Self {
        ShardCrash::Killed(Killed {
            tick,
            sessions_done,
            checkpoints_taken,
        })
    }
}

impl std::fmt::Display for ShardCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardCrash::Policy(e) => write!(f, "shard failed: {e}"),
            ShardCrash::Killed(k) => write!(
                f,
                "shard killed at tick {} after {} sessions ({} checkpoints)",
                k.tick, k.sessions_done, k.checkpoints_taken
            ),
            ShardCrash::Corrupt(e) => write!(f, "shard resume rejected: {e}"),
        }
    }
}

impl std::error::Error for ShardCrash {}

/// One shard's completed results, ready for [`crate::shard::merge_shard_runs`].
///
/// Opaque by design: the scalars inside are keyed by global request
/// index and must only be recombined by the canonical ordered-replay
/// merge.
pub struct ShardRun {
    pub(crate) report: crate::system::SystemReport,
    pub(crate) stats: EngineStats,
    pub(crate) scalars: Vec<SessionScalars>,
    pub(crate) snapshot: Snapshot,
    pub(crate) checkpoints_taken: u64,
}

impl ShardRun {
    /// Checkpoints taken during the (final, completing) attempt.
    #[must_use]
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Sessions this shard served.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.report.sessions
    }
}

impl SystemSim<'_> {
    /// Run one shard slice as a restartable unit.
    ///
    /// The engine pops events exactly as `execute` would for this slice;
    /// `probe` is consulted before every event and after every checkpoint
    /// (taken every `checkpoint_every` served sessions), so a supervisor
    /// can inject deterministic crashes and collect checkpoint bytes.
    /// Passing `resume` continues from a previously collected checkpoint;
    /// the completed [`ShardRun`] is bitwise identical either way.
    ///
    /// # Errors
    /// [`ShardCrash::Corrupt`] when `resume` fails to decode (nothing has
    /// run yet — fall back to an older checkpoint or a fresh start);
    /// [`ShardCrash::Killed`] when the probe said [`Verdict::Kill`];
    /// [`ShardCrash::Policy`] for deterministic simulation errors.
    ///
    /// # Panics
    /// Panics if `checkpoint_every` is zero — `RunConfig::validate`
    /// rejects that cadence before any shard runs.
    pub fn run_shard(
        &self,
        slice: &ShardSlice,
        agenda: AgendaKind,
        checkpoint_every: u64,
        resume: Option<&[u8]>,
        probe: &mut dyn FnMut(Probe<'_>) -> Verdict,
    ) -> Result<ShardRun, ShardCrash> {
        let resume_state = match resume {
            Some(bytes) => Some(decode_state(bytes).map_err(ShardCrash::Corrupt)?),
            None => None,
        };
        let out = self.run_core_checkpointed(
            slice.requests(),
            agenda,
            checkpoint_every,
            resume_state,
            probe,
        )?;
        let mut scalars = out.scalars;
        for sc in &mut scalars {
            sc.idx = slice.global_idx()[sc.idx];
        }
        Ok(ShardRun {
            report: out.report,
            stats: out.stats,
            scalars,
            snapshot: out.snapshot,
            checkpoints_taken: out.checkpoints_taken,
        })
    }
}

// ---- encoding --------------------------------------------------------------

/// FNV-1a 64-bit over the payload bytes: tiny, dependency-free, and more
/// than enough to catch the bit flips and truncations the corruption
/// fallback exists for (this is an integrity check, not authentication).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn obj(fields: Vec<(&str, serde::Value)>) -> serde::Value {
    serde::Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn uint(u: u64) -> serde::Value {
    serde::Value::UInt(u)
}

/// An `f64` as its exact bit pattern — see the module docs for why the
/// persistence format never prints floats as decimals.
fn bits(f: f64) -> serde::Value {
    serde::Value::UInt(f.to_bits())
}

fn bits_arr(fs: &[f64]) -> serde::Value {
    serde::Value::Array(fs.iter().map(|&f| bits(f)).collect())
}

fn encode_ev(ev: Ev) -> serde::Value {
    match ev {
        // `Finish` is `null`, `Arrive(pos)` its position: the agenda is
        // overwhelmingly `Finish` events mid-run, and `null` is short.
        Ev::Finish => serde::Value::Null,
        Ev::Arrive(pos) => uint(pos as u64),
    }
}

fn encode_stats(s: &EngineStats) -> serde::Value {
    obj(vec![
        ("scheduled", uint(s.scheduled)),
        ("fired", uint(s.fired)),
        ("cancelled", uint(s.cancelled)),
        ("peak_agenda", uint(s.peak_agenda)),
        ("compactions", uint(s.compactions)),
    ])
}

fn encode_snapshot(snap: &Snapshot) -> serde::Value {
    serde::Value::Array(
        snap.families
            .iter()
            .map(|f| {
                let kind = match f.kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                    MetricKind::Histogram => "histogram",
                };
                obj(vec![
                    ("name", serde::Value::Str(f.name.clone())),
                    ("kind", serde::Value::Str(kind.to_string())),
                    (
                        "series",
                        serde::Value::Array(
                            f.series
                                .iter()
                                .map(|s| {
                                    let value = match &s.value {
                                        MetricValue::Counter(c) => obj(vec![("c", uint(*c))]),
                                        MetricValue::Gauge(g) => obj(vec![("g", bits(*g))]),
                                        MetricValue::Histogram(h) => obj(vec![(
                                            "h",
                                            obj(vec![
                                                ("bounds", bits_arr(&h.bounds)),
                                                (
                                                    "counts",
                                                    serde::Value::Array(
                                                        h.counts.iter().map(|&c| uint(c)).collect(),
                                                    ),
                                                ),
                                                ("count", uint(h.count)),
                                                ("sum", bits(h.sum)),
                                            ]),
                                        )]),
                                    };
                                    obj(vec![
                                        ("labels", serde::Value::Str(s.labels.clone())),
                                        ("value", value),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Serialize a checkpoint to its wire form (header + payload).
pub(crate) fn encode_state(cp: &CheckpointState) -> Vec<u8> {
    let core = &cp.core;
    let fold = &cp.fold;
    let payload_value = obj(vec![
        ("sessions_done", uint(cp.sessions_done)),
        (
            "engine",
            obj(vec![
                ("now", uint(cp.frozen.now.0)),
                ("seq", uint(cp.frozen.seq)),
                ("stats", encode_stats(&cp.frozen.stats)),
                (
                    "entries",
                    serde::Value::Array(
                        cp.frozen
                            .entries
                            .iter()
                            .map(|&(at, seq, ev)| {
                                serde::Value::Array(vec![uint(at.0), uint(seq), encode_ev(ev)])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "core",
            obj(vec![
                ("sessions", uint(core.sessions as u64)),
                ("latency_sum", bits(core.latency_sum)),
                ("latencies", bits_arr(&core.latencies)),
                ("worst_latency", bits(core.worst_latency.value())),
                ("worst_buffer", bits(core.worst_buffer.value())),
                ("active", uint(core.active as u64)),
                ("peak_active", uint(core.peak_active as u64)),
                ("delivered", bits(core.delivered)),
            ]),
        ),
        (
            "fold",
            obj(vec![
                ("sessions", uint(fold.sessions as u64)),
                ("latency_sum", bits(fold.latency_sum)),
                ("latencies", bits_arr(&fold.latencies)),
                ("worst_latency", bits(fold.worst_latency)),
                ("worst_buffer", bits(fold.worst_buffer)),
                ("total_received", bits(fold.total_received)),
                ("delivered", bits(fold.delivered)),
                ("max_streams", uint(fold.max_streams as u64)),
                ("stall_minutes", bits(fold.stall_minutes)),
                ("stalls", uint(fold.stalls as u64)),
                ("truncated_sessions", uint(fold.truncated_sessions as u64)),
            ]),
        ),
        (
            "scalars",
            serde::Value::Array(
                cp.scalars
                    .iter()
                    .map(|sc| {
                        serde::Value::Array(vec![
                            uint(sc.tick),
                            uint(sc.idx as u64),
                            uint(sc.end_tick),
                            bits(sc.latency),
                            bits(sc.peak_buffer),
                            bits(sc.total_received),
                            bits(sc.delivered),
                            uint(sc.max_streams as u64),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("snapshot", encode_snapshot(&cp.snapshot)),
    ]);
    let payload = serde_json::to_string(&payload_value).expect("value serialization is total");
    let mut out = format!(
        "{MAGIC} {VERSION} {:016x} {}\n",
        fnv1a64(payload.as_bytes()),
        payload.len()
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

// ---- decoding --------------------------------------------------------------

fn malformed<T>(what: impl Into<String>) -> Result<T, CheckpointError> {
    Err(CheckpointError::Malformed(what.into()))
}

fn want_obj<'a>(
    v: &'a serde::Value,
    what: &str,
) -> Result<&'a [(String, serde::Value)], CheckpointError> {
    v.as_object()
        .ok_or_else(|| CheckpointError::Malformed(format!("{what}: expected object")))
}

fn want_arr<'a>(v: &'a serde::Value, what: &str) -> Result<&'a [serde::Value], CheckpointError> {
    v.as_array()
        .ok_or_else(|| CheckpointError::Malformed(format!("{what}: expected array")))
}

fn want_u64(v: &serde::Value, what: &str) -> Result<u64, CheckpointError> {
    v.as_u64()
        .ok_or_else(|| CheckpointError::Malformed(format!("{what}: expected unsigned integer")))
}

fn want_usize(v: &serde::Value, what: &str) -> Result<usize, CheckpointError> {
    usize::try_from(want_u64(v, what)?)
        .map_err(|_| CheckpointError::Malformed(format!("{what}: out of range")))
}

/// Decode an `f64` stored as its bit pattern.
fn want_bits(v: &serde::Value, what: &str) -> Result<f64, CheckpointError> {
    Ok(f64::from_bits(want_u64(v, what)?))
}

fn want_bits_arr(v: &serde::Value, what: &str) -> Result<Vec<f64>, CheckpointError> {
    want_arr(v, what)?
        .iter()
        .map(|x| want_bits(x, what))
        .collect()
}

fn want_str<'a>(v: &'a serde::Value, what: &str) -> Result<&'a str, CheckpointError> {
    v.as_str()
        .ok_or_else(|| CheckpointError::Malformed(format!("{what}: expected string")))
}

fn decode_stats(v: &serde::Value) -> Result<EngineStats, CheckpointError> {
    let o = want_obj(v, "engine.stats")?;
    Ok(EngineStats {
        scheduled: want_u64(serde::field(o, "scheduled"), "stats.scheduled")?,
        fired: want_u64(serde::field(o, "fired"), "stats.fired")?,
        cancelled: want_u64(serde::field(o, "cancelled"), "stats.cancelled")?,
        peak_agenda: want_u64(serde::field(o, "peak_agenda"), "stats.peak_agenda")?,
        compactions: want_u64(serde::field(o, "compactions"), "stats.compactions")?,
        wheel: crate::agenda::WheelStats::default(),
    })
}

fn decode_snapshot(v: &serde::Value) -> Result<Snapshot, CheckpointError> {
    let mut families = Vec::new();
    for fv in want_arr(v, "snapshot")? {
        let fo = want_obj(fv, "snapshot family")?;
        let kind = match want_str(serde::field(fo, "kind"), "family.kind")? {
            "counter" => MetricKind::Counter,
            "gauge" => MetricKind::Gauge,
            "histogram" => MetricKind::Histogram,
            other => return malformed(format!("family.kind: unknown kind {other:?}")),
        };
        let mut series = Vec::new();
        for sv in want_arr(serde::field(fo, "series"), "family.series")? {
            let so = want_obj(sv, "series")?;
            let vo = want_obj(serde::field(so, "value"), "series.value")?;
            let value = match vo {
                [(k, v)] if k == "c" => MetricValue::Counter(want_u64(v, "counter")?),
                [(k, v)] if k == "g" => MetricValue::Gauge(want_bits(v, "gauge")?),
                [(k, v)] if k == "h" => {
                    let ho = want_obj(v, "histogram")?;
                    MetricValue::Histogram(HistogramValue {
                        bounds: want_bits_arr(serde::field(ho, "bounds"), "histogram.bounds")?,
                        counts: want_arr(serde::field(ho, "counts"), "histogram.counts")?
                            .iter()
                            .map(|c| want_u64(c, "histogram.counts"))
                            .collect::<Result<_, _>>()?,
                        count: want_u64(serde::field(ho, "count"), "histogram.count")?,
                        sum: want_bits(serde::field(ho, "sum"), "histogram.sum")?,
                    })
                }
                _ => return malformed("series.value: expected one of c/g/h"),
            };
            series.push(SeriesSnapshot {
                labels: want_str(serde::field(so, "labels"), "series.labels")?.to_string(),
                value,
            });
        }
        families.push(FamilySnapshot {
            name: want_str(serde::field(fo, "name"), "family.name")?.to_string(),
            kind,
            series,
        });
    }
    Ok(Snapshot { families })
}

/// Parse and verify the wire form produced by a checkpoint probe.
///
/// # Errors
/// Every way the bytes can be wrong maps to a distinct
/// [`CheckpointError`]; see the variant docs. A checkpoint that decodes
/// successfully is exactly the state that was frozen — the checksum
/// covers the entire payload.
pub fn decode_state(bytes: &[u8]) -> Result<CheckpointState, CheckpointError> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| CheckpointError::BadHeader("no header line".to_string()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| CheckpointError::BadHeader("header is not UTF-8".to_string()))?;
    let mut parts = header.split(' ');
    let (magic, version, checksum, len) = match (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) {
        (Some(m), Some(v), Some(c), Some(l), None) => (m, v, c, l),
        _ => {
            return Err(CheckpointError::BadHeader(format!(
                "expected 4 header fields, got {header:?}"
            )))
        }
    };
    if magic != MAGIC {
        return Err(CheckpointError::BadHeader(format!("bad magic {magic:?}")));
    }
    let version: u64 = version
        .parse()
        .map_err(|_| CheckpointError::BadHeader(format!("unparsable version {version:?}")))?;
    if version != VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let stored = u64::from_str_radix(checksum, 16)
        .map_err(|_| CheckpointError::BadHeader(format!("unparsable checksum {checksum:?}")))?;
    let stored_len: usize = len
        .parse()
        .map_err(|_| CheckpointError::BadHeader(format!("unparsable length {len:?}")))?;
    let payload = &bytes[nl + 1..];
    if payload.len() != stored_len {
        return Err(CheckpointError::LengthMismatch {
            stored: stored_len,
            actual: payload.len(),
        });
    }
    let computed = fnv1a64(payload);
    if computed != stored {
        return Err(CheckpointError::ChecksumMismatch { stored, computed });
    }
    let payload = std::str::from_utf8(payload)
        .map_err(|_| CheckpointError::Malformed("payload is not UTF-8".to_string()))?;
    let value: serde::Value = serde_json::from_str(payload)
        .map_err(|e| CheckpointError::Malformed(format!("payload does not parse: {e}")))?;
    let root = want_obj(&value, "checkpoint")?;

    let eo = want_obj(serde::field(root, "engine"), "engine")?;
    let mut entries = Vec::new();
    for ev in want_arr(serde::field(eo, "entries"), "engine.entries")? {
        let triple = want_arr(ev, "engine entry")?;
        let [at, seq, payload] = triple else {
            return malformed("engine entry: expected [at, seq, ev]");
        };
        let ev = if payload.is_null() {
            Ev::Finish
        } else {
            Ev::Arrive(want_usize(payload, "entry.ev")?)
        };
        entries.push((
            Ticks(want_u64(at, "entry.at")?),
            want_u64(seq, "entry.seq")?,
            ev,
        ));
    }
    let frozen = FrozenEngine {
        now: Ticks(want_u64(serde::field(eo, "now"), "engine.now")?),
        seq: want_u64(serde::field(eo, "seq"), "engine.seq")?,
        stats: decode_stats(serde::field(eo, "stats"))?,
        entries,
    };

    let co = want_obj(serde::field(root, "core"), "core")?;
    let core = CoreState {
        sessions: want_usize(serde::field(co, "sessions"), "core.sessions")?,
        latency_sum: want_bits(serde::field(co, "latency_sum"), "core.latency_sum")?,
        latencies: want_bits_arr(serde::field(co, "latencies"), "core.latencies")?,
        worst_latency: Minutes(want_bits(
            serde::field(co, "worst_latency"),
            "core.worst_latency",
        )?),
        worst_buffer: Mbits(want_bits(
            serde::field(co, "worst_buffer"),
            "core.worst_buffer",
        )?),
        active: want_usize(serde::field(co, "active"), "core.active")?,
        peak_active: want_usize(serde::field(co, "peak_active"), "core.peak_active")?,
        delivered: want_bits(serde::field(co, "delivered"), "core.delivered")?,
        // Checkpoints are only ever taken on the error-free path: a
        // policy error aborts the attempt before the next cadence point.
        error: None,
    };

    let fo = want_obj(serde::field(root, "fold"), "fold")?;
    let fold = FoldState {
        sessions: want_usize(serde::field(fo, "sessions"), "fold.sessions")?,
        latency_sum: want_bits(serde::field(fo, "latency_sum"), "fold.latency_sum")?,
        latencies: want_bits_arr(serde::field(fo, "latencies"), "fold.latencies")?,
        worst_latency: want_bits(serde::field(fo, "worst_latency"), "fold.worst_latency")?,
        worst_buffer: want_bits(serde::field(fo, "worst_buffer"), "fold.worst_buffer")?,
        total_received: want_bits(serde::field(fo, "total_received"), "fold.total_received")?,
        delivered: want_bits(serde::field(fo, "delivered"), "fold.delivered")?,
        max_streams: want_usize(serde::field(fo, "max_streams"), "fold.max_streams")?,
        stall_minutes: want_bits(serde::field(fo, "stall_minutes"), "fold.stall_minutes")?,
        stalls: want_usize(serde::field(fo, "stalls"), "fold.stalls")?,
        truncated_sessions: want_usize(
            serde::field(fo, "truncated_sessions"),
            "fold.truncated_sessions",
        )?,
    };

    let mut scalars = Vec::new();
    for sv in want_arr(serde::field(root, "scalars"), "scalars")? {
        let row = want_arr(sv, "scalar row")?;
        let [tick, idx, end_tick, latency, peak_buffer, total_received, delivered, max_streams] =
            row
        else {
            return malformed("scalar row: expected 8 entries");
        };
        scalars.push(SessionScalars {
            tick: want_u64(tick, "scalar.tick")?,
            idx: want_usize(idx, "scalar.idx")?,
            end_tick: want_u64(end_tick, "scalar.end_tick")?,
            latency: want_bits(latency, "scalar.latency")?,
            peak_buffer: want_bits(peak_buffer, "scalar.peak_buffer")?,
            total_received: want_bits(total_received, "scalar.total_received")?,
            delivered: want_bits(delivered, "scalar.delivered")?,
            max_streams: want_usize(max_streams, "scalar.max_streams")?,
        });
    }

    Ok(CheckpointState {
        frozen,
        core,
        fold,
        scalars,
        snapshot: decode_snapshot(serde::field(root, "snapshot"))?,
        sessions_done: want_u64(serde::field(root, "sessions_done"), "sessions_done")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_metrics::Registry;

    fn sample_state() -> CheckpointState {
        let mut eng: crate::engine::Engine<Ev> = crate::engine::Engine::new();
        eng.schedule_at(Ticks(3), Ev::Arrive(7));
        eng.schedule_at(Ticks(9), Ev::Finish);
        let _ = eng.next();
        let mut core = CoreState::new();
        core.sessions = 1;
        core.latency_sum = -0.0; // the printer-hostile cases
        core.latencies = vec![0.1 + 0.2, f64::MIN_POSITIVE];
        core.worst_latency = Minutes(1.5e-300);
        core.delivered = 119.999_999_999_999_99;
        let mut reg = Registry::new();
        reg.incr("n", &[("video", "3")], 2);
        reg.observe("lat", &[], 0.30000000000000004);
        reg.gauge_max("peak", &[], -0.0);
        let mut fold = crate::sink::StreamingFold::new();
        fold.fold_scalars(0.1, 2.0, 3.0, 4.0, 5);
        CheckpointState {
            frozen: eng.freeze(),
            core,
            fold: fold.freeze(),
            scalars: vec![SessionScalars {
                tick: 11,
                idx: 7,
                end_tick: 22,
                latency: 0.1,
                peak_buffer: -0.0,
                total_received: 3.5,
                delivered: 4.25,
                max_streams: 2,
            }],
            snapshot: reg.snapshot(),
            sessions_done: 1,
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let cp = sample_state();
        let bytes = encode_state(&cp);
        let back = decode_state(&bytes).unwrap();
        assert_eq!(back.sessions_done, 1);
        assert_eq!(back.frozen.now, cp.frozen.now);
        assert_eq!(back.frozen.seq, cp.frozen.seq);
        assert_eq!(back.frozen.stats, cp.frozen.stats);
        assert_eq!(back.frozen.entries, cp.frozen.entries);
        // Bit patterns, not just values: -0.0 and friends must survive.
        assert_eq!(
            back.core.latency_sum.to_bits(),
            cp.core.latency_sum.to_bits()
        );
        assert_eq!(back.core.latencies, cp.core.latencies);
        assert_eq!(
            back.core.worst_latency.value().to_bits(),
            cp.core.worst_latency.value().to_bits()
        );
        assert_eq!(back.fold, cp.fold);
        assert_eq!(back.snapshot, cp.snapshot);
        assert_eq!(
            back.scalars[0].peak_buffer.to_bits(),
            (-0.0f64).to_bits(),
            "negative zero must not collapse to +0"
        );
        // And a re-encode of the decoded state is byte-identical.
        assert_eq!(encode_state(&back), bytes);
    }

    #[test]
    fn every_corruption_is_rejected_with_the_right_error() {
        let bytes = encode_state(&sample_state());
        // Flip one payload byte → checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            decode_state(&flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // Truncate the payload → length.
        let truncated = &bytes[..bytes.len() - 3];
        assert!(matches!(
            decode_state(truncated),
            Err(CheckpointError::LengthMismatch { .. })
        ));
        // Damage the magic → header.
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            decode_state(&bad_magic),
            Err(CheckpointError::BadHeader(_))
        ));
        // Future version → unsupported.
        let mut future = bytes.clone();
        future[7] = b'9';
        assert_eq!(
            decode_state(&future).unwrap_err(),
            CheckpointError::UnsupportedVersion(9)
        );
        // No newline at all.
        assert!(matches!(
            decode_state(b"SBCKPT"),
            Err(CheckpointError::BadHeader(_))
        ));
        // Checksum-valid garbage payload → malformed, not a panic.
        let garbage = b"[1,2,3]";
        let mut forged =
            format!("SBCKPT 1 {:016x} {}\n", fnv1a64(garbage), garbage.len()).into_bytes();
        forged.extend_from_slice(garbage);
        assert!(matches!(
            decode_state(&forged),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn errors_display_their_diagnosis() {
        let e = CheckpointError::ChecksumMismatch {
            stored: 0xAB,
            computed: 0xCD,
        };
        let msg = e.to_string();
        assert!(msg.contains("checksum"), "{msg}");
        assert!(CheckpointError::UnsupportedVersion(9)
            .to_string()
            .contains("version 9"),);
        let k = ShardCrash::killed(500, 12, 2);
        assert!(k.to_string().contains("tick 500"), "{k}");
    }
}
