//! A deterministic scoped worker pool with attributable panics.
//!
//! The sharded simulation core and the `sb-analysis` experiment runner
//! share one parallelism primitive: map a function over a slice on `N`
//! scoped threads, reassemble results **by item index**, and — when a
//! worker panics — say *which item* failed instead of surfacing a bare
//! join error. Workers race through a shared atomic counter, so the
//! schedule is nondeterministic but the output (and any panic message)
//! is not: results are ordered by index, and when several items panic
//! the lowest index wins.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Render a caught panic payload for re-raising.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `items` on up to `threads` workers, preserving order.
///
/// * `threads == 0` means one worker per available core.
/// * With one worker (or fewer than two items) this is the plain serial
///   loop — the reference the parallel schedule must reproduce.
/// * `f` receives `(item index, &item)`; results come back in item
///   order whatever the interleaving, so callers are byte-identical for
///   every thread count.
///
/// # Panics
/// If `f` panics on any item, re-panics with a message naming `label`,
/// the failing item's index, and the original payload. When several
/// items fail, the *smallest* index is reported — deterministically,
/// independent of which worker hit its panic first.
pub fn parallel_map<T, U, F>(threads: usize, label: &str, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n = items.len();
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    let workers = threads.min(n);
    type Caught = Box<dyn std::any::Any + Send>;
    let run_one =
        |i: usize| -> Result<U, Caught> { catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) };
    let raise = |i: usize, payload: &Caught| -> ! {
        panic!(
            "{label}: worker panicked on item {i}/{n}: {}",
            payload_text(payload.as_ref())
        )
    };

    if workers <= 1 {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            match run_one(i) {
                Ok(u) => out.push(u),
                Err(p) => raise(i, &p),
            }
        }
        return out;
    }

    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, Result<U, Caught>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let r = run_one(i);
                        let failed = r.is_err();
                        local.push((i, r));
                        if failed {
                            // Other items keep running on their workers;
                            // this worker stops claiming new ones.
                            break;
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker died outside catch_unwind"))
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    if let Some((i, Err(p))) = indexed.iter().find(|(_, r)| r.is_err()) {
        raise(*i, p);
    }
    indexed
        .into_iter()
        .map(|(_, r)| r.unwrap_or_else(|_| unreachable!("errors raised above")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_preserved_for_every_worker_count() {
        let items: Vec<usize> = (0..97).collect();
        let serial = parallel_map(1, "square", &items, |_, &x| x * x);
        for threads in [2, 3, 8] {
            let par = parallel_map(threads, "square", &items, |_, &x| x * x);
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn index_argument_matches_position() {
        let items = ["a", "b", "c"];
        let got = parallel_map(2, "tag", &items, |i, s| format!("{i}:{s}"));
        assert_eq!(got, ["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn empty_and_zero_thread_inputs_are_fine() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(4, "none", &empty, |_, &b| b).is_empty());
        let one = [7u8];
        assert_eq!(parallel_map(0, "auto", &one, |_, &b| b + 1), [8]);
    }

    #[test]
    fn panic_names_label_and_lowest_failing_index() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 4] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                parallel_map(threads, "grid-stage", &items, |_, &x| {
                    assert!(x % 2 == 0 || x < 9, "odd cell {x} exploded");
                    x
                })
            }))
            .expect_err("a panic must propagate");
            let msg = payload_text(caught.as_ref());
            assert!(
                msg.contains("grid-stage") && msg.contains("item 9/64"),
                "panic must name the stage and the lowest failing index: {msg}"
            );
            assert!(msg.contains("odd cell 9 exploded"), "payload lost: {msg}");
        }
    }
}
