//! Fault injection: lost broadcasts and the stalls they cause.
//!
//! The paper assumes a lossless isochronous network. Real metropolitan
//! plants drop things, so the simulator can mark individual broadcast
//! *occurrences* as lost (seeded, reproducible — in the spirit of
//! smoltcp's `--drop-chance` examples). A client that planned to catch a
//! lost occurrence must fall back to the next surviving one; if that
//! arrives too late, playback **stalls** — the player pauses until the
//! segment's delivery catches up, pushing every later deadline back.
//!
//! The *decision* of which occurrences are lost is abstracted behind the
//! [`LossProcess`] trait so richer channel models plug in without touching
//! the repair logic: [`LossModel`] here is the i.i.d. Bernoulli process,
//! and `sb-resilience` adds a Gilbert–Elliott burst-loss process plus
//! scripted channel outages. Every implementation must be a **pure
//! function of `(channel, occurrence)`** — deterministic and
//! order-independent — so every client in a run sees the same losses and
//! parallel replays stay byte-identical.
//!
//! [`apply_losses`] rewrites a [`SessionTrace`] — from *any*
//! [`crate::trace::ClientModel`]: tune-at-start, PPB pausing,
//! Harmonic record-all — under a loss process and returns the stalls
//! incurred. Tests assert the two invariants that make fault behaviour
//! trustworthy: zero loss ⇒ identical trace and no stalls; any loss ⇒ the
//! repaired trace is still starvation-free *after* accounting for the
//! reported stalls.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::error::{Result, SchemeError};
use sb_core::plan::ChannelPlan;

use crate::trace::SessionTrace;

/// Decides which broadcast occurrences are lost.
///
/// An occurrence is identified by `(channel, occurrence index)` where the
/// index counts cycle repetitions of the channel since the epoch. The
/// decision must be a **pure function** of that pair (given the process's
/// own configuration): deterministic, and independent of the order in
/// which occurrences are queried. That contract is what keeps fault
/// replays reproducible and thread-count-independent.
pub trait LossProcess {
    /// `true` if occurrence `occ` on `channel` is lost.
    fn is_lost(&self, channel: usize, occ: u64) -> bool;
}

/// The i.i.d. Bernoulli loss process: every occurrence is lost
/// independently with one fixed probability.
///
/// Construct with [`LossModel::new`] (which validates the probability
/// once) or [`LossModel::lossless`]. The fields are private so an
/// invalid probability can never reach the per-occurrence hot path —
/// the old panicking check inside `is_lost` is gone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Probability in `[0, 1]` that any given occurrence is lost.
    drop_probability: f64,
    /// RNG seed for reproducibility.
    seed: u64,
}

impl LossModel {
    /// A Bernoulli loss process dropping each occurrence with
    /// `drop_probability`.
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] unless
    /// `drop_probability ∈ [0, 1]` (and finite).
    pub fn new(drop_probability: f64, seed: u64) -> Result<Self> {
        if !(0.0..=1.0).contains(&drop_probability) {
            return Err(SchemeError::InvalidConfig {
                what: "loss drop probability must be within [0, 1]",
            });
        }
        Ok(Self {
            drop_probability,
            seed,
        })
    }

    /// A lossless model.
    #[must_use]
    pub fn lossless() -> Self {
        Self {
            drop_probability: 0.0,
            seed: 0,
        }
    }

    /// The per-occurrence drop probability (validated at construction).
    #[must_use]
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// The RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` if occurrence `occ` on `channel` is lost (inherent mirror
    /// of the [`LossProcess`] impl, kept for call sites without the trait
    /// in scope).
    #[must_use]
    pub fn is_lost(&self, channel: usize, occ: u64) -> bool {
        debug_assert!(
            (0.0..=1.0).contains(&self.drop_probability),
            "construction validates the probability"
        );
        if self.drop_probability <= 0.0 {
            return false;
        }
        if self.drop_probability >= 1.0 {
            return true;
        }
        // Derive a per-occurrence stream: deterministic, order-independent.
        let mut rng = SmallRng::seed_from_u64(
            self.seed
                ^ (channel as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ occ.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        rng.gen::<f64>() < self.drop_probability
    }
}

impl LossProcess for LossModel {
    fn is_lost(&self, channel: usize, occ: u64) -> bool {
        LossModel::is_lost(self, channel, occ)
    }
}

/// One playback stall caused by losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stall {
    /// Segment whose lateness caused the stall.
    pub segment: usize,
    /// Index (within the trace) of the reception that slipped too far.
    pub reception: usize,
    /// How long the player froze.
    pub duration: Minutes,
}

/// The outcome of replaying a session under losses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    /// The repaired trace (later receptions, shifted playback).
    pub trace: SessionTrace,
    /// Stalls in playback (deadline) order.
    pub stalls: Vec<Stall>,
    /// Receptions the repair **gave up** on: [`MAX_RETRIES`] consecutive
    /// occurrences were lost, so the reported stall for that reception is
    /// the give-up bound, not a real recovery. Empty on any realistic
    /// loss rate; non-empty means the channel was effectively dead.
    pub truncated: Vec<usize>,
}

impl StallReport {
    /// Total frozen time.
    #[must_use]
    pub fn total_stall(&self) -> Minutes {
        Minutes(self.stalls.iter().map(|s| s.duration.value()).sum())
    }

    /// `true` when the repair gave up on at least one reception (its
    /// stall is a truncation bound, not a recovery).
    #[must_use]
    pub fn is_truncated(&self) -> bool {
        !self.truncated.is_empty()
    }
}

/// Consecutive lost occurrences of one reception after which the repair
/// gives up: the reception is reported in [`StallReport::truncated`] and
/// its (giant) slip still surfaces as an explicit [`Stall`].
pub const MAX_RETRIES: u64 = 1_000;

/// Which occurrence index of `channel`'s cycle contains the reception
/// starting at `start` into content offset `offset_minutes` (minutes of
/// cycle time past the broadcast beginning)? A mid-broadcast reception —
/// a PPB chunk, the tail half of an HB recording — starts
/// `offset_minutes` after its occurrence's cycle start, so subtracting it
/// recovers the occurrence for every client model uniformly.
#[must_use]
pub fn occurrence_index(
    plan: &ChannelPlan,
    channel: usize,
    start: Minutes,
    offset_minutes: f64,
) -> u64 {
    let ch = &plan.channels[channel];
    let period = ch.period().value();
    (((start.value() - offset_minutes - ch.phase.value()) / period) + 0.5)
        .floor()
        .max(0.0) as u64
}

/// Indices of the trace's receptions in playback-deadline order of their
/// first byte — the order stalls propagate in.
#[must_use]
pub fn deadline_order(trace: &SessionTrace) -> Vec<usize> {
    let b = trace.display_rate.value() * 60.0;
    let mut order: Vec<usize> = (0..trace.receptions.len()).collect();
    order.sort_by(|&i, &j| {
        let key = |k: usize| {
            let r = &trace.receptions[k];
            trace.playback_start_of(r.segment).value() + r.content_offset.value() / b
        };
        key(i).partial_cmp(&key(j)).expect("finite deadlines")
    });
    order
}

/// Replay `trace` under `losses`: every reception whose occurrence is
/// lost slips whole cycle periods to the next surviving occurrence on the
/// same channel, and playback stalls whenever a reception thereby misses
/// its (shifted) deadline.
///
/// Gives up after [`MAX_RETRIES`] consecutive lost occurrences of one
/// reception: the reception keeps its maximally-slipped start (so the
/// final giant stall is explicit in the report) **and** is listed in
/// [`StallReport::truncated`].
#[must_use]
pub fn apply_losses<L: LossProcess + ?Sized>(
    plan: &ChannelPlan,
    trace: &SessionTrace,
    losses: &L,
) -> StallReport {
    let mut out = trace.clone();
    let mut stalls = Vec::new();
    let mut truncated = Vec::new();
    // Accumulated playback shift from stalls so far.
    let mut shift = 0.0f64;

    for i in deadline_order(trace) {
        let rec = out.receptions[i];
        let ch = &plan.channels[rec.channel];
        let period = ch.period().value();
        let offset_minutes = rec.content_offset.value() / (rec.rate.value() * 60.0);
        let mut occ = occurrence_index(plan, rec.channel, rec.start, offset_minutes);
        let mut start = rec.start.value();
        let mut retries = 0;
        while losses.is_lost(rec.channel, occ) && retries < MAX_RETRIES {
            occ += 1;
            start += period;
            retries += 1;
        }
        if retries >= MAX_RETRIES {
            truncated.push(i);
        }
        out.receptions[i].start = Minutes(start);

        // The deadline this reception must meet, in the *shifted* timeline.
        let required = trace.required_start(i).value() + shift;
        if start > required + 1e-9 {
            let pause = start - required;
            shift += pause;
            stalls.push(Stall {
                segment: rec.segment,
                reception: i,
                duration: Minutes(pause),
            });
        }
    }
    // Stalls delay playback of later content; the SessionTrace type models
    // unstalled playback, so jitter checks on the repaired trace must add
    // the stall shifts — see `jitter_free_with_stalls`.
    StallReport {
        trace: out,
        stalls,
        truncated,
    }
}

/// Starvation check for a repaired trace: every reception start must be
/// within tolerance of its deadline *after* crediting the stalls that
/// precede it (in deadline order, including its own).
#[must_use]
pub fn jitter_free_with_stalls(report: &StallReport, tol: f64) -> bool {
    let mut shift = 0.0f64;
    let mut stall_iter = report.stalls.iter().peekable();
    for i in deadline_order(&report.trace) {
        // Stalls are recorded in the same deadline order, so crediting
        // them as their reception comes up replays `apply_losses` exactly.
        while let Some(s) = stall_iter.peek() {
            if s.reception == i {
                shift += s.duration.value();
                stall_iter.next();
            } else {
                break;
            }
        }
        let required = report.trace.required_start(i).value() + shift;
        if report.trace.receptions[i].start.value() > required + tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schedule_client, ClientPolicy};
    use crate::trace::{ClientModel, PausingClient, RecordingClient};
    use sb_core::config::SystemConfig;
    use sb_core::plan::VideoId;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use vod_units::Mbps;

    fn sb_setup() -> (SystemConfig, sb_core::plan::ChannelPlan) {
        let cfg = SystemConfig::paper_defaults(Mbps(150.0));
        let plan = Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap();
        (cfg, plan)
    }

    #[test]
    fn lossless_is_identity() {
        let (cfg, plan) = sb_setup();
        let s = schedule_client(
            &plan,
            VideoId(0),
            Minutes(3.3),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        let r = apply_losses(&plan, &s, &LossModel::lossless());
        assert_eq!(r.trace, s);
        assert!(r.stalls.is_empty());
        assert!(r.truncated.is_empty());
        assert!(jitter_free_with_stalls(&r, 1e-9));
    }

    #[test]
    fn losses_cause_bounded_stalls_and_remain_consistent() {
        let (cfg, plan) = sb_setup();
        let s = schedule_client(
            &plan,
            VideoId(0),
            Minutes(3.3),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        let mut any_stall = false;
        for seed in 0..20 {
            let model = LossModel::new(0.3, seed).unwrap();
            let r = apply_losses(&plan, &s, &model);
            assert!(jitter_free_with_stalls(&r, 1e-6), "seed {seed}");
            assert!(!r.is_truncated(), "30% loss must never exhaust retries");
            // Receptions only ever slip later, never earlier.
            for (orig, repaired) in s.receptions.iter().zip(&r.trace.receptions) {
                assert!(repaired.start >= orig.start);
            }
            any_stall |= !r.stalls.is_empty();
        }
        assert!(any_stall, "30% loss over 20 seeds must stall at least once");
    }

    #[test]
    fn pausing_and_recording_traces_survive_losses() {
        // The same loss pipeline accepts every client model: a PPB
        // max-saving session (mid-broadcast chunks) and an HB record-all
        // session (wrap-around receptions) both repair consistently.
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        let ppb = sb_pyramid::PermutationPyramid::b().plan(&cfg).unwrap();
        let ppb_trace = PausingClient
            .session(&ppb, VideoId(0), Minutes(3.7), cfg.display_rate)
            .unwrap();

        let hb_cfg = SystemConfig::paper_defaults(Mbps(60.0));
        let hb_scheme = sb_pyramid::HarmonicBroadcasting::delayed();
        let hb = hb_scheme.plan(&hb_cfg).unwrap();
        let slot = hb_scheme.slot(&hb_cfg).unwrap();
        let hb_trace = RecordingClient {
            playback_delay: slot,
        }
        .session(&hb, VideoId(0), Minutes(2.1), hb_cfg.display_rate)
        .unwrap();

        for (plan, trace) in [(&ppb, &ppb_trace), (&hb, &hb_trace)] {
            for seed in 0..10 {
                let model = LossModel::new(0.25, seed).unwrap();
                let r = apply_losses(plan, trace, &model);
                assert!(jitter_free_with_stalls(&r, 1e-6), "seed {seed}");
                for (orig, repaired) in trace.receptions.iter().zip(&r.trace.receptions) {
                    assert!(repaired.start >= orig.start);
                }
            }
        }
    }

    #[test]
    fn loss_model_is_deterministic() {
        let m = LossModel::new(0.5, 7).unwrap();
        for ch in 0..5 {
            for occ in 0..50 {
                assert_eq!(m.is_lost(ch, occ), m.is_lost(ch, occ));
            }
        }
        // …and certain probabilities behave as advertised.
        assert!(!LossModel::lossless().is_lost(3, 14));
        let always = LossModel::new(1.0, 0).unwrap();
        assert!(always.is_lost(0, 0));
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let m = LossModel::new(0.25, 42).unwrap();
        let lost = (0..4000).filter(|&o| m.is_lost(1, o)).count();
        let rate = lost as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed {rate}");
    }

    #[test]
    fn invalid_probability_is_a_construction_error() {
        // Validation happens once, at construction — not in the hot loop.
        assert!(LossModel::new(1.5, 0).is_err());
        assert!(LossModel::new(-0.1, 0).is_err());
        assert!(LossModel::new(f64::NAN, 0).is_err());
        assert!(LossModel::new(0.0, 0).is_ok());
        assert!(LossModel::new(1.0, 0).is_ok());
    }

    #[test]
    fn certain_loss_truncates_with_an_explicit_giant_stall() {
        let (cfg, plan) = sb_setup();
        let s = schedule_client(
            &plan,
            VideoId(0),
            Minutes(3.3),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        let r = apply_losses(&plan, &s, &LossModel::new(1.0, 0).unwrap());
        // Every reception exhausts its retries…
        assert_eq!(r.truncated.len(), s.receptions.len());
        assert!(r.is_truncated());
        // …and the give-up is an explicit giant stall, not a silent slip:
        // the first reception alone slips MAX_RETRIES whole periods.
        let shortest_period = plan
            .channels
            .iter()
            .map(|c| c.period().value())
            .fold(f64::INFINITY, f64::min);
        assert!(!r.stalls.is_empty());
        assert!(
            r.total_stall().value() >= MAX_RETRIES as f64 * shortest_period,
            "total stall {} must expose the truncation bound",
            r.total_stall()
        );
        // The explicit-stall accounting still balances.
        assert!(jitter_free_with_stalls(&r, 1e-6));
    }
}
