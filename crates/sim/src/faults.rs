//! Fault injection: lost broadcasts and the stalls they cause.
//!
//! The paper assumes a lossless isochronous network. Real metropolitan
//! plants drop things, so the simulator can mark individual broadcast
//! *occurrences* as lost (seeded, reproducible — in the spirit of
//! smoltcp's `--drop-chance` examples). A client that planned to catch a
//! lost occurrence must fall back to the next surviving one; if that
//! arrives too late, playback **stalls** — the player pauses until the
//! segment's delivery catches up, pushing every later deadline back.
//!
//! [`apply_losses`] rewrites a [`ClientSchedule`] under a [`LossModel`]
//! and returns the stalls incurred. Tests assert the two invariants that
//! make fault behaviour trustworthy: zero loss ⇒ identical schedule and no
//! stalls; any loss ⇒ the repaired schedule is still starvation-free
//! *after* accounting for the reported stalls.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::plan::ChannelPlan;

use crate::schedule::ClientSchedule;

/// Decides which broadcast occurrences are lost.
///
/// An occurrence is identified by `(channel, occurrence index)` where the
/// index counts cycle repetitions of the channel since the epoch. The
/// decision is a pure function of the seed, so every client in a run sees
/// the same losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossModel {
    /// Probability in `[0, 1]` that any given occurrence is lost.
    pub drop_probability: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl LossModel {
    /// A lossless model.
    #[must_use]
    pub fn lossless() -> Self {
        Self {
            drop_probability: 0.0,
            seed: 0,
        }
    }

    /// `true` if occurrence `occ` on `channel` is lost.
    ///
    /// # Panics
    /// Panics if `drop_probability` is outside `[0, 1]`.
    #[must_use]
    pub fn is_lost(&self, channel: usize, occ: u64) -> bool {
        assert!(
            (0.0..=1.0).contains(&self.drop_probability),
            "drop probability must be in [0, 1]"
        );
        if self.drop_probability <= 0.0 {
            return false;
        }
        if self.drop_probability >= 1.0 {
            return true;
        }
        // Derive a per-occurrence stream: deterministic, order-independent.
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ (channel as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ occ.wrapping_mul(0xD1B5_4A32_D192_ED03),
        );
        rng.gen::<f64>() < self.drop_probability
    }
}

/// One playback stall caused by losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stall {
    /// Segment whose lateness caused the stall.
    pub segment: usize,
    /// How long the player froze.
    pub duration: Minutes,
}

/// The outcome of replaying a schedule under losses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallReport {
    /// The repaired schedule (later receptions, shifted playback).
    pub schedule: ClientSchedule,
    /// Stalls in playback order.
    pub stalls: Vec<Stall>,
}

impl StallReport {
    /// Total frozen time.
    #[must_use]
    pub fn total_stall(&self) -> Minutes {
        Minutes(self.stalls.iter().map(|s| s.duration.value()).sum())
    }
}

/// Which occurrence index of `channel`'s cycle contains the broadcast
/// starting at `start`?
fn occurrence_index(plan: &ChannelPlan, channel: usize, start: Minutes) -> u64 {
    let ch = &plan.channels[channel];
    let period = ch.period().value();
    (((start.value() - ch.phase.value()) / period) + 0.5).floor().max(0.0) as u64
}

/// Replay `schedule` under `losses`: every reception whose occurrence is
/// lost slips to the next surviving occurrence on the same channel, and
/// playback stalls whenever a segment thereby misses its (shifted)
/// deadline.
///
/// Gives up (still reports, with a final giant stall) after
/// `MAX_RETRIES` consecutive lost occurrences of one segment.
#[must_use]
pub fn apply_losses(
    plan: &ChannelPlan,
    schedule: &ClientSchedule,
    losses: &LossModel,
) -> StallReport {
    const MAX_RETRIES: u64 = 1_000;
    let mut out = schedule.clone();
    let mut stalls = Vec::new();
    // Accumulated playback shift from stalls so far.
    let mut shift = 0.0f64;

    for i in 0..out.downloads.len() {
        let d = out.downloads[i];
        let ch = &plan.channels[d.channel];
        let period = ch.period().value();
        let mut occ = occurrence_index(plan, d.channel, d.start);
        let mut start = d.start.value();
        let mut retries = 0;
        while losses.is_lost(d.channel, occ) && retries < MAX_RETRIES {
            occ += 1;
            start += period;
            retries += 1;
        }
        out.downloads[i].start = Minutes(start);

        // The deadline this segment must meet, in the *shifted* timeline.
        let required = schedule.required_start(i, d.rate).value() + shift;
        if start > required + 1e-9 {
            let pause = start - required;
            shift += pause;
            stalls.push(Stall {
                segment: i,
                duration: Minutes(pause),
            });
        }
    }
    // Apply the accumulated shift… stalls delay playback of later
    // segments. We fold the total shift into playback_start of the
    // repaired schedule only when the very first segment slipped; per-
    // segment shifts are captured in the stall list (the ClientSchedule
    // type models unstalled playback, so jitter checks on the repaired
    // schedule must add the stall shifts — see `jitter_free_with_stalls`).
    StallReport {
        schedule: out,
        stalls,
    }
}

/// Starvation check for a repaired schedule: every reception start must be
/// within tolerance of its deadline *after* crediting the stalls that
/// precede it.
#[must_use]
pub fn jitter_free_with_stalls(report: &StallReport, tol: f64) -> bool {
    let mut shift = 0.0f64;
    let mut stall_iter = report.stalls.iter().peekable();
    for (i, d) in report.schedule.downloads.iter().enumerate() {
        while let Some(s) = stall_iter.peek() {
            if s.segment <= i {
                shift += s.duration.value();
                stall_iter.next();
            } else {
                break;
            }
        }
        let required = report.schedule.required_start(i, d.rate).value() + shift;
        if d.start.value() > required + tol {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schedule_client, ClientPolicy};
    use sb_core::config::SystemConfig;
    use sb_core::plan::VideoId;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use vod_units::Mbps;

    fn sb_setup() -> (SystemConfig, sb_core::plan::ChannelPlan) {
        let cfg = SystemConfig::paper_defaults(Mbps(150.0));
        let plan = Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap();
        (cfg, plan)
    }

    #[test]
    fn lossless_is_identity() {
        let (cfg, plan) = sb_setup();
        let s = schedule_client(
            &plan,
            VideoId(0),
            Minutes(3.3),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        let r = apply_losses(&plan, &s, &LossModel::lossless());
        assert_eq!(r.schedule, s);
        assert!(r.stalls.is_empty());
        assert!(jitter_free_with_stalls(&r, 1e-9));
    }

    #[test]
    fn losses_cause_bounded_stalls_and_remain_consistent() {
        let (cfg, plan) = sb_setup();
        let s = schedule_client(
            &plan,
            VideoId(0),
            Minutes(3.3),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        let mut any_stall = false;
        for seed in 0..20 {
            let model = LossModel {
                drop_probability: 0.3,
                seed,
            };
            let r = apply_losses(&plan, &s, &model);
            assert!(jitter_free_with_stalls(&r, 1e-6), "seed {seed}");
            // Receptions only ever slip later, never earlier.
            for (orig, repaired) in s.downloads.iter().zip(&r.schedule.downloads) {
                assert!(repaired.start >= orig.start);
            }
            any_stall |= !r.stalls.is_empty();
        }
        assert!(any_stall, "30% loss over 20 seeds must stall at least once");
    }

    #[test]
    fn loss_model_is_deterministic() {
        let m = LossModel {
            drop_probability: 0.5,
            seed: 7,
        };
        for ch in 0..5 {
            for occ in 0..50 {
                assert_eq!(m.is_lost(ch, occ), m.is_lost(ch, occ));
            }
        }
        // …and certain probabilities behave as advertised.
        assert!(!LossModel::lossless().is_lost(3, 14));
        let always = LossModel {
            drop_probability: 1.0,
            seed: 0,
        };
        assert!(always.is_lost(0, 0));
    }

    #[test]
    fn drop_rate_is_roughly_honoured() {
        let m = LossModel {
            drop_probability: 0.25,
            seed: 42,
        };
        let lost = (0..4000).filter(|&o| m.is_lost(1, o)).count();
        let rate = lost as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "observed {rate}");
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_panics() {
        let m = LossModel {
            drop_probability: 1.5,
            seed: 0,
        };
        let _ = m.is_lost(0, 0);
    }
}
