//! The one-stop public run surface.
//!
//! Everything needed to configure and execute a system run — the
//! [`RunConfig`] builder, its outcome, the agenda/partition selectors,
//! trace sinks, and the distributed-tier types — re-exported from a
//! single place so downstream crates write
//! `use sb_sim::prelude::*;` instead of chasing module paths:
//!
//! ```
//! use sb_sim::prelude::*;
//! use sb_sim::policy::ClientPolicy;
//! use sb_core::prelude::*;
//! use sb_core::plan::VideoId;
//!
//! let cfg = SystemConfig::paper_defaults(Mbps(120.0));
//! let plan = Skyscraper::with_width(Width::capped(52).unwrap())
//!     .plan(&cfg)
//!     .unwrap();
//! let reqs = vec![Request { at: Minutes(3.0), video: VideoId(0) }];
//! let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
//! let out = sim
//!     .execute(RunConfig::new(&reqs).shards(1).agenda(AgendaKind::Heap))
//!     .unwrap();
//! assert_eq!(out.fold.sessions, 1);
//! ```
//!
//! The resilience layer's supervised-run types (`PartialRun`,
//! `Recovered`) live in `sb-resilience`, which depends on this crate;
//! the facade crate's `skyscraper_broadcasting::prelude` re-exports
//! both surfaces together.

pub use crate::agenda::{Agenda, AgendaKind, HeapAgenda, WheelAgenda};
pub use crate::distribution::{
    route_catalog, DistributionConfig, RouteOutcome, SegmentWindow, SessionRecord,
};
pub use crate::engine::EngineStats;
pub use crate::run::{ConfigError, RunConfig, RunOutcome, RunParts};
pub use crate::shard::{merge_shard_runs, plan_shards, shard_of, ShardSlice};
pub use crate::sink::{CollectTraces, NullSink, SessionSummary, StreamingFold, TraceSink};
pub use crate::system::{Request, SystemReport, SystemSim};
pub use crate::trace::{ClientModel, SessionTrace};
