//! The distributed metro tier: cross-server routing and peer-assisted
//! delivery accounting over simulated Skyscraper sessions.
//!
//! The broadcast simulator answers *when* every session receives every
//! segment; this module answers *who pays for the bytes* once the metro
//! is split into server shards under a
//! [`Placement`]. It is a pure
//! accounting pass over [`SessionRecord`]s — compact per-session
//! reception schedules lifted from [`SessionTrace`]s — so the same
//! simulated metro can be priced under every placement × peer-assist
//! combination without re-running the engine, and the result is a pure
//! function of the record list (byte-identical however the records were
//! produced).
//!
//! ## The cost model
//!
//! * **Standing broadcast.** Every server continuously broadcasts the
//!   Skyscraper channels of every title it hosts (head segments only
//!   when peer assist is on). Per-title channel rates are read off the
//!   observed receptions, so only titles the workload actually touches
//!   contribute cost — the accounting is horizon-scoped.
//! * **Local hit.** A session whose home server hosts its title tunes
//!   into the home broadcast for free (the standing cost already paid
//!   for it).
//! * **Remote fetch.** Otherwise the nearest ring host relays the
//!   broadcast over the directed metro backbone link `host → home`.
//!   Links have per-link capacity ([`DistributionConfig::backbone_mbps`],
//!   checked at minute granularity); identical broadcast windows of the
//!   same title share one relay (multicast-aware), and a session that
//!   cannot fit is **rejected** whole — no partial admissions.
//! * **Peer assist.** With [`DistributionConfig::peer_assist`] on,
//!   servers broadcast only the segments below
//!   [`DistributionConfig::tail_from`]; trailing segments come from an
//!   earlier same-region session that already holds them and has spare
//!   uplink (per-region budget, minute-bucketed), falling back to a
//!   metered server unicast (plus backbone when remote) when no peer
//!   qualifies.
//!
//! Every reception window of every admitted session is delivered by
//! exactly one of {standing broadcast, server unicast fallback, peer},
//! which is the conservation invariant
//! [`RouteOutcome::conservation_holds`] checks and the determinism
//! suite pins.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use sb_workload::placement::Placement;

use crate::trace::SessionTrace;

/// How many peer candidates a trailing window scans (newest first)
/// before giving up and falling back to the server. A bound keeps the
/// accounting pass linear-ish in busy (region, title) pairs; it is part
/// of the model, so it is a named constant rather than a config knob.
pub const PEER_SCAN_LIMIT: usize = 64;

/// One reception window: the session receives `segment` during
/// `[start, end)` minutes at `rate` Mb/s (`mbits` total).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentWindow {
    /// Segment index within the title.
    pub segment: usize,
    /// Window start, minutes.
    pub start: f64,
    /// Window end, minutes.
    pub end: f64,
    /// Channel rate, Mb/s.
    pub rate: f64,
    /// Bytes moved, Mbit.
    pub mbits: f64,
}

/// A session reduced to what the distribution tier needs: who asked for
/// what, from where, and the exact reception schedule the broadcast
/// plan gave it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionRecord {
    /// Arrival time, minutes.
    pub arrival: f64,
    /// Global title id.
    pub title: usize,
    /// Requesting region.
    pub region: usize,
    /// Reception windows in segment order.
    pub windows: Vec<SegmentWindow>,
}

impl SessionRecord {
    /// Lift a simulated [`SessionTrace`] into a record for `title`
    /// requested from `region`.
    #[must_use]
    pub fn from_trace(trace: &SessionTrace, title: usize, region: usize) -> Self {
        Self {
            arrival: trace.arrival.0,
            title,
            region,
            windows: trace
                .receptions
                .iter()
                .map(|r| SegmentWindow {
                    segment: r.segment,
                    start: r.start.0,
                    end: r.end().0,
                    rate: r.rate.0,
                    mbits: r.size.0,
                })
                .collect(),
        }
    }
}

/// Knobs of the distribution cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionConfig {
    /// Capacity of each directed backbone link, Mb/s.
    pub backbone_mbps: f64,
    /// Whether clients with spare uplink serve trailing segments.
    pub peer_assist: bool,
    /// First trailing segment index: with peer assist on, servers
    /// broadcast only segments `< tail_from`.
    pub tail_from: usize,
    /// Per-region peer uplink budget, Mb/s (typically a fraction of the
    /// region's access-class downlink). Empty disables peer serving
    /// even when `peer_assist` is set.
    pub peer_uplink_mbps: Vec<f64>,
}

impl DistributionConfig {
    /// A broadcast-only model (no peer assist) with the given per-link
    /// backbone capacity.
    #[must_use]
    pub fn broadcast_only(backbone_mbps: f64) -> Self {
        Self {
            backbone_mbps,
            peer_assist: false,
            tail_from: usize::MAX,
            peer_uplink_mbps: Vec::new(),
        }
    }
}

/// What one placement × peer-assist combination costs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteOutcome {
    /// Sessions offered.
    pub sessions: usize,
    /// Sessions admitted (served completely).
    pub admitted: usize,
    /// Sessions rejected by backbone capacity.
    pub rejected: usize,
    /// Admitted sessions served by their home server.
    pub local_hits: usize,
    /// Admitted sessions that needed a remote host.
    pub remote_fetches: usize,
    /// Reception windows consumed by admitted sessions.
    pub consumed_windows: u64,
    /// Windows delivered by a standing broadcast (home or relayed).
    pub broadcast_windows: u64,
    /// Windows delivered by server unicast fallback.
    pub fallback_windows: u64,
    /// Windows delivered by peers.
    pub peer_windows: u64,
    /// Remote broadcast windows that shared an existing relay for free.
    pub shared_relay_windows: u64,
    /// Standing broadcast cost over all servers, Mb/s.
    pub broadcast_mbps: f64,
    /// Per-server standing broadcast, Mb/s.
    pub per_server_broadcast_mbps: Vec<f64>,
    /// Peak concurrent server unicast fallback (max over servers), Mb/s.
    pub fallback_peak_mbps: f64,
    /// Total fallback bytes, Mbit.
    pub fallback_mbit: f64,
    /// Peak load on the busiest backbone link, Mb/s.
    pub backbone_peak_mbps: f64,
    /// Total backbone bytes, Mbit.
    pub backbone_mbit: f64,
    /// Total peer-served bytes, Mbit.
    pub peer_mbit: f64,
    /// Σ over observed titles of the full broadcast rate, Mb/s — the
    /// single-server broadcast cost, so `servers × sum_full_mbps` is
    /// the naive fully-replicated metro.
    pub sum_full_mbps: f64,
    /// The source-once lower bound, Mb/s: with clients uploading, the
    /// servers must inject each observed title at least once at its
    /// display rate (the Viennot et al. scaling regime).
    pub bound_mbps: f64,
}

impl RouteOutcome {
    /// Total server bandwidth: standing broadcast plus peak fallback.
    #[must_use]
    pub fn server_mbps(&self) -> f64 {
        self.broadcast_mbps + self.fallback_peak_mbps
    }

    /// Server bandwidth plus peak backbone — the metro footprint.
    #[must_use]
    pub fn footprint_mbps(&self) -> f64 {
        self.server_mbps() + self.backbone_peak_mbps
    }

    /// Windows served by servers (broadcast + unicast fallback).
    #[must_use]
    pub fn server_windows(&self) -> u64 {
        self.broadcast_windows + self.fallback_windows
    }

    /// The conservation invariant: every consumed window was delivered
    /// by exactly one of broadcast, fallback, or a peer.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.server_windows() + self.peer_windows == self.consumed_windows
    }
}

/// Minute-bucketed load track: a window `[start, end)` at `rate`
/// occupies every minute bucket it overlaps at the full rate (a
/// concurrent-streams capacity model, not an average).
#[derive(Debug, Clone, Default)]
struct LoadTrack {
    buckets: Vec<f64>,
}

fn bucket_span(start: f64, end: f64) -> std::ops::Range<usize> {
    let lo = start.max(0.0).floor() as usize;
    let hi = (end.max(0.0).ceil() as usize).max(lo + 1);
    lo..hi
}

impl LoadTrack {
    fn grow(&mut self, upto: usize) {
        if self.buckets.len() < upto {
            self.buckets.resize(upto, 0.0);
        }
    }

    /// Would adding `rate` over `[start, end)` (plus `pending` deltas
    /// from the same session) stay within `cap` everywhere?
    fn fits(
        &self,
        start: f64,
        end: f64,
        rate: f64,
        cap: f64,
        pending: &BTreeMap<usize, f64>,
    ) -> bool {
        bucket_span(start, end).all(|b| {
            let held = self.buckets.get(b).copied().unwrap_or(0.0);
            let planned = pending.get(&b).copied().unwrap_or(0.0);
            held + planned + rate <= cap + 1e-9
        })
    }

    fn plan(start: f64, end: f64, rate: f64, pending: &mut BTreeMap<usize, f64>) {
        for b in bucket_span(start, end) {
            *pending.entry(b).or_insert(0.0) += rate;
        }
    }

    fn commit(&mut self, pending: &BTreeMap<usize, f64>) {
        if let Some((&last, _)) = pending.iter().next_back() {
            self.grow(last + 1);
        }
        for (&b, &r) in pending {
            self.buckets[b] += r;
        }
    }

    fn peak(&self) -> f64 {
        self.buckets.iter().fold(0.0f64, |a, &b| a.max(b))
    }
}

/// A planned delivery for one window of the session under admission.
enum PlannedDelivery {
    /// Free: covered by the home server's standing broadcast.
    HomeBroadcast,
    /// Relayed broadcast over the backbone; `shared` marks a ride on an
    /// already-established relay of the same window.
    RelayedBroadcast { shared: bool },
    /// Server unicast fallback (trailing segment, no peer found).
    Fallback { remote: bool },
    /// Served by an admitted peer session out of its uplink budget (the
    /// peer's charge is planned in `peer_pending`, keyed by its index).
    Peer,
}

/// Price `records` under `placement` and `cfg`.
///
/// Records must be in the deterministic merged engine order (arrival
/// order); the pass processes them one session at a time, planning all
/// of a session's deliveries before committing any, so a rejected
/// session leaves no residue. The result is a pure function of
/// `(cfg, placement, records)`.
#[must_use]
pub fn route_catalog(
    cfg: &DistributionConfig,
    placement: &Placement,
    records: &[SessionRecord],
) -> RouteOutcome {
    // Per-title per-segment channel rates, learned from observations.
    let mut title_rates: BTreeMap<usize, BTreeMap<usize, f64>> = BTreeMap::new();
    for rec in records {
        let seen = title_rates.entry(rec.title).or_default();
        for w in &rec.windows {
            let r = seen.entry(w.segment).or_insert(w.rate);
            if w.rate > *r {
                *r = w.rate;
            }
        }
    }
    let head_rate = |segs: &BTreeMap<usize, f64>| -> f64 {
        segs.iter()
            .filter(|(&s, _)| s < cfg.tail_from)
            .map(|(_, &r)| r)
            .sum()
    };
    let full_rate = |segs: &BTreeMap<usize, f64>| -> f64 { segs.values().sum() };

    // Standing broadcast: every hosted, observed title on every host;
    // head-only when peers carry the tail.
    let mut per_server_broadcast = vec![0.0f64; placement.servers];
    let mut sum_full = 0.0f64;
    let mut bound = 0.0f64;
    for (&title, segs) in &title_rates {
        let standing = if cfg.peer_assist {
            head_rate(segs)
        } else {
            full_rate(segs)
        };
        for &s in placement.hosts(title) {
            per_server_broadcast[s] += standing;
        }
        sum_full += full_rate(segs);
        // Display rate proxy: the first channel's rate (Skyscraper
        // channels all run at the display rate).
        bound += segs.values().next().copied().unwrap_or(0.0);
    }

    // Mutable admission state.
    let mut links: BTreeMap<(usize, usize), LoadTrack> = BTreeMap::new();
    let mut fallback: Vec<LoadTrack> = vec![LoadTrack::default(); placement.servers];
    let mut shared_relays: BTreeSet<(usize, usize, usize, usize, u64)> = BTreeSet::new();
    let mut uplinks: HashMap<usize, LoadTrack> = HashMap::new();
    // Admitted sessions per (region, title), in admission order.
    let mut admitted_by_group: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();

    let mut out = RouteOutcome {
        sessions: records.len(),
        admitted: 0,
        rejected: 0,
        local_hits: 0,
        remote_fetches: 0,
        consumed_windows: 0,
        broadcast_windows: 0,
        fallback_windows: 0,
        peer_windows: 0,
        shared_relay_windows: 0,
        broadcast_mbps: per_server_broadcast.iter().sum(),
        per_server_broadcast_mbps: per_server_broadcast,
        fallback_peak_mbps: 0.0,
        fallback_mbit: 0.0,
        backbone_peak_mbps: 0.0,
        backbone_mbit: 0.0,
        peer_mbit: 0.0,
        sum_full_mbps: sum_full,
        bound_mbps: bound,
    };

    for (idx, rec) in records.iter().enumerate() {
        let home = placement.home_of(rec.region);
        let src = placement.route(rec.region, rec.title);
        let remote = src != home;
        let link = (src, home);
        let uplink_cap = cfg.peer_uplink_mbps.get(rec.region).copied().unwrap_or(0.0);

        // Plan the whole session before touching shared state.
        let mut plan: Vec<PlannedDelivery> = Vec::with_capacity(rec.windows.len());
        let mut link_pending: BTreeMap<usize, f64> = BTreeMap::new();
        let mut shares_pending: BTreeSet<(usize, usize, usize, usize, u64)> = BTreeSet::new();
        let mut peer_pending: BTreeMap<usize, BTreeMap<usize, f64>> = BTreeMap::new();
        let mut feasible = true;

        let group = admitted_by_group
            .get(&(rec.region, rec.title))
            .map(Vec::as_slice)
            .unwrap_or(&[]);

        for w in &rec.windows {
            let via_broadcast = !cfg.peer_assist || w.segment < cfg.tail_from;
            if via_broadcast {
                if !remote {
                    plan.push(PlannedDelivery::HomeBroadcast);
                    continue;
                }
                let key = (src, home, rec.title, w.segment, w.start.to_bits());
                if shared_relays.contains(&key) || shares_pending.contains(&key) {
                    plan.push(PlannedDelivery::RelayedBroadcast { shared: true });
                    continue;
                }
                let track = links.entry(link).or_default();
                if !track.fits(w.start, w.end, w.rate, cfg.backbone_mbps, &link_pending) {
                    feasible = false;
                    break;
                }
                LoadTrack::plan(w.start, w.end, w.rate, &mut link_pending);
                shares_pending.insert(key);
                plan.push(PlannedDelivery::RelayedBroadcast { shared: false });
                continue;
            }

            // Trailing segment: try peers, newest admitted first.
            let mut chosen: Option<usize> = None;
            if uplink_cap > 0.0 {
                for &j in group.iter().rev().take(PEER_SCAN_LIMIT) {
                    let holds = records[j]
                        .windows
                        .iter()
                        .any(|pw| pw.segment == w.segment && pw.end <= w.start);
                    if !holds {
                        continue;
                    }
                    let empty = BTreeMap::new();
                    let mine = peer_pending.get(&j).unwrap_or(&empty);
                    let track = uplinks.entry(j).or_default();
                    if track.fits(w.start, w.end, w.rate, uplink_cap, mine) {
                        chosen = Some(j);
                        break;
                    }
                }
            }
            match chosen {
                Some(j) => {
                    LoadTrack::plan(w.start, w.end, w.rate, peer_pending.entry(j).or_default());
                    plan.push(PlannedDelivery::Peer);
                }
                None => {
                    if remote {
                        let track = links.entry(link).or_default();
                        if !track.fits(w.start, w.end, w.rate, cfg.backbone_mbps, &link_pending) {
                            feasible = false;
                            break;
                        }
                        LoadTrack::plan(w.start, w.end, w.rate, &mut link_pending);
                    }
                    plan.push(PlannedDelivery::Fallback { remote });
                }
            }
        }

        if !feasible {
            out.rejected += 1;
            continue;
        }

        // Commit.
        out.admitted += 1;
        if remote {
            out.remote_fetches += 1;
        } else {
            out.local_hits += 1;
        }
        if !link_pending.is_empty() {
            links.entry(link).or_default().commit(&link_pending);
        }
        shared_relays.extend(shares_pending);
        for (j, pending) in &peer_pending {
            uplinks.entry(*j).or_default().commit(pending);
        }
        let mut fb_pending: BTreeMap<usize, f64> = BTreeMap::new();
        for (w, d) in rec.windows.iter().zip(&plan) {
            out.consumed_windows += 1;
            match d {
                PlannedDelivery::HomeBroadcast => out.broadcast_windows += 1,
                PlannedDelivery::RelayedBroadcast { shared } => {
                    out.broadcast_windows += 1;
                    if *shared {
                        out.shared_relay_windows += 1;
                    } else {
                        out.backbone_mbit += w.mbits;
                    }
                }
                PlannedDelivery::Fallback { remote } => {
                    out.fallback_windows += 1;
                    out.fallback_mbit += w.mbits;
                    if *remote {
                        out.backbone_mbit += w.mbits;
                    }
                    LoadTrack::plan(w.start, w.end, w.rate, &mut fb_pending);
                }
                PlannedDelivery::Peer => {
                    out.peer_windows += 1;
                    out.peer_mbit += w.mbits;
                }
            }
        }
        if !fb_pending.is_empty() {
            fallback[src].commit(&fb_pending);
        }
        admitted_by_group
            .entry((rec.region, rec.title))
            .or_default()
            .push(idx);
    }

    out.fallback_peak_mbps = fallback.iter().map(LoadTrack::peak).fold(0.0f64, f64::max);
    out.backbone_peak_mbps = links.values().map(LoadTrack::peak).fold(0.0f64, f64::max);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_workload::placement::{Placement, PlacementPolicy};
    use sb_workload::scenario::{MetroScenario, ScenarioPreset};

    fn urban() -> MetroScenario {
        MetroScenario::generate(&ScenarioPreset::Urban.config(7))
    }

    /// Two windows per session: a head segment then a trailing one.
    fn rec(arrival: f64, title: usize, region: usize) -> SessionRecord {
        SessionRecord {
            arrival,
            title,
            region,
            windows: vec![
                SegmentWindow {
                    segment: 0,
                    start: arrival,
                    end: arrival + 1.0,
                    rate: 1.5,
                    mbits: 90.0,
                },
                SegmentWindow {
                    segment: 2,
                    start: arrival + 2.0,
                    end: arrival + 4.0,
                    rate: 1.5,
                    mbits: 180.0,
                },
            ],
        }
    }

    #[test]
    fn full_replication_is_all_local_and_broadcast_only() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::FullReplication, &m, 4);
        let cfg = DistributionConfig::broadcast_only(10.0);
        let records: Vec<_> = (0..8)
            .map(|i| rec(i as f64, i % m.titles(), i % 4))
            .collect();
        let out = route_catalog(&cfg, &p, &records);
        assert_eq!(out.admitted, 8);
        assert_eq!(out.local_hits, 8);
        assert_eq!(out.remote_fetches, 0);
        assert_eq!(out.backbone_mbit, 0.0);
        assert!(out.conservation_holds());
        assert_eq!(out.peer_windows, 0);
        // 4 servers × every observed title: the naive corner.
        assert!((out.broadcast_mbps - 4.0 * out.sum_full_mbps).abs() < 1e-9);
    }

    #[test]
    fn partitioned_remote_fetches_share_relays_and_respect_capacity() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::Partitioned, &m, 4);
        // Hot title 0 is owned by region 0; requests from region 1 are
        // remote. Two sessions tuning the *same* broadcast window share
        // one relay.
        let cfg = DistributionConfig::broadcast_only(10.0);
        let a = rec(0.0, 0, 1);
        let b = rec(0.0, 0, 1); // identical windows → full sharing
        let out = route_catalog(&cfg, &p, &[a, b]);
        assert_eq!(out.admitted, 2);
        assert_eq!(out.remote_fetches, 2);
        assert_eq!(
            out.shared_relay_windows, 2,
            "second session rides both relays"
        );
        assert!(out.conservation_holds());

        // A 1 Mb/s link cannot carry the 1.5 Mb/s relay: rejected.
        let tight = DistributionConfig::broadcast_only(1.0);
        let out = route_catalog(&tight, &p, &[rec(0.0, 0, 1)]);
        assert_eq!(out.admitted, 0);
        assert_eq!(out.rejected, 1);
        assert_eq!(out.consumed_windows, 0, "rejected sessions consume nothing");
    }

    #[test]
    fn peer_assist_serves_trailing_segments_and_conserves_bandwidth() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::HotHead, &m, 4);
        let cfg = DistributionConfig {
            backbone_mbps: 100.0,
            peer_assist: true,
            tail_from: 2,
            peer_uplink_mbps: vec![50.0; m.regions.len()],
        };
        // Session 0 gets segment 2 via fallback (no peers yet); session
        // 1 arrives 10 minutes later, after session 0's window ended,
        // so a peer serves it.
        let records = vec![rec(0.0, 0, 1), rec(10.0, 0, 1)];
        let out = route_catalog(&cfg, &p, &records);
        assert_eq!(out.admitted, 2);
        assert_eq!(out.fallback_windows, 1);
        assert_eq!(out.peer_windows, 1);
        assert_eq!(out.broadcast_windows, 2);
        assert!(out.conservation_holds());
        assert!(out.peer_mbit > 0.0);
        // Head-only standing broadcast is cheaper than the full one.
        let full = route_catalog(&DistributionConfig::broadcast_only(100.0), &p, &records);
        assert!(out.broadcast_mbps < full.broadcast_mbps);
    }

    #[test]
    fn zero_uplink_disables_peers() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::HotHead, &m, 4);
        let cfg = DistributionConfig {
            backbone_mbps: 100.0,
            peer_assist: true,
            tail_from: 2,
            peer_uplink_mbps: vec![0.0; m.regions.len()],
        };
        let out = route_catalog(&cfg, &p, &[rec(0.0, 0, 1), rec(10.0, 0, 1)]);
        assert_eq!(out.peer_windows, 0);
        assert_eq!(out.fallback_windows, 2);
        assert!(out.conservation_holds());
    }

    #[test]
    fn route_catalog_is_deterministic() {
        let m = urban();
        let p = Placement::build(PlacementPolicy::PopularityProportional, &m, 4);
        let cfg = DistributionConfig {
            backbone_mbps: 6.0,
            peer_assist: true,
            tail_from: 1,
            peer_uplink_mbps: vec![3.0; m.regions.len()],
        };
        let records: Vec<_> = (0..40)
            .map(|i| rec(i as f64 * 0.7, i % m.titles(), i % 4))
            .collect();
        let a = route_catalog(&cfg, &p, &records);
        let b = route_catalog(&cfg, &p, &records);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        assert!(a.conservation_holds());
    }
}
