//! The *receive-all* client of Harmonic Broadcasting — and the famous
//! correctness bug it exposes.
//!
//! An HB client cannot tune at broadcast beginnings: slot `i`'s channel
//! repeats every `i` slot-times, so waiting for a fresh start of every
//! channel would take forever. Instead the client records **every channel
//! from the moment it tunes in**, catching each mid-broadcast and keeping
//! the wrap-around pieces: byte `y` of slot `i` becomes available the
//! first time channel `i` transmits it after tune-in.
//!
//! Juhn & Tseng's original analysis assumed playback could start with the
//! next slot-1 broadcast. Pâris, Carter & Long showed that is wrong:
//! depending on the tune-in phase, bytes of later slots caught mid-cycle
//! arrive *after* their playback deadline. [`record_all`] computes the
//! exact per-byte availability, so [`RecordingSchedule::worst_shortfall`]
//! measures the bug, and the tests demonstrate both the starvation of the
//! original rule and the correctness of the delayed-playback fix across
//! arrival phases.

use serde::{Deserialize, Serialize};
use vod_units::{MBytes, Mbits, Mbps, Minutes};

use sb_core::plan::{BroadcastItem, ChannelPlan, PlanIndex, VideoId};

use crate::policy::PolicyError;
use crate::trace::{Reception, SessionTrace};

/// Reception of one segment by the recording client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// The segment.
    pub segment: usize,
    /// The plan channel carrying it.
    pub channel: usize,
    /// Channel rate.
    pub rate: Mbps,
    /// Segment size.
    pub size: Mbits,
    /// Channel cycle period, minutes.
    pub period: Minutes,
    /// Phase of the channel cycle at tune-in: how far into its cycle the
    /// channel is when recording starts, in minutes.
    pub phase_at_tune_in: Minutes,
}

impl Recording {
    /// When byte `y` (Mbits from the segment start) becomes available,
    /// in minutes after tune-in.
    #[must_use]
    pub fn available_after(&self, y: f64) -> f64 {
        let tau = y / (self.rate.value() * 60.0); // cycle-time of byte y
        let lag = tau - self.phase_at_tune_in.value();
        if lag >= 0.0 {
            lag
        } else {
            lag + self.period.value()
        }
    }
}

/// The complete receive-all session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordingSchedule {
    /// Arrival time of the request.
    pub arrival: Minutes,
    /// When recording (tune-in) begins.
    pub tune_in: Minutes,
    /// When playback begins (`tune_in` + the variant's delay).
    pub playback_start: Minutes,
    /// Display rate.
    pub display_rate: Mbps,
    /// Per-segment recordings, in playback order.
    pub recordings: Vec<Recording>,
}

impl RecordingSchedule {
    /// The session as a scheme-agnostic [`SessionTrace`]. A recording
    /// caught mid-cycle wraps: the tail of the segment (content past the
    /// tune-in phase `y*`) arrives first, then the head `[0, y*)` on the
    /// cycle's next pass — so each recording becomes up to two contiguous
    /// [`Reception`]s. All buffer and jitter accounting lives on the
    /// trace; its per-reception lateness check reproduces exactly the
    /// piecewise evaluation the Pâris–Carter–Long analysis calls for.
    #[must_use]
    pub fn trace(&self) -> SessionTrace {
        let mut receptions = Vec::with_capacity(self.recordings.len() * 2);
        for r in &self.recordings {
            let phase = r.phase_at_tune_in.value();
            let y_star = (phase * r.rate.value() * 60.0).clamp(0.0, r.size.value());
            let tail = r.size.value() - y_star;
            if tail > 0.0 {
                // Content [y*, size) arrives over [tune_in, tune_in + (T − phase)).
                receptions.push(Reception {
                    segment: r.segment,
                    channel: r.channel,
                    start: self.tune_in,
                    duration: Minutes(tail / (r.rate.value() * 60.0)),
                    rate: r.rate,
                    content_offset: Mbits(y_star),
                    size: Mbits(tail),
                });
            }
            if y_star > 0.0 {
                // Content [0, y*) arrives once the cycle wraps back around.
                receptions.push(Reception {
                    segment: r.segment,
                    channel: r.channel,
                    start: Minutes(self.tune_in.value() + r.period.value() - phase),
                    duration: Minutes(phase),
                    rate: r.rate,
                    content_offset: Mbits(0.0),
                    size: Mbits(y_star),
                });
            }
        }
        SessionTrace {
            arrival: self.arrival,
            playback_start: self.playback_start,
            display_rate: self.display_rate,
            segment_sizes: self.recordings.iter().map(|r| r.size).collect(),
            receptions,
        }
    }

    /// The worst lateness over every byte of every segment: how long after
    /// its playback deadline the most-delayed byte arrives (negative =
    /// everything on time). This is the §HB bug, quantified in minutes.
    #[must_use]
    pub fn worst_shortfall(&self) -> f64 {
        self.trace().worst_lateness()
    }

    /// `true` when no byte misses its deadline (within `tol` minutes).
    #[must_use]
    pub fn is_jitter_free(&self, tol: f64) -> bool {
        self.worst_shortfall() <= tol
    }

    /// Aggregate reception rate while all channels are still recording —
    /// the client I/O burden HB trades its bandwidth savings for.
    #[must_use]
    pub fn total_receive_rate(&self) -> Mbps {
        Mbps(self.recordings.iter().map(|r| r.rate.value()).sum())
    }

    /// Peak buffer: recorded-so-far minus consumed-so-far, maximized over
    /// the breakpoints (each channel stops after one full period; playback
    /// is linear).
    #[must_use]
    pub fn peak_buffer(&self) -> Mbits {
        self.trace().peak_buffer()
    }

    /// Peak buffer in Figure-8 units.
    #[must_use]
    pub fn peak_buffer_mbytes(&self) -> MBytes {
        self.peak_buffer().to_mbytes()
    }
}

/// Build the receive-all session: tune in at the next broadcast start of
/// segment 0 after `arrival`, record every channel from that moment, and
/// begin playback `playback_delay` later.
///
/// Every segment must be carried by exactly one single-item channel (true
/// for HB plans; SB/FB plans should use the tune-at-start policies
/// instead).
pub fn record_all(
    plan: &ChannelPlan,
    video: VideoId,
    arrival: Minutes,
    display_rate: Mbps,
    playback_delay: Minutes,
) -> Result<RecordingSchedule, PolicyError> {
    record_all_indexed(&plan.index(), video, arrival, display_rate, playback_delay)
}

/// [`record_all`] against a prebuilt carrier index — bit-identical
/// output; use when scheduling many sessions against one plan.
pub fn record_all_indexed(
    index: &PlanIndex<'_>,
    video: VideoId,
    arrival: Minutes,
    display_rate: Mbps,
    playback_delay: Minutes,
) -> Result<RecordingSchedule, PolicyError> {
    let plan = index.plan();
    let sizes = plan
        .segment_sizes
        .get(video.0)
        .ok_or(PolicyError::UnknownVideo(video))?
        .clone();
    let first = BroadcastItem { video, segment: 0 };
    let tune_in = index
        .carriers(first)
        .iter()
        .map(|occ| index.next_start(occ, arrival))
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        .ok_or(PolicyError::MissingSegment(0))?;

    let mut recordings = Vec::with_capacity(sizes.len());
    for (segment, &size) in sizes.iter().enumerate() {
        let item = BroadcastItem { video, segment };
        let occ = index
            .carriers(item)
            .first()
            .ok_or(PolicyError::MissingSegment(segment))?;
        let ch = index.channel(occ);
        let period = index.period(occ);
        let phase = (tune_in.value() - ch.phase.value()).rem_euclid(period.value());
        recordings.push(Recording {
            segment,
            channel: ch.id,
            rate: ch.rate,
            size,
            period,
            phase_at_tune_in: Minutes(phase),
        });
    }
    Ok(RecordingSchedule {
        arrival,
        tune_in,
        playback_start: Minutes(tune_in.value() + playback_delay.value()),
        display_rate,
        recordings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_pyramid::HarmonicBroadcasting;

    fn setup() -> (SystemConfig, sb_core::plan::ChannelPlan, Minutes) {
        // B = 60 → N = 30 slots of 4 minutes.
        let cfg = SystemConfig::paper_defaults(Mbps(60.0));
        let scheme = HarmonicBroadcasting::original();
        let plan = scheme.plan(&cfg).unwrap();
        let slot = scheme.slot(&cfg).unwrap();
        (cfg, plan, slot)
    }

    #[test]
    fn original_hb_starves_at_some_phases() {
        // The Pâris–Carter–Long result: with playback starting at the next
        // slot-1 broadcast (zero delay), some tune-in phases leave bytes
        // arriving after their deadlines.
        let (cfg, plan, slot) = setup();
        let mut worst = f64::NEG_INFINITY;
        let mut starving_phases = 0;
        for i in 0..60 {
            let arrival = Minutes(slot.value() * i as f64 / 60.0 * 7.0);
            let s = record_all(&plan, VideoId(0), arrival, cfg.display_rate, Minutes(0.0)).unwrap();
            let short = s.worst_shortfall();
            worst = worst.max(short);
            if short > 1e-6 {
                starving_phases += 1;
            }
        }
        assert!(
            starving_phases > 0,
            "original HB must starve somewhere; worst shortfall {worst:.4} min"
        );
        // The classical bound: the shortfall never exceeds one slot time.
        assert!(
            worst <= slot.value() + 1e-6,
            "shortfall {worst} vs slot {slot}"
        );
    }

    #[test]
    fn delayed_hb_is_jitter_free_everywhere() {
        let (cfg, plan, slot) = setup();
        for i in 0..120 {
            let arrival = Minutes(slot.value() * i as f64 / 120.0 * 13.0);
            let s = record_all(&plan, VideoId(0), arrival, cfg.display_rate, slot).unwrap();
            assert!(
                s.is_jitter_free(1e-6),
                "arrival {arrival}: shortfall {}",
                s.worst_shortfall()
            );
        }
    }

    #[test]
    fn hb_buffer_around_forty_percent() {
        // The classic HB storage figure: a bit under 40 % of the video.
        let (cfg, plan, slot) = setup();
        let video = cfg.video_size().value();
        let mut worst = 0.0f64;
        for i in 0..40 {
            let arrival = Minutes(slot.value() * i as f64 / 40.0 * 5.0);
            let s = record_all(&plan, VideoId(0), arrival, cfg.display_rate, slot).unwrap();
            worst = worst.max(s.peak_buffer().value());
        }
        let frac = worst / video;
        assert!(
            (0.25..=0.45).contains(&frac),
            "HB buffer fraction {frac:.3}"
        );
    }

    #[test]
    fn receive_rate_is_harmonic() {
        let (cfg, plan, _) = setup();
        let s = record_all(
            &plan,
            VideoId(0),
            Minutes(1.0),
            cfg.display_rate,
            Minutes(0.0),
        )
        .unwrap();
        let h30 = sb_pyramid::harmonic::harmonic(30);
        assert!((s.total_receive_rate().value() - 1.5 * h30).abs() < 1e-9);
    }

    #[test]
    fn aqhb_is_jitter_free_at_every_phase_without_hb_luck() {
        // AQHB's quasi-harmonic rates outpace b/i on every channel, so —
        // unlike original HB — a one-slot playback delay is jitter-free
        // at *every* tune-in phase, by construction rather than by phase.
        let cfg = SystemConfig::paper_defaults(vod_units::Mbps(60.0));
        let scheme = sb_pyramid::AdaptiveQuasiHarmonic;
        let plan = scheme.plan(&cfg).unwrap();
        let slot = scheme.slot(&cfg).unwrap();
        for i in 0..96 {
            let arrival = Minutes(slot.value() * i as f64 / 96.0 * 13.0);
            let s = record_all(&plan, VideoId(0), arrival, cfg.display_rate, slot).unwrap();
            assert!(
                s.is_jitter_free(1e-6),
                "arrival {arrival}: shortfall {}",
                s.worst_shortfall()
            );
            // Every channel retires within one slot of its segment's
            // playback start: period_i < i·d.
            for (idx, r) in s.recordings.iter().enumerate() {
                assert!(
                    r.period.value() < (idx + 1) as f64 * slot.value() + 1e-9,
                    "segment {idx} period {}",
                    r.period
                );
            }
        }
    }

    #[test]
    fn aqhb_peak_buffer_equals_analytic_at_every_phase() {
        // The receive-everything buffer profile depends only on time since
        // tune-in (each channel contributes rate·min(t, period) regardless
        // of its phase), so the simulated peak *equals* the analytic one.
        let cfg = SystemConfig::paper_defaults(vod_units::Mbps(60.0));
        let scheme = sb_pyramid::AdaptiveQuasiHarmonic;
        let plan = scheme.plan(&cfg).unwrap();
        let slot = scheme.slot(&cfg).unwrap();
        let analytic = scheme.peak_buffer(&cfg).unwrap().value();
        for i in 0..48 {
            let arrival = Minutes(slot.value() * i as f64 / 48.0 * 9.0);
            let s = record_all(&plan, VideoId(0), arrival, cfg.display_rate, slot).unwrap();
            let peak = s.peak_buffer().value();
            assert!(
                (peak - analytic).abs() < 1e-6 * analytic,
                "arrival {arrival}: peak {peak} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn latency_is_bounded_by_slot_plus_delay() {
        let (cfg, plan, slot) = setup();
        for i in 0..50 {
            let arrival = Minutes(0.37 * i as f64);
            let s = record_all(&plan, VideoId(0), arrival, cfg.display_rate, slot).unwrap();
            let latency = s.playback_start.value() - arrival.value();
            assert!(latency <= 2.0 * slot.value() + 1e-9, "latency {latency}");
        }
    }
}
