//! Sharded scale-out execution: partition one metropolitan system
//! across `S` server shards, byte-identically.
//!
//! The paper sizes Skyscraper Broadcasting for a single server; the
//! scalable-VoD line of work in `PAPERS.md` partitions the catalog
//! across many. This module is that partitioned regime for every
//! executor behind [`RunConfig`]: the catalog (and with it the arrival
//! stream) is split by a seeded, stable hash of the video id, each
//! shard runs its own engine + [`StreamingFold`] + metrics registry on
//! the deterministic scoped pool, and the per-shard results are merged
//! **in a canonical order** so that the outcome is bitwise identical
//! for any shard count and any thread count.
//!
//! The determinism argument, in three parts (pinned by the
//! `shard_invariance` proptest and `scripts/verify.sh`):
//!
//! 1. **Partition is a function of (video, seed) only.** A video's
//!    shard never depends on the request stream, the thread schedule,
//!    or the shard count of a previous run. Because every broadcast
//!    channel in this workspace carries exactly one video, each metric
//!    series (`…{video}`, `…{channel}`) lives on exactly one shard.
//! 2. **Per-shard runs replay a subsequence of the global engine
//!    order.** The engine pops by `(tick, schedule-seq)` and arrivals
//!    are scheduled in slice order, so two requests on the same shard
//!    fire in the same relative order as in the unsharded run.
//! 3. **Merge = ordered replay.** Each shard captures one
//!    `SessionScalars` per session — the exact floats the fold and
//!    report consume, keyed by `(arrival tick, global request index)`.
//!    A k-way merge over those keys reconstructs the global engine
//!    order; replaying the scalars through [`StreamingFold::fold_scalars`]
//!    and the report accumulators repeats the identical floating-point
//!    operations in the identical order as `shards(1)`. Snapshots merge
//!    in shard order (sums of disjoint series plus integer counters),
//!    and the one global quantity a shard cannot see — peak
//!    simultaneously-active sessions — is recomputed exactly from the
//!    merged `(arrival, end)` intervals and patched in last (gauges
//!    merge by `max`, and the global peak dominates every shard's).

use sb_metrics::{OpLog, Recorder, Registry, Snapshot, TeeRecorder};
use vod_units::{Mbits, Minutes};

use crate::agenda::{AgendaKind, MinQueue};
use crate::engine::EngineStats;
use crate::policy::PolicyError;
use crate::pool::parallel_map;
use crate::run::{RunConfig, RunOutcome};
use crate::sink::{CollectTraces, NullSink, StreamingFold, TeeSink, TraceSink};
use crate::system::{Request, SystemReport, SystemSim};
use crate::trace::SessionTrace;

/// The shard owning `key` (a video id) under `seed`, for `shards`
/// servers: a full-avalanche splitmix64 finalizer, so consecutive video
/// ids spread evenly and the assignment is stable across runs,
/// platforms and request streams.
///
/// # Panics
/// Panics if `shards` is zero.
#[must_use]
pub fn shard_of(key: u64, seed: u64, shards: usize) -> usize {
    assert!(shards > 0, "no zero-shard systems");
    let mut x = key ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// Per-session scalars captured inside a shard: everything the fold and
/// the report read from a trace, plus the `(tick, idx)` merge key and
/// the session's end tick for the global peak-active sweep. ~64 bytes
/// of transient state per session — the sharded analogue of the
/// streaming path's ~8 bytes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SessionScalars {
    /// Arrival tick (engine time the session fired).
    pub tick: u64,
    /// Request index. Local to the shard slice inside `run_core`;
    /// rewritten to the global index before merging.
    pub idx: usize,
    /// Tick at which playback ends (the `Finish` event's time).
    pub end_tick: u64,
    /// Startup latency, minutes.
    pub latency: f64,
    /// Peak client buffer, Mbits.
    pub peak_buffer: f64,
    /// Total payload received, Mbits.
    pub total_received: f64,
    /// Playback minutes delivered.
    pub delivered: f64,
    /// Peak concurrent receptions within the session.
    pub max_streams: usize,
}

/// One shard's slice of the request stream: the requests it owns, in
/// global arrival order, plus each request's index in the global slice
/// (the merge key that lets the ordered replay reconstruct the
/// unsharded engine order).
#[derive(Debug, Clone)]
pub struct ShardSlice {
    requests: Vec<Request>,
    global_idx: Vec<usize>,
}

impl ShardSlice {
    /// The shard's requests, in global arrival order.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// For each request, its index in the run's global request slice.
    #[must_use]
    pub(crate) fn global_idx(&self) -> &[usize] {
        &self.global_idx
    }

    /// Number of requests on this shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the shard owns no requests.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// Partition `requests` into per-shard slices — the single partition
/// function behind both `execute` and the crash-recovery supervisor, so
/// a supervised run splits the stream byte-identically to a plain one.
///
/// The scenario `partition` table wins when it covers the video (a
/// region's catalog slice stays on the region's shard, wrapped into
/// range by `% shards`); anything beyond the table — and every run
/// without one — takes the seeded [`shard_of`] hash. Either way the
/// shard is a pure function of `(video, seed)`, which is leg one of the
/// module's determinism argument.
///
/// # Panics
/// Panics if `shards` is zero.
#[must_use]
pub fn plan_shards(
    requests: &[Request],
    shards: usize,
    seed: u64,
    partition: Option<&[usize]>,
) -> Vec<ShardSlice> {
    assert!(shards > 0, "no zero-shard systems");
    let mut slices = vec![
        ShardSlice {
            requests: Vec::new(),
            global_idx: Vec::new(),
        };
        shards
    ];
    for (i, r) in requests.iter().enumerate() {
        let s = match partition.and_then(|map| map.get(r.video.0)) {
            Some(&owner) => owner % shards,
            None => shard_of(r.video.0 as u64, seed, shards),
        };
        slices[s].requests.push(*r);
        slices[s].global_idx.push(i);
    }
    slices
}

/// One shard's raw results, pre-merge.
struct ShardOut {
    scalars: Vec<SessionScalars>,
    snapshot: Snapshot,
    stats: EngineStats,
    ops: Option<OpLog>,
    traces: Option<Vec<SessionTrace>>,
    err: Option<PolicyError>,
}

/// Attribute a merge inconsistency to its shard and run label.
fn merge_err(shard: usize, label: &str, what: impl Into<String>) -> PolicyError {
    PolicyError::ShardMerge {
        shard,
        label: label.to_string(),
        what: what.into(),
    }
}

/// The canonical ordered-replay merge: a k-way merge of per-shard scalar
/// streams by `(arrival tick, global index)`, replaying the identical
/// floating-point statements `run_core` executes per session. Returns
/// the recomputed global report plus the replayed fold. `on_session` is
/// called once per merged session (stream position, cursor) *before* its
/// scalars are folded — the executor feeds user sinks through it.
///
/// Inconsistent streams surface as [`PolicyError::ShardMerge`] carrying
/// the shard index and `label`, never as a panic mid-merge.
fn replay_merge(
    streams: &[(usize, &[SessionScalars])],
    label: &str,
    mut on_session: impl FnMut(usize, usize) -> Result<(), PolicyError>,
) -> Result<(SystemReport, StreamingFold), PolicyError> {
    let mut fold = StreamingFold::new();
    let mut sessions = 0usize;
    let mut latency_sum = 0.0f64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut worst_latency = Minutes(0.0);
    let mut worst_buffer = Mbits::ZERO;
    let mut delivered = 0.0f64;
    let mut peak_active = 0usize;
    let mut ends: MinQueue<u64> = MinQueue::new();
    let mut cursors = vec![0usize; streams.len()];
    loop {
        let mut best: Option<(u64, usize, usize)> = None;
        for (pos, (_, scalars)) in streams.iter().enumerate() {
            if let Some(sc) = scalars.get(cursors[pos]) {
                let key = (sc.tick, sc.idx, pos);
                if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                    best = Some(key);
                }
            }
        }
        let Some((tick, idx, pos)) = best else { break };
        let (shard, scalars) = streams[pos];
        let Some(&sc) = scalars.get(cursors[pos]) else {
            return Err(merge_err(
                shard,
                label,
                format!("scalar stream ended under cursor {}", cursors[pos]),
            ));
        };
        debug_assert_eq!((sc.tick, sc.idx), (tick, idx));
        on_session(pos, cursors[pos])?;
        // Global active-session sweep. A `Finish` at tick T fires
        // after every arrival at T (arrivals are scheduled first and
        // the engine breaks ties by schedule order), so only ends
        // *strictly* before this arrival leave the active set.
        while ends.peek().is_some_and(|&e| e < tick) {
            ends.pop();
        }
        ends.push(sc.end_tick);
        peak_active = peak_active.max(ends.len());
        // The identical statements `run_core` executes per session.
        fold.fold_scalars(
            sc.latency,
            sc.peak_buffer,
            sc.total_received,
            sc.delivered,
            sc.max_streams,
        );
        sessions += 1;
        latency_sum += sc.latency;
        latencies.push(sc.latency);
        worst_latency = worst_latency.max(Minutes(sc.latency));
        worst_buffer = worst_buffer.max(Mbits(sc.peak_buffer));
        delivered += sc.delivered;
        cursors[pos] += 1;
    }

    latencies.sort_by(f64::total_cmp);
    let percentile = |q: f64| -> Minutes {
        if latencies.is_empty() {
            Minutes(0.0)
        } else {
            let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
            Minutes(latencies[idx])
        }
    };
    let summary = SystemReport {
        sessions,
        mean_latency: Minutes(if sessions > 0 {
            latency_sum / sessions as f64
        } else {
            0.0
        }),
        p50_latency: percentile(0.5),
        p95_latency: percentile(0.95),
        worst_latency,
        worst_buffer,
        peak_active_sessions: peak_active,
        delivered_minutes: Minutes(delivered),
    };
    Ok((summary, fold))
}

/// Check that `incoming` can merge into `acc` without tripping
/// [`Snapshot::merge`]'s panics: shared families must agree on kind,
/// shared series on value kind, shared histograms on bucket bounds.
fn check_mergeable(acc: &Snapshot, incoming: &Snapshot) -> Result<(), String> {
    use sb_metrics::MetricValue;
    for of in &incoming.families {
        let Some(f) = acc.family(&of.name) else {
            continue;
        };
        if f.kind != of.kind {
            return Err(format!("metric family {} has two kinds", of.name));
        }
        for os in &of.series {
            let Ok(pos) = f.series.binary_search_by(|s| s.labels.cmp(&os.labels)) else {
                continue;
            };
            match (&f.series[pos].value, &os.value) {
                (MetricValue::Counter(_), MetricValue::Counter(_))
                | (MetricValue::Gauge(_), MetricValue::Gauge(_)) => {}
                (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                    if a.bounds != b.bounds {
                        return Err(format!(
                            "histogram {}{{{}}} has mismatched bucket bounds",
                            of.name, os.labels
                        ));
                    }
                }
                _ => return Err(format!("series {}{{{}}} has two kinds", of.name, os.labels)),
            }
        }
    }
    Ok(())
}

/// Merge per-shard snapshots in shard order, patching in the one global
/// quantity no shard can see (the peak simultaneously-active sessions),
/// with shape mismatches propagated as [`PolicyError::ShardMerge`].
fn merge_snapshots<'a>(
    snaps: impl Iterator<Item = (usize, &'a Snapshot)>,
    peak_active: usize,
    label: &str,
) -> Result<Snapshot, PolicyError> {
    let mut snapshot = Snapshot::default();
    for (shard, snap) in snaps {
        check_mergeable(&snapshot, snap).map_err(|what| merge_err(shard, label, what))?;
        snapshot.merge(snap);
    }
    // Shards only saw their own peak; patch in the global one (gauge
    // merge is `max`, and global ≥ every shard).
    let mut extras = Registry::new();
    extras.gauge_max("sim_peak_active_sessions", &[], peak_active as f64);
    snapshot.merge(&extras.snapshot());
    Ok(snapshot)
}

/// Merge completed [`ShardRun`](crate::checkpoint::ShardRun)s — from the
/// crash-recovery supervisor or
/// any other caller of [`SystemSim::run_shard`] — into a [`RunOutcome`],
/// performing the identical ordered replay `execute` uses, so a
/// supervised (killed, resumed, retried) run's outcome is byte-identical
/// to an uninterrupted `execute` of the same `RunConfig`.
///
/// `runs` pairs each [`ShardRun`](crate::checkpoint::ShardRun) with its
/// shard index; any subset of a
/// run's shards may be merged (the supervisor's graceful-degradation
/// path merges the survivors), in any order — merging is canonicalized
/// by shard index internally. `label` names the experiment for error
/// attribution.
///
/// # Errors
/// [`PolicyError::ShardMerge`] when the per-shard streams are
/// inconsistent; never panics on untrusted shard output.
pub fn merge_shard_runs(
    mut runs: Vec<(usize, crate::checkpoint::ShardRun)>,
    label: &str,
) -> Result<RunOutcome, PolicyError> {
    runs.sort_by_key(|&(s, _)| s);
    for pair in runs.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(merge_err(
                pair[1].0,
                label,
                "the same shard appears twice in the merge set",
            ));
        }
    }
    let streams: Vec<(usize, &[SessionScalars])> = runs
        .iter()
        .map(|(s, r)| (*s, r.scalars.as_slice()))
        .collect();
    let (summary, fold) = replay_merge(&streams, label, |_, _| Ok(()))?;

    let mut stats = EngineStats::default();
    let mut shard_peak_agenda = Vec::with_capacity(runs.len());
    let mut shard_sessions = Vec::with_capacity(runs.len());
    for (_, r) in &runs {
        stats.scheduled += r.stats.scheduled;
        stats.fired += r.stats.fired;
        stats.cancelled += r.stats.cancelled;
        stats.compactions += r.stats.compactions;
        stats.peak_agenda = stats.peak_agenda.max(r.stats.peak_agenda);
        shard_peak_agenda.push(r.stats.peak_agenda);
        shard_sessions.push(r.scalars.len());
    }
    let snapshot = merge_snapshots(
        runs.iter().map(|(s, r)| (*s, &r.snapshot)),
        summary.peak_active_sessions,
        label,
    )?;
    Ok(RunOutcome {
        summary,
        fold: fold.finish(),
        stats,
        shard_peak_agenda,
        shard_sessions,
        snapshot,
    })
}

impl SystemSim<'_> {
    /// Execute `cfg` — the single entry point subsuming the deprecated
    /// `run` / `run_recorded` / `run_with_sink` / `run_instrumented`
    /// variants and adding partitioned scale-out.
    ///
    /// The outcome (report, streamed fold, merged snapshot) is
    /// byte-identical for every `shards(S)` and `threads(N)`; only
    /// `stats.peak_agenda` (and the per-shard breakdown next to it)
    /// legitimately shrinks as shards grow, which is the point of
    /// sharding. With `shards(1)` this is exactly the historical serial
    /// run, bit for bit.
    ///
    /// # Errors
    /// Propagates the first [`PolicyError`] (in shard order) from any
    /// shard, e.g. a request naming a video the plan does not carry.
    pub fn execute(&self, cfg: RunConfig<'_, Request>) -> Result<RunOutcome, PolicyError> {
        let parts = cfg.into_parts();
        if parts.shards == 1 {
            return self.execute_serial(parts.requests, parts.recorder, parts.sink, parts.agenda);
        }
        self.execute_sharded(parts)
    }

    /// The unsharded fast path: one engine, traces streamed straight
    /// through, nothing buffered.
    fn execute_serial(
        &self,
        requests: &[Request],
        recorder: Option<&mut dyn Recorder>,
        sink: Option<&mut dyn TraceSink>,
        agenda: AgendaKind,
    ) -> Result<RunOutcome, PolicyError> {
        let mut reg = Registry::new();
        let mut fold = StreamingFold::new();
        let (summary, stats) = match (recorder, sink) {
            (None, None) => self.run_core(requests, &mut reg, &mut fold, None, agenda),
            (Some(user), None) => {
                let mut tee = TeeRecorder {
                    a: &mut reg,
                    b: user,
                };
                self.run_core(requests, &mut tee, &mut fold, None, agenda)
            }
            (None, Some(user)) => {
                let mut tee = TeeSink {
                    a: &mut fold,
                    b: user,
                };
                self.run_core(requests, &mut reg, &mut tee, None, agenda)
            }
            (Some(user_rec), Some(user_sink)) => {
                let mut rec = TeeRecorder {
                    a: &mut reg,
                    b: user_rec,
                };
                let mut tee = TeeSink {
                    a: &mut fold,
                    b: user_sink,
                };
                self.run_core(requests, &mut rec, &mut tee, None, agenda)
            }
        }?;
        Ok(RunOutcome {
            summary,
            fold: fold.finish(),
            shard_peak_agenda: vec![stats.peak_agenda],
            shard_sessions: vec![requests.len()],
            stats,
            snapshot: reg.snapshot(),
        })
    }

    /// The partitioned path: one engine per shard on the deterministic
    /// pool, then the ordered-replay merge described in the module docs.
    fn execute_sharded(
        &self,
        parts: crate::run::RunParts<'_, Request, ()>,
    ) -> Result<RunOutcome, PolicyError> {
        const LABEL: &str = "sim-shards";
        let shards = parts.shards;
        let slices = plan_shards(parts.requests, shards, parts.seed, parts.partition);

        let want_ops = parts.recorder.is_some();
        let want_traces = parts.sink.is_some();
        let outs: Vec<ShardOut> = parallel_map(parts.threads, LABEL, &slices, |_, slice| {
            let mut reg = Registry::new();
            let mut ops = want_ops.then(OpLog::new);
            let mut collect = want_traces.then(CollectTraces::new);
            let mut scalars: Vec<SessionScalars> = Vec::with_capacity(slice.len());
            let mut null_sink = NullSink;
            let sink: &mut dyn TraceSink = match collect.as_mut() {
                Some(c) => c,
                None => &mut null_sink,
            };
            let reqs = slice.requests();
            let result = match ops.as_mut() {
                Some(log) => {
                    let mut tee = TeeRecorder {
                        a: &mut reg,
                        b: log,
                    };
                    self.run_core(reqs, &mut tee, sink, Some(&mut scalars), parts.agenda)
                }
                None => self.run_core(reqs, &mut reg, sink, Some(&mut scalars), parts.agenda),
            };
            for sc in &mut scalars {
                sc.idx = slice.global_idx()[sc.idx];
            }
            let (stats, err) = match result {
                Ok((_, stats)) => (stats, None),
                Err(e) => (EngineStats::default(), Some(e)),
            };
            ShardOut {
                scalars,
                snapshot: reg.snapshot(),
                stats,
                ops,
                traces: collect.map(|c| c.traces),
                err,
            }
        });
        if let Some(e) = outs.iter().find_map(|o| o.err.clone()) {
            return Err(e);
        }

        // Ordered replay: k-way merge by (arrival tick, global index)
        // reconstructs the unsharded engine order exactly, feeding the
        // user's trace sink one session at a time along the way.
        let streams: Vec<(usize, &[SessionScalars])> = outs
            .iter()
            .enumerate()
            .map(|(s, o)| (s, o.scalars.as_slice()))
            .collect();
        let mut user_sink = parts.sink;
        let (summary, fold) = replay_merge(&streams, LABEL, |s, cursor| {
            if let Some(sink) = user_sink.as_deref_mut() {
                if let Some(traces) = &outs[s].traces {
                    let trace = traces.get(cursor).ok_or_else(|| {
                        merge_err(s, LABEL, "trace stream shorter than scalar stream")
                    })?;
                    sink.accept(trace);
                }
            }
            Ok(())
        })?;
        let peak_active = summary.peak_active_sessions;

        let mut stats = EngineStats::default();
        let mut shard_peak_agenda = Vec::with_capacity(shards);
        let mut shard_sessions = Vec::with_capacity(shards);
        for out in &outs {
            stats.scheduled += out.stats.scheduled;
            stats.fired += out.stats.fired;
            stats.cancelled += out.stats.cancelled;
            stats.compactions += out.stats.compactions;
            stats.peak_agenda = stats.peak_agenda.max(out.stats.peak_agenda);
            shard_peak_agenda.push(out.stats.peak_agenda);
            shard_sessions.push(out.scalars.len());
        }

        let snapshot = merge_snapshots(
            outs.iter().enumerate().map(|(s, o)| (s, &o.snapshot)),
            peak_active,
            LABEL,
        )?;

        if let Some(rec) = parts.recorder {
            for out in &outs {
                if let Some(log) = &out.ops {
                    log.replay(rec);
                }
            }
            rec.gauge_max("sim_peak_active_sessions", &[], peak_active as f64);
        }

        Ok(RunOutcome {
            summary,
            fold: fold.finish(),
            stats,
            shard_peak_agenda,
            shard_sessions,
            snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ClientPolicy;
    use crate::sink::SessionSummary;
    use sb_core::config::SystemConfig;
    use sb_core::plan::VideoId;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use vod_units::Mbps;

    #[test]
    fn shard_of_is_stable_in_range_and_seed_sensitive() {
        for shards in [1, 2, 4, 8] {
            for v in 0..64u64 {
                let a = shard_of(v, 17, shards);
                assert_eq!(a, shard_of(v, 17, shards), "stable");
                assert!(a < shards);
            }
        }
        // A different seed shuffles at least one assignment.
        assert!((0..64u64).any(|v| shard_of(v, 1, 8) != shard_of(v, 2, 8)));
    }

    fn lineup() -> (SystemConfig, sb_core::plan::ChannelPlan, Vec<Request>) {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(52))
            .plan(&cfg)
            .unwrap();
        let requests: Vec<Request> = (0..240)
            .map(|i| Request {
                at: Minutes(45.0 * (i as f64 + 0.31) / 240.0),
                video: VideoId(i % 10),
            })
            .collect();
        (cfg, plan, requests)
    }

    fn outcome_key(o: &RunOutcome) -> (String, String, String, SessionSummary) {
        (
            serde_json::to_string(&o.summary).unwrap(),
            serde_json::to_string(&o.fold).unwrap(),
            serde_json::to_string(&o.snapshot).unwrap(),
            o.fold.clone(),
        )
    }

    #[test]
    fn sharded_outcomes_are_bitwise_shard_and_thread_invariant() {
        let (cfg, plan, requests) = lineup();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let base = sim.execute(RunConfig::new(&requests)).unwrap();
        assert_eq!(base.summary.sessions, 240);
        for shards in [2, 4, 8] {
            for threads in [1, 4] {
                let out = sim
                    .execute(RunConfig::new(&requests).shards(shards).threads(threads))
                    .unwrap();
                assert_eq!(
                    outcome_key(&base),
                    outcome_key(&out),
                    "S={shards} T={threads} diverged"
                );
                assert_eq!(out.shard_peak_agenda.len(), shards);
                assert_eq!(
                    out.stats.scheduled, base.stats.scheduled,
                    "event totals are shard-invariant"
                );
            }
        }
    }

    #[test]
    fn agenda_backend_is_bitwise_invariant_across_shards_and_threads() {
        // The full grid: {heap, wheel} × shards × threads all collapse to
        // the serial heap bytes.
        let (cfg, plan, requests) = lineup();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let base = sim.execute(RunConfig::new(&requests)).unwrap();
        for agenda in [AgendaKind::Heap, AgendaKind::Wheel] {
            for shards in [1, 2, 4] {
                for threads in [1, 4] {
                    let out = sim
                        .execute(
                            RunConfig::new(&requests)
                                .shards(shards)
                                .threads(threads)
                                .agenda(agenda),
                        )
                        .unwrap();
                    assert_eq!(
                        outcome_key(&base),
                        outcome_key(&out),
                        "{agenda:?} S={shards} T={threads} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_map_routes_without_changing_a_single_byte() {
        // A region-style owning-shard table (videos 0..10 → 3 "regions")
        // produces the same outcome as the hash partition and the serial
        // run — the scenario slot only decides *where* a session runs.
        let (cfg, plan, requests) = lineup();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let base = sim.execute(RunConfig::new(&requests)).unwrap();
        let map: Vec<usize> = (0..10).map(|v| v % 3).collect();
        let short_map: Vec<usize> = vec![0; 4]; // videos 4..10 fall back to the hash
        for shards in [2, 3, 4] {
            for threads in [1, 4] {
                for table in [&map, &short_map] {
                    let out = sim
                        .execute(
                            RunConfig::new(&requests)
                                .shards(shards)
                                .threads(threads)
                                .partition(table),
                        )
                        .unwrap();
                    assert_eq!(
                        outcome_key(&base),
                        outcome_key(&out),
                        "partitioned S={shards} T={threads} diverged"
                    );
                }
            }
        }
        // And the table genuinely moves load: with 3 shards, the mapped
        // run's per-shard agenda peaks differ from the hash run's.
        let mapped = sim
            .execute(RunConfig::new(&requests).shards(3).partition(&map))
            .unwrap();
        let hashed = sim.execute(RunConfig::new(&requests).shards(3)).unwrap();
        assert_eq!(outcome_key(&mapped), outcome_key(&hashed));
        assert_ne!(
            mapped.shard_peak_agenda, hashed.shard_peak_agenda,
            "the scenario slot should actually re-route sessions"
        );
    }

    #[test]
    fn sharded_recorder_and_sink_slots_match_serial() {
        let (cfg, plan, requests) = lineup();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let drive = |shards: usize| {
            let mut reg = Registry::new();
            let mut collect = CollectTraces::new();
            let out = sim
                .execute(
                    RunConfig::new(&requests)
                        .shards(shards)
                        .threads(2)
                        .recorder(&mut reg)
                        .sink(&mut collect),
                )
                .unwrap();
            (
                serde_json::to_string(&reg.snapshot()).unwrap(),
                serde_json::to_string(&collect.summarize()).unwrap(),
                serde_json::to_string(&out.fold).unwrap(),
            )
        };
        let serial = drive(1);
        let sharded = drive(4);
        assert_eq!(serial.0, sharded.0, "user recorder state diverged");
        assert_eq!(serial.1, sharded.1, "user sink replay diverged");
        // The traces the user sink saw summarize to the fold itself.
        assert_eq!(serial.1, serial.2);
    }

    #[test]
    fn unknown_video_errors_deterministically_when_sharded() {
        let (cfg, plan, _) = lineup();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let requests = vec![
            Request {
                at: Minutes(0.0),
                video: VideoId(3),
            },
            Request {
                at: Minutes(1.0),
                video: VideoId(99),
            },
        ];
        let err = sim
            .execute(RunConfig::new(&requests).shards(4))
            .unwrap_err();
        assert_eq!(err, PolicyError::UnknownVideo(VideoId(99)));
    }
}
