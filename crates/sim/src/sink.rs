//! Streaming aggregation of session traces: the [`TraceSink`] fold.
//!
//! A [`crate::trace::SessionTrace`] is small for one client and enormous
//! for a population: every reception of every session, retained until the
//! end of the run, just to compute a dozen summary numbers. Long-horizon
//! sweeps (the adaptive-harmonic and scalable-VoD scales in `PAPERS.md`)
//! are memory-bound on exactly that retention.
//!
//! [`TraceSink`] decouples *producing* sessions from *retaining* them:
//! the simulation hands each finished trace to a sink and drops it. Two
//! sinks cover the two consumers:
//!
//! * [`StreamingFold`] — incremental aggregation. Keeps scalar
//!   accumulators plus one `f64` per session (for exact percentiles);
//!   memory is ~8 bytes per session instead of the whole reception list.
//! * [`CollectTraces`] — the materializing path. Retains every trace,
//!   because packet-level [`crate::e2e`] replay and fault re-injection
//!   need the full reception lists.
//!
//! The two must agree **bitwise**: [`CollectTraces::summarize`] performs
//! the same floating-point operations in the same (arrival) order as the
//! fold, so `StreamingFold::finish()` and a post-hoc summary of the
//! collected traces serialize to identical bytes. A test in this module
//! and the cross-model suite in `tests/` pin that equivalence — it is
//! what lets experiments switch to the streaming path without changing a
//! single published number.

use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Minutes};

use crate::faults::StallReport;
use crate::trace::SessionTrace;

/// Consumes finished session traces one at a time, in arrival order.
///
/// Implementations must not assume the trace outlives the call — the
/// caller is free to drop it immediately afterwards (that is the point).
pub trait TraceSink {
    /// Accept one finished session.
    fn accept(&mut self, trace: &SessionTrace);

    /// Accept one session replayed under losses. The default folds the
    /// repaired trace and ignores the stall bookkeeping; statistics sinks
    /// override to account stall time and truncation too.
    fn accept_stalls(&mut self, report: &StallReport) {
        self.accept(&report.trace);
    }
}

/// A sink that drops everything — the zero-cost default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn accept(&mut self, _trace: &SessionTrace) {}
}

/// Aggregate statistics over a population of sessions: the summary both
/// the streaming and the materializing paths produce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSummary {
    /// Sessions folded.
    pub sessions: usize,
    /// Mean startup latency.
    pub mean_latency: Minutes,
    /// Median (p50) startup latency.
    pub p50_latency: Minutes,
    /// 95th-percentile startup latency.
    pub p95_latency: Minutes,
    /// Worst startup latency.
    pub worst_latency: Minutes,
    /// Worst per-session peak buffer.
    pub worst_buffer: Mbits,
    /// Total payload received across all sessions (the bandwidth side).
    pub total_received: Mbits,
    /// Total playback minutes delivered.
    pub delivered_minutes: Minutes,
    /// Largest per-session concurrent reception count.
    pub max_streams: usize,
    /// Total stall (frozen playback) minutes, when folded via
    /// [`TraceSink::accept_stalls`].
    pub stall_minutes: Minutes,
    /// Number of individual stalls.
    pub stalls: usize,
    /// Sessions whose loss repair gave up on at least one reception.
    pub truncated_sessions: usize,
}

/// Exact percentile over sorted latencies, the same nearest-rank rule
/// [`crate::system::SystemReport`] uses.
fn percentile(sorted: &[f64], q: f64) -> Minutes {
    if sorted.is_empty() {
        Minutes(0.0)
    } else {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        Minutes(sorted[idx])
    }
}

/// The streaming fold: constant state per statistic plus one `f64` per
/// session for exact percentiles. Never retains a trace.
#[derive(Debug, Default, Clone)]
pub struct StreamingFold {
    sessions: usize,
    latency_sum: f64,
    latencies: Vec<f64>,
    worst_latency: f64,
    worst_buffer: f64,
    total_received: f64,
    delivered: f64,
    max_streams: usize,
    stall_minutes: f64,
    stalls: usize,
    truncated_sessions: usize,
}

impl StreamingFold {
    /// An empty fold.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sessions folded so far.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.sessions
    }

    /// Fold one session from its pre-extracted scalars — exactly the
    /// operations [`TraceSink::accept`] performs, in the same order.
    ///
    /// The sharded runner captures these five scalars per session inside
    /// each shard and replays them here in global engine order, which is
    /// what makes an `S`-shard fold bitwise identical to the one-shard
    /// streaming fold (see `sim::shard`).
    pub fn fold_scalars(
        &mut self,
        latency: f64,
        peak_buffer: f64,
        total_received: f64,
        delivered: f64,
        max_streams: usize,
    ) {
        self.sessions += 1;
        self.latency_sum += latency;
        self.latencies.push(latency);
        self.worst_latency = self.worst_latency.max(latency);
        self.worst_buffer = self.worst_buffer.max(peak_buffer);
        self.total_received += total_received;
        self.delivered += delivered;
        self.max_streams = self.max_streams.max(max_streams);
    }

    /// Export the fold's accumulators as a [`FoldState`] — the
    /// checkpoint form. `StreamingFold::thaw(fold.freeze())` continues
    /// folding exactly where `fold` stood, bit for bit: the float sums
    /// keep their association, the percentile buffer its order.
    #[must_use]
    pub fn freeze(&self) -> FoldState {
        FoldState {
            sessions: self.sessions,
            latency_sum: self.latency_sum,
            latencies: self.latencies.clone(),
            worst_latency: self.worst_latency,
            worst_buffer: self.worst_buffer,
            total_received: self.total_received,
            delivered: self.delivered,
            max_streams: self.max_streams,
            stall_minutes: self.stall_minutes,
            stalls: self.stalls,
            truncated_sessions: self.truncated_sessions,
        }
    }

    /// Rebuild a fold from a [`FoldState`] (see [`StreamingFold::freeze`]).
    #[must_use]
    pub fn thaw(state: FoldState) -> Self {
        Self {
            sessions: state.sessions,
            latency_sum: state.latency_sum,
            latencies: state.latencies,
            worst_latency: state.worst_latency,
            worst_buffer: state.worst_buffer,
            total_received: state.total_received,
            delivered: state.delivered,
            max_streams: state.max_streams,
            stall_minutes: state.stall_minutes,
            stalls: state.stalls,
            truncated_sessions: state.truncated_sessions,
        }
    }

    /// Finish the fold into a [`SessionSummary`].
    #[must_use]
    pub fn finish(&self) -> SessionSummary {
        let mut sorted = self.latencies.clone();
        sorted.sort_by(f64::total_cmp);
        SessionSummary {
            sessions: self.sessions,
            mean_latency: Minutes(if self.sessions > 0 {
                self.latency_sum / self.sessions as f64
            } else {
                0.0
            }),
            p50_latency: percentile(&sorted, 0.5),
            p95_latency: percentile(&sorted, 0.95),
            worst_latency: Minutes(self.worst_latency),
            worst_buffer: Mbits(self.worst_buffer),
            total_received: Mbits(self.total_received),
            delivered_minutes: Minutes(self.delivered),
            max_streams: self.max_streams,
            stall_minutes: Minutes(self.stall_minutes),
            stalls: self.stalls,
            truncated_sessions: self.truncated_sessions,
        }
    }
}

/// The exported accumulators of a [`StreamingFold`], as plain public
/// fields so the checkpoint encoder can serialize them bit-exactly (the
/// fold itself keeps its fields private — only freeze/thaw move state in
/// and out wholesale).
#[derive(Debug, Clone, PartialEq)]
pub struct FoldState {
    /// Sessions folded.
    pub sessions: usize,
    /// Running latency sum (association-sensitive: restored verbatim).
    pub latency_sum: f64,
    /// Per-session latencies for exact percentiles, in fold order.
    pub latencies: Vec<f64>,
    /// Worst latency so far.
    pub worst_latency: f64,
    /// Worst per-session peak buffer so far.
    pub worst_buffer: f64,
    /// Running total payload received.
    pub total_received: f64,
    /// Running playback minutes delivered.
    pub delivered: f64,
    /// Largest per-session concurrent reception count so far.
    pub max_streams: usize,
    /// Running stall minutes.
    pub stall_minutes: f64,
    /// Stalls counted.
    pub stalls: usize,
    /// Truncated sessions counted.
    pub truncated_sessions: usize,
}

impl TraceSink for StreamingFold {
    fn accept(&mut self, trace: &SessionTrace) {
        self.fold_scalars(
            trace.startup_latency().value(),
            trace.peak_buffer().value(),
            trace.total_received().value(),
            trace.playback_end().value() - trace.playback_start.value(),
            trace.max_concurrent_receptions(),
        );
    }

    fn accept_stalls(&mut self, report: &StallReport) {
        self.accept(&report.trace);
        self.stall_minutes += report.total_stall().value();
        self.stalls += report.stalls.len();
        if report.is_truncated() {
            self.truncated_sessions += 1;
        }
    }
}

/// Feeds every event to two sinks, `a` first. The run executor uses it
/// to drive its internal [`StreamingFold`] and a caller-supplied sink
/// off one trace stream.
pub(crate) struct TeeSink<'s> {
    pub(crate) a: &'s mut dyn TraceSink,
    pub(crate) b: &'s mut dyn TraceSink,
}

impl TraceSink for TeeSink<'_> {
    fn accept(&mut self, trace: &SessionTrace) {
        self.a.accept(trace);
        self.b.accept(trace);
    }

    fn accept_stalls(&mut self, report: &StallReport) {
        self.a.accept_stalls(report);
        self.b.accept_stalls(report);
    }
}

/// The materializing sink: retains every trace (and stall report) whole,
/// for consumers that need the full reception lists — packet-level
/// [`crate::e2e`] replay, fault re-injection, trace serialization.
#[derive(Debug, Default, Clone)]
pub struct CollectTraces {
    /// Every accepted trace, in arrival order (repaired traces for
    /// sessions folded via [`TraceSink::accept_stalls`]).
    pub traces: Vec<SessionTrace>,
    /// Stall reports for the sessions that came with one, in arrival
    /// order. `(index into traces, stall minutes, stall count, truncated)`
    /// stays implicit: the report's trace is also in `traces`.
    pub stall_reports: Vec<StallReport>,
}

impl CollectTraces {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarize the retained traces post hoc — the materializing
    /// counterpart of [`StreamingFold::finish`]. Performs the identical
    /// floating-point operations in the identical order, so the result is
    /// **bitwise** equal to the streaming fold over the same sessions.
    #[must_use]
    pub fn summarize(&self) -> SessionSummary {
        let sessions = self.traces.len();
        let latencies: Vec<f64> = self
            .traces
            .iter()
            .map(|t| t.startup_latency().value())
            .collect();
        // Explicit 0.0-seeded folds, not `Iterator::sum` (which seeds
        // with -0.0): the streaming accumulators start at 0.0, and the
        // two paths must match bitwise even on empty input.
        let latency_sum: f64 = latencies.iter().fold(0.0, |a, &l| a + l);
        let mut sorted = latencies.clone();
        sorted.sort_by(f64::total_cmp);
        SessionSummary {
            sessions,
            mean_latency: Minutes(if sessions > 0 {
                latency_sum / sessions as f64
            } else {
                0.0
            }),
            p50_latency: percentile(&sorted, 0.5),
            p95_latency: percentile(&sorted, 0.95),
            worst_latency: Minutes(latencies.iter().fold(0.0f64, |a, &l| a.max(l))),
            worst_buffer: Mbits(
                self.traces
                    .iter()
                    .fold(0.0f64, |a, t| a.max(t.peak_buffer().value())),
            ),
            total_received: Mbits(
                self.traces
                    .iter()
                    .fold(0.0, |a, t| a + t.total_received().value()),
            ),
            delivered_minutes: Minutes(self.traces.iter().fold(0.0, |a, t| {
                a + (t.playback_end().value() - t.playback_start.value())
            })),
            max_streams: self
                .traces
                .iter()
                .fold(0usize, |a, t| a.max(t.max_concurrent_receptions())),
            stall_minutes: Minutes(
                self.stall_reports
                    .iter()
                    .fold(0.0, |a, r| a + r.total_stall().value()),
            ),
            stalls: self.stall_reports.iter().map(|r| r.stalls.len()).sum(),
            truncated_sessions: self
                .stall_reports
                .iter()
                .filter(|r| r.is_truncated())
                .count(),
        }
    }
}

impl TraceSink for CollectTraces {
    fn accept(&mut self, trace: &SessionTrace) {
        self.traces.push(trace.clone());
    }

    fn accept_stalls(&mut self, report: &StallReport) {
        self.traces.push(report.trace.clone());
        self.stall_reports.push(report.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{apply_losses, LossModel};
    use crate::policy::ClientPolicy;
    use crate::trace::ClientModel;
    use sb_core::config::SystemConfig;
    use sb_core::plan::VideoId;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use vod_units::Mbps;

    fn traces() -> (sb_core::plan::ChannelPlan, Vec<SessionTrace>) {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(52))
            .plan(&cfg)
            .unwrap();
        let traces = (0..40)
            .map(|i| {
                ClientPolicy::LatestFeasible
                    .session(
                        &plan,
                        VideoId(0),
                        Minutes(0.37 * i as f64),
                        cfg.display_rate,
                    )
                    .unwrap()
            })
            .collect();
        (plan, traces)
    }

    #[test]
    fn streaming_equals_materializing_bitwise() {
        let (_, ts) = traces();
        let mut fold = StreamingFold::new();
        let mut collect = CollectTraces::new();
        for t in &ts {
            fold.accept(t);
            collect.accept(t);
        }
        let a = fold.finish();
        let b = collect.summarize();
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "summaries must serialize to identical bytes"
        );
        assert_eq!(a.sessions, 40);
        assert!(a.worst_latency.value() > 0.0);
        assert!(a.total_received.value() > 0.0);
    }

    #[test]
    fn stall_accounting_folds_identically() {
        let (plan, ts) = traces();
        let losses = LossModel::new(0.2, 7).unwrap();
        let mut fold = StreamingFold::new();
        let mut collect = CollectTraces::new();
        for t in &ts {
            let report = apply_losses(&plan, t, &losses);
            fold.accept_stalls(&report);
            collect.accept_stalls(&report);
        }
        let a = fold.finish();
        let b = collect.summarize();
        assert_eq!(a, b);
        assert!(a.stalls > 0, "20% loss must stall someone");
        assert!(a.stall_minutes.value() > 0.0);
        assert_eq!(collect.traces.len(), 40);
        assert_eq!(collect.stall_reports.len(), 40);
    }

    #[test]
    fn fold_freeze_thaw_resumes_bit_for_bit() {
        let (plan, ts) = traces();
        let losses = LossModel::new(0.2, 7).unwrap();
        let mut whole = StreamingFold::new();
        let mut prefix = StreamingFold::new();
        for (i, t) in ts.iter().enumerate() {
            let report = apply_losses(&plan, t, &losses);
            whole.accept_stalls(&report);
            if i < 17 {
                prefix.accept_stalls(&report);
            }
        }
        let mut resumed = StreamingFold::thaw(prefix.freeze());
        for t in ts.iter().skip(17) {
            let report = apply_losses(&plan, t, &losses);
            resumed.accept_stalls(&report);
        }
        assert_eq!(whole.finish(), resumed.finish());
        assert_eq!(
            serde_json::to_string(&whole.finish()).unwrap(),
            serde_json::to_string(&resumed.finish()).unwrap()
        );
        assert_eq!(resumed.sessions(), 40);
    }

    #[test]
    fn empty_fold_is_well_defined() {
        let a = StreamingFold::new().finish();
        let b = CollectTraces::new().summarize();
        assert_eq!(a, b);
        assert_eq!(a.sessions, 0);
        assert_eq!(a.mean_latency, Minutes(0.0));
        assert_eq!(a.stalls, 0);
    }

    #[test]
    fn null_sink_accepts_everything() {
        let (_, ts) = traces();
        let mut sink = NullSink;
        for t in &ts {
            sink.accept(t);
        }
    }
}
