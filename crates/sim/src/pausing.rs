//! The PPB *max-saving* client: mid-broadcast retuning ("pausing").
//!
//! §2 of the paper, describing PPB: "To further reduce this requirement,
//! PPB occasionally pauses the incoming stream to allow the playback to
//! catch up. This is done by allowing a client to discontinue the current
//! stream and tune to another subchannel, which broadcasts the same
//! fragment, at a later time to collect the remaining data. This, however,
//! is difficult to implement since a client must be able to tune to a
//! channel during, instead of at the beginning of, a broadcast."
//!
//! This module implements that difficult client, so the repository can
//! measure both sides of the paper's argument: the tune-at-start client
//! (in [`crate::policy`]) overshoots PPB's Table-1 buffer by up to ≈2×,
//! while this pausing client gets *under* it — at the price of reception
//! schedules made of many precisely-timed mid-broadcast joins.
//!
//! ## How the schedule is built
//!
//! A fragment of on-air time `T` is replicated on `P` subchannels with
//! phase shifts `δ = T/P`. Replica `p` transmits byte offset `y` at wall
//! times `p·δ + y/r + n·T`, so reception of the content at offset `y` can
//! begin at any time on the lattice `y/r + k·δ` (picking the replica that
//! is at the right offset then). We cut each fragment into `P·m` chunks
//! (`m` = [`SUBDIVISIONS`]); chunk `j`, covering content from byte
//! `y_j = j·r·ε` (`ε = δ/m`), may start at any `j·ε + k·δ`. The
//! minimal-buffer schedule is then a reverse greedy: walk chunks from the
//! last deadline backwards, giving each the latest lattice point that
//! (a) meets its deadline, (b) does not overlap an already-scheduled chunk
//! (one tuner), and (c) is not before the client's arrival. Finer `m`
//! means smaller buffers and ever more mid-broadcast joins — the knob §2's
//! complexity warning is about.

use serde::{Deserialize, Serialize};
use vod_units::{MBytes, Mbits, Mbps, Minutes};

use sb_core::plan::{BroadcastItem, ChannelPlan, VideoId};

use crate::policy::PolicyError;
use crate::trace::{Reception, SessionTrace};

/// How many pieces each replica-phase window is subdivided into. The
/// client's retune lattice has spacing `δ = T/P` in time; `m` chunks per
/// window bound the per-fragment prefetch lead by `≈ δ/m + ` drain slack,
/// trading buffer for mid-broadcast joins.
pub const SUBDIVISIONS: usize = 8;

/// One contiguous reception burst (a chunk of one fragment, from one
/// replica, joined possibly mid-broadcast).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// The fragment being received.
    pub segment: usize,
    /// Chunk index within the fragment (0-based).
    pub chunk: usize,
    /// The subchannel replica delivering this chunk.
    pub channel: usize,
    /// Wall-clock start, minutes.
    pub start: Minutes,
    /// Burst duration, minutes.
    pub duration: Minutes,
    /// Reception rate (the subchannel rate).
    pub rate: Mbps,
    /// Content byte-offset of the chunk within the fragment, in Mbits.
    pub content_offset: Mbits,
    /// Chunk payload, Mbits.
    pub size: Mbits,
}

impl Burst {
    /// Wall-clock end of the burst.
    #[must_use]
    pub fn end(&self) -> Minutes {
        self.start + self.duration
    }
}

/// A complete pausing-client session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PausingSchedule {
    /// Arrival time.
    pub arrival: Minutes,
    /// Playback start (first catchable broadcast of fragment 0).
    pub playback_start: Minutes,
    /// Display rate.
    pub display_rate: Mbps,
    /// Fragment sizes in playback order.
    pub segment_sizes: Vec<Mbits>,
    /// All reception bursts, sorted by start time.
    pub bursts: Vec<Burst>,
}

impl PausingSchedule {
    /// Playback start of segment `i`.
    #[must_use]
    pub fn playback_start_of(&self, i: usize) -> Minutes {
        let prefix: f64 = self.segment_sizes[..i]
            .iter()
            .map(|s| (*s / self.display_rate).to_minutes().value())
            .sum();
        Minutes(self.playback_start.value() + prefix)
    }

    /// End of playback.
    #[must_use]
    pub fn playback_end(&self) -> Minutes {
        self.playback_start_of(self.segment_sizes.len())
    }

    /// Startup latency.
    #[must_use]
    pub fn startup_latency(&self) -> Minutes {
        Minutes(self.playback_start.value() - self.arrival.value())
    }

    /// The session as a scheme-agnostic [`SessionTrace`]: one
    /// [`Reception`] per burst, carrying the chunk's content interval. All
    /// buffer and jitter accounting lives on the trace.
    #[must_use]
    pub fn trace(&self) -> SessionTrace {
        SessionTrace {
            arrival: self.arrival,
            playback_start: self.playback_start,
            display_rate: self.display_rate,
            segment_sizes: self.segment_sizes.clone(),
            receptions: self
                .bursts
                .iter()
                .map(|b| Reception {
                    segment: b.segment,
                    channel: b.channel,
                    start: b.start,
                    duration: b.duration,
                    rate: b.rate,
                    content_offset: b.content_offset,
                    size: b.size,
                })
                .collect(),
        }
    }

    /// Starvation check: every content byte must be received no later
    /// than it is consumed (exact per-byte check on the trace).
    #[must_use]
    pub fn is_jitter_free(&self, tol: f64) -> bool {
        self.trace().is_jitter_free(tol)
    }

    /// `true` when no two bursts overlap (the client has a single tuner).
    #[must_use]
    pub fn single_tuner(&self, tol: f64) -> bool {
        self.trace().single_tuner(tol)
    }

    /// Peak buffer occupancy (received − consumed), in Mbits.
    #[must_use]
    pub fn peak_buffer(&self) -> Mbits {
        self.trace().peak_buffer()
    }

    /// Peak buffer in the paper's Figure-8 unit.
    #[must_use]
    pub fn peak_buffer_mbytes(&self) -> MBytes {
        self.peak_buffer().to_mbytes()
    }

    /// Number of mid-broadcast joins (bursts that do not begin at a
    /// replica's cycle start) — the implementation complexity §2 warns
    /// about, quantified.
    #[must_use]
    pub fn mid_broadcast_joins(&self) -> usize {
        self.bursts.iter().filter(|b| b.chunk != 0).count()
    }
}

/// Build the pausing schedule for one PPB client.
///
/// `plan` must be a PPB plan: every fragment carried by `P ≥ 1` equal-rate
/// subchannels whose phases are `j·T/P` apart.
pub fn schedule_pausing_client(
    plan: &ChannelPlan,
    video: VideoId,
    arrival: Minutes,
    display_rate: Mbps,
) -> Result<PausingSchedule, PolicyError> {
    let sizes = plan
        .segment_sizes
        .get(video.0)
        .ok_or(PolicyError::UnknownVideo(video))?
        .clone();

    // Playback start: earliest catchable broadcast of fragment 0 over its
    // replicas (identical to the tune-at-start client).
    let first = BroadcastItem { video, segment: 0 };
    let carriers0 = plan.channels_for(first);
    if carriers0.is_empty() {
        return Err(PolicyError::MissingSegment(0));
    }
    let playback_start = carriers0
        .iter()
        .filter_map(|c| c.next_start_of(first, arrival))
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        .ok_or(PolicyError::MissingSegment(0))?;

    let mut sched = PausingSchedule {
        arrival,
        playback_start,
        display_rate,
        segment_sizes: sizes.clone(),
        bursts: Vec::new(),
    };

    // Fragment 0 is consumed live from its broadcast: one burst, chunk 0,
    // from the replica whose broadcast starts at playback_start.
    let ch0 = carriers0
        .iter()
        .find(|c| {
            c.next_start_of(first, arrival)
                .is_some_and(|s| s.approx_eq(playback_start, 1e-9))
        })
        .unwrap_or(&carriers0[0]);
    sched.bursts.push(Burst {
        segment: 0,
        chunk: 0,
        channel: ch0.id,
        start: playback_start,
        duration: (sizes[0] / ch0.rate).to_minutes(),
        rate: ch0.rate,
        content_offset: Mbits(0.0),
        size: sizes[0],
    });

    // Remaining fragments: reverse-greedy chunk placement.
    // Collect chunks with their deadlines first.
    struct PendingChunk {
        segment: usize,
        chunk: usize,
        lattice_origin: f64, // j·ε: earliest-phase start of this chunk's lattice
        lattice_step: f64,   // δ for this fragment, minutes
        duration: f64,       // ε, minutes
        deadline: f64,       // latest permissible start, minutes
        rate: Mbps,
        offset: Mbits,
        size: Mbits,
        replicas: Vec<usize>, // carrier channel ids, sorted by phase
    }
    let mut pending: Vec<PendingChunk> = Vec::new();
    #[allow(clippy::needless_range_loop)] // `segment` is an identifier, not just an index
    for segment in 1..sizes.len() {
        let item = BroadcastItem { video, segment };
        let carriers = plan.channels_for(item);
        if carriers.is_empty() {
            return Err(PolicyError::MissingSegment(segment));
        }
        let p = carriers.len();
        let rate = carriers[0].rate;
        // Replica `j` (in phase order) has phase `j·δ`; lattice point
        // `origin + k·δ` is served by replica `k mod p`.
        let mut by_phase: Vec<_> = carriers.iter().map(|c| (c.phase.value(), c.id)).collect();
        by_phase.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let replicas: Vec<usize> = by_phase.into_iter().map(|(_, id)| id).collect();
        let on_air = (sizes[segment] / rate).to_minutes().value();
        let delta = on_air / p as f64;
        let chunks = p * SUBDIVISIONS;
        let eps = on_air / chunks as f64;
        let chunk_size = Mbits(sizes[segment].value() / chunks as f64);
        let pb = sched.playback_start_of(segment).value();
        let b = display_rate.value();
        for j in 0..chunks {
            // Deadline of the chunk's first byte under playback at b.
            let offset = Mbits(chunk_size.value() * j as f64);
            let deadline = pb + offset.value() / (b * 60.0);
            pending.push(PendingChunk {
                segment,
                chunk: j,
                lattice_origin: j as f64 * eps,
                lattice_step: delta,
                duration: eps,
                deadline,
                rate,
                offset,
                size: chunk_size,
                replicas: replicas.clone(),
            });
        }
    }
    // Latest deadlines first.
    pending.sort_by(|a, b| b.deadline.partial_cmp(&a.deadline).expect("finite"));

    // Occupied intervals (start, end), kept sorted by start.
    let mut occupied: Vec<(f64, f64)> = sched
        .bursts
        .iter()
        .map(|b| (b.start.value(), b.end().value()))
        .collect();

    for c in &pending {
        // Content at this chunk's offset is on the air at lattice points
        // `origin + k·δ` (the PPB plan's replica 0 has phase 0).
        let mut k = ((c.deadline - c.lattice_origin) / c.lattice_step).floor();
        // f64 guard: make sure we start at or before the deadline.
        while c.lattice_origin + k * c.lattice_step > c.deadline + 1e-9 {
            k -= 1.0;
        }
        let start = loop {
            let s = c.lattice_origin + k * c.lattice_step;
            if k < 0.0 || s + 1e-9 < arrival.value() {
                return Err(PolicyError::NoFeasibleBroadcast { segment: c.segment });
            }
            let e = s + c.duration;
            let free = occupied
                .iter()
                .all(|&(os, oe)| e <= os + 1e-9 || s >= oe - 1e-9);
            if free {
                break s;
            }
            k -= 1.0;
        };
        occupied.push((start, start + c.duration));
        occupied.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let replica = (k as i64).rem_euclid(c.replicas.len() as i64) as usize;
        sched.bursts.push(Burst {
            segment: c.segment,
            chunk: c.chunk,
            channel: c.replicas[replica],
            start: Minutes(start),
            duration: Minutes(c.duration),
            rate: c.rate,
            content_offset: c.offset,
            size: c.size,
        });
    }
    sched
        .bursts
        .sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite"));
    Ok(sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schedule_client, ClientPolicy};
    use proptest::prelude::*;
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_pyramid::PermutationPyramid;

    fn setup(b: f64) -> (SystemConfig, sb_core::plan::ChannelPlan, PermutationPyramid) {
        let cfg = SystemConfig::paper_defaults(Mbps(b));
        let scheme = PermutationPyramid::b();
        let plan = scheme.plan(&cfg).unwrap();
        (cfg, plan, scheme)
    }

    #[test]
    fn pausing_client_is_consistent() {
        let (cfg, plan, _) = setup(320.0);
        for i in 0..40 {
            let arrival = Minutes(30.0 * i as f64 / 40.0);
            let s = schedule_pausing_client(&plan, VideoId(0), arrival, cfg.display_rate).unwrap();
            assert!(s.is_jitter_free(1e-6), "arrival {arrival}");
            assert!(s.single_tuner(1e-6), "arrival {arrival}");
            // Total received equals the video.
            let received: f64 = s.bursts.iter().map(|b| b.size.value()).sum();
            let total: f64 = s.segment_sizes.iter().map(|x| x.value()).sum();
            assert!((received - total).abs() < 1e-6 * total);
        }
    }

    #[test]
    fn pausing_beats_tune_at_start_and_the_table1_number() {
        // The point of the module: the §2 "max saving" client needs less
        // buffer than both the tune-at-start client and the analytic
        // Table-1 PPB requirement.
        let (cfg, plan, scheme) = setup(320.0);
        let analytic = scheme.metrics(&cfg).unwrap().buffer_requirement;
        let mut worst_pausing = 0.0f64;
        let mut worst_start = 0.0f64;
        for i in 0..60 {
            let arrival = Minutes(30.0 * i as f64 / 60.0);
            let p = schedule_pausing_client(&plan, VideoId(0), arrival, cfg.display_rate).unwrap();
            worst_pausing = worst_pausing.max(p.peak_buffer().value());
            let t = schedule_client(
                &plan,
                VideoId(0),
                arrival,
                cfg.display_rate,
                ClientPolicy::LatestFeasible,
            )
            .unwrap();
            worst_start = worst_start.max(t.peak_buffer().value());
        }
        assert!(
            worst_pausing < worst_start * 0.8,
            "pausing {worst_pausing:.0} vs tune-at-start {worst_start:.0} Mbit"
        );
        assert!(
            worst_pausing <= analytic.value() * 1.01,
            "pausing {worst_pausing:.0} vs Table-1 {analytic}"
        );
    }

    #[test]
    fn pausing_pays_in_synchronization_complexity() {
        // §2's criticism, measured: the schedule is full of mid-broadcast
        // joins, unlike the tune-at-start client which has none.
        let (cfg, plan, _) = setup(320.0);
        let s = schedule_pausing_client(&plan, VideoId(0), Minutes(3.7), cfg.display_rate).unwrap();
        assert!(
            s.mid_broadcast_joins() > 0,
            "expected mid-broadcast tunings, got a trivial schedule"
        );
        // Latency is unchanged (first fragment handling is identical).
        let t = schedule_client(
            &plan,
            VideoId(0),
            Minutes(3.7),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        assert!(s.startup_latency().approx_eq(t.startup_latency(), 1e-9));
    }

    #[test]
    fn works_for_ppb_a_single_replica() {
        // P = 1: the retune lattice degenerates to one point per cycle —
        // the client pauses and picks the content up again on a *later
        // cycle of the same subchannel*, which still slashes its buffer
        // relative to tune-at-start.
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        let scheme = PermutationPyramid::a();
        let plan = scheme.plan(&cfg).unwrap();
        let analytic = scheme.metrics(&cfg).unwrap().buffer_requirement;
        let s = schedule_pausing_client(&plan, VideoId(1), Minutes(5.0), cfg.display_rate).unwrap();
        assert!(s.is_jitter_free(1e-6));
        assert!(s.single_tuner(1e-6));
        let t = schedule_client(
            &plan,
            VideoId(1),
            Minutes(5.0),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap();
        assert!(s.peak_buffer().value() < t.peak_buffer().value());
        assert!(s.peak_buffer().value() <= analytic.value() * 1.01);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Pausing sessions stay consistent across bandwidths, variants,
        /// videos and arrivals, and never exceed the Table-1 buffer.
        #[test]
        fn pausing_invariants(
            b in 95.0f64..600.0,
            variant_b in any::<bool>(),
            video in 0usize..10,
            arrival in 0.0f64..40.0,
        ) {
            let cfg = SystemConfig::paper_defaults(Mbps(b));
            let scheme = if variant_b {
                PermutationPyramid::b()
            } else {
                PermutationPyramid::a()
            };
            let Ok(plan) = scheme.plan(&cfg) else { return Ok(()) };
            let analytic = scheme.metrics(&cfg).unwrap().buffer_requirement;
            let s = schedule_pausing_client(
                &plan,
                VideoId(video),
                Minutes(arrival),
                cfg.display_rate,
            )
            .unwrap();
            prop_assert!(s.is_jitter_free(1e-6));
            prop_assert!(s.single_tuner(1e-6));
            prop_assert!(s.peak_buffer().value() <= analytic.value() * 1.01);
            let received: f64 = s.bursts.iter().map(|x| x.size.value()).sum();
            let total: f64 = s.segment_sizes.iter().map(|x| x.value()).sum();
            prop_assert!((received - total).abs() < 1e-6 * total);
        }
    }

    #[test]
    fn unknown_video_errors() {
        let (cfg, plan, _) = setup(320.0);
        assert!(matches!(
            schedule_pausing_client(&plan, VideoId(55), Minutes(0.0), cfg.display_rate),
            Err(PolicyError::UnknownVideo(_))
        ));
    }
}
