//! The one run entry point: [`RunConfig`] and [`RunOutcome`].
//!
//! Before this module the workspace had six run variants — four on
//! [`crate::system::SystemSim`] (`run`, `run_recorded`, `run_with_sink`,
//! `run_instrumented`) and two on `sb-control`'s `ControlledSim` (`run`,
//! `run_with_faults`) — each a different subset of {recorder, sink,
//! faults, stats}. Every new capability multiplied the surface again,
//! and none of them could scale out. [`RunConfig`] collapses the matrix
//! into one builder with optional slots:
//!
//! ```text
//! RunConfig::new(&requests)
//!     .sink(&mut fold)          // optional: stream finished traces
//!     .recorder(&mut registry)  // optional: metric event stream
//!     .faults(script)           // optional: control-plane fault payload
//!     .shards(4)                // optional: partitioned scale-out
//!     .threads(4)               // optional: worker pool for the shards
//!     .agenda(AgendaKind::Wheel) // optional: engine event-store backend
//!     .partition(&map)          // optional: scenario's video → shard table
//! ```
//!
//! consumed by `SystemSim::execute` (and, generically over the request
//! and fault payload types, by `ControlledSim::execute`). The outcome
//! always carries the report, the streamed [`SessionSummary`], merged
//! [`EngineStats`], and a metrics [`Snapshot`] — byte-identical for any
//! shard count and any thread count (see `sim::shard`).

use sb_metrics::{Recorder, Snapshot};

use crate::agenda::AgendaKind;
use crate::engine::EngineStats;
use crate::sink::{SessionSummary, TraceSink};
use crate::system::SystemReport;

/// Declarative description of one simulation run.
///
/// Generic over the request type `R` (the system sim's
/// [`crate::system::Request`], the control plane's `WorkloadRequest`)
/// and the fault payload `F` carried to fault-aware executors (`()` when
/// the executor takes none). Build with [`RunConfig::new`] plus the
/// chained setters; executors destructure via [`RunConfig::into_parts`].
pub struct RunConfig<'a, R, F = ()> {
    requests: &'a [R],
    sink: Option<&'a mut dyn TraceSink>,
    recorder: Option<&'a mut dyn Recorder>,
    faults: Option<F>,
    shards: usize,
    threads: usize,
    seed: u64,
    agenda: AgendaKind,
    partition: Option<&'a [usize]>,
    checkpoint_every: Option<u64>,
}

impl<'a, R> RunConfig<'a, R> {
    /// A run over `requests` with every slot empty: one shard, one
    /// thread, seed 0, no sink, no recorder, no faults.
    #[must_use]
    pub fn new(requests: &'a [R]) -> Self {
        Self {
            requests,
            sink: None,
            recorder: None,
            faults: None,
            shards: 1,
            threads: 1,
            seed: 0,
            agenda: AgendaKind::Heap,
            partition: None,
            checkpoint_every: None,
        }
    }
}

/// A [`RunConfig`] rejected up front by [`RunConfig::validate`] — the
/// typed version of mistakes that would otherwise surface as silent
/// wraps, panics, or dead knobs deep inside a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The partition table names an owning shard outside `0..shards`.
    ///
    /// The base executor forgives this by wrapping (`owner % shards`,
    /// so one table serves several shard counts); supervised runs
    /// validate strictly because a wrapped owner under a *recovery*
    /// scenario usually means the operator pinned a region to a shard
    /// that does not exist.
    PartitionOutOfRange {
        /// Video id (index into the partition table).
        video: usize,
        /// The table's claimed owning shard.
        owner: usize,
        /// The run's shard count.
        shards: usize,
    },
    /// `checkpoint_every(0)` — a cadence of zero checkpoints nothing.
    ZeroCheckpointCadence,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::PartitionOutOfRange {
                video,
                owner,
                shards,
            } => write!(
                f,
                "partition table maps video {video} to shard {owner}, but the run has only \
                 {shards} shard(s) (owners must lie in 0..{shards})"
            ),
            ConfigError::ZeroCheckpointCadence => write!(
                f,
                "checkpoint cadence is 0 sessions; use a cadence of at least 1, \
                 or omit checkpointing entirely"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl<'a, R, F> RunConfig<'a, R, F> {
    /// Stream every finished session trace into `sink`.
    ///
    /// With `shards(1)` the sink observes traces as they finish, in
    /// engine order, retaining nothing. With more shards the executor
    /// must buffer each shard's traces to replay them in global engine
    /// order — prefer the built-in streamed summary (the outcome's
    /// `fold`) for large sharded populations.
    #[must_use]
    pub fn sink(mut self, sink: &'a mut dyn TraceSink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Stream metric events into `rec`, *in addition to* the private
    /// registry behind the outcome's snapshot. Sharded runs replay
    /// per-shard event logs into `rec` in shard order.
    #[must_use]
    pub fn recorder(mut self, rec: &'a mut dyn Recorder) -> Self {
        self.recorder = Some(rec);
        self
    }

    /// Attach a fault payload, changing the config's fault type.
    ///
    /// What `F2` means is up to the executor: `ControlledSim::execute`
    /// takes its script-plus-degradation bundle; `SystemSim::execute`
    /// accepts only `()` (loss injection happens downstream of traces).
    #[must_use]
    pub fn faults<F2>(self, faults: F2) -> RunConfig<'a, R, F2> {
        RunConfig {
            requests: self.requests,
            sink: self.sink,
            recorder: self.recorder,
            faults: Some(faults),
            shards: self.shards,
            threads: self.threads,
            seed: self.seed,
            agenda: self.agenda,
            partition: self.partition,
            checkpoint_every: self.checkpoint_every,
        }
    }

    /// Partition the run across `shards` server shards (default 1).
    /// Results are byte-identical for every shard count.
    ///
    /// # Panics
    /// Panics if `shards` is zero — there is no zero-server system.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "a run needs at least one shard");
        self.shards = shards;
        self
    }

    /// Worker threads for the shard pool (default 1; 0 = one per core).
    /// Purely an execution knob: results never depend on it.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Seed for the stable catalog-to-shard hash (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Event-store backend for every engine the run builds — one per
    /// shard (default [`AgendaKind::Heap`]). Purely an execution knob:
    /// heap and wheel runs are byte-identical, only wall-clock speed and
    /// the non-serialized [`EngineStats::wheel`] counters differ.
    #[must_use]
    pub fn agenda(mut self, agenda: AgendaKind) -> Self {
        self.agenda = agenda;
        self
    }

    /// The scenario slot: a per-video owning-shard table
    /// (`map[video] % shards` is the shard that runs the session),
    /// replacing the default seeded hash. This is how a metropolitan
    /// scenario pins each region's catalog slice — and with it the
    /// region's arrival stream and channel budget — to one shard.
    /// Videos beyond the table's length fall back to the hash. Results
    /// stay byte-identical for every shard count either way: the
    /// partition only decides *where* a session runs, the ordered-replay
    /// merge restores the global order (see `sim::shard`).
    #[must_use]
    pub fn partition(mut self, map: &'a [usize]) -> Self {
        self.partition = Some(map);
        self
    }

    /// Checkpoint each shard every `sessions` served sessions (default:
    /// never). Only supervised executors (`sb-resilience`'s recovery
    /// supervisor) act on this; the plain `execute` path ignores it.
    /// A cadence of zero is rejected by [`RunConfig::validate`].
    #[must_use]
    pub fn checkpoint_every(mut self, sessions: u64) -> Self {
        self.checkpoint_every = Some(sessions);
        self
    }

    /// Validate the knob combination up front, before any shard runs.
    ///
    /// Opt-in strictness for supervised/CLI entry points: the base
    /// executor keeps its forgiving semantics (partition owners wrap by
    /// `% shards`), while callers that validate get typed errors instead.
    ///
    /// # Errors
    /// [`ConfigError::PartitionOutOfRange`] if the partition table names
    /// an owner `>= shards`; [`ConfigError::ZeroCheckpointCadence`] for
    /// `checkpoint_every(0)`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.checkpoint_every == Some(0) {
            return Err(ConfigError::ZeroCheckpointCadence);
        }
        if let Some(map) = self.partition {
            for (video, &owner) in map.iter().enumerate() {
                if owner >= self.shards {
                    return Err(ConfigError::PartitionOutOfRange {
                        video,
                        owner,
                        shards: self.shards,
                    });
                }
            }
        }
        Ok(())
    }

    /// Destructure into the executor-facing parts.
    #[must_use]
    pub fn into_parts(self) -> RunParts<'a, R, F> {
        RunParts {
            requests: self.requests,
            sink: self.sink,
            recorder: self.recorder,
            faults: self.faults,
            shards: self.shards,
            threads: self.threads,
            seed: self.seed,
            agenda: self.agenda,
            partition: self.partition,
            checkpoint_every: self.checkpoint_every,
        }
    }
}

/// The destructured fields of a [`RunConfig`], for executors.
pub struct RunParts<'a, R, F> {
    /// The request stream (need not be sorted).
    pub requests: &'a [R],
    /// Optional trace sink.
    pub sink: Option<&'a mut dyn TraceSink>,
    /// Optional caller-side recorder.
    pub recorder: Option<&'a mut dyn Recorder>,
    /// Optional fault payload.
    pub faults: Option<F>,
    /// Shard count (≥ 1).
    pub shards: usize,
    /// Worker threads (0 = one per core).
    pub threads: usize,
    /// Shard-hash seed.
    pub seed: u64,
    /// Event-store backend for every engine of the run.
    pub agenda: AgendaKind,
    /// Optional per-video owning-shard table (the scenario slot).
    pub partition: Option<&'a [usize]>,
    /// Optional checkpoint cadence in served sessions (supervised
    /// executors only).
    pub checkpoint_every: Option<u64>,
}

/// Everything a system run produces, whatever the slot combination.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// The engine-side report (identical to the historical
    /// `SystemSim::run` output).
    pub summary: SystemReport,
    /// The streamed population summary ([`crate::sink::StreamingFold`]
    /// over every session, in global engine order).
    pub fold: SessionSummary,
    /// Engine statistics, summed across shards; `peak_agenda` is the
    /// *maximum* over shards (the largest single agenda anywhere) and is
    /// the one field that legitimately varies with the shard count.
    pub stats: EngineStats,
    /// Each shard's agenda high-water mark, in shard order (`len ==
    /// shards`): the per-server memory story of a scale-out run.
    pub shard_peak_agenda: Vec<u64>,
    /// Sessions routed to each shard, in shard order (`len == shards`):
    /// the per-server load story the distributed tier reads. Like
    /// `shard_peak_agenda`, this legitimately varies with the shard
    /// count and is excluded from byte-identity comparisons.
    pub shard_sessions: Vec<usize>,
    /// Snapshot of the run's private metrics registry, merged across
    /// shards in shard order.
    pub snapshot: Snapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_one_serial_unseeded_shard() {
        let reqs: Vec<u8> = vec![1, 2, 3];
        let parts = RunConfig::new(&reqs).into_parts();
        assert_eq!(parts.requests, &[1, 2, 3]);
        assert!(parts.sink.is_none());
        assert!(parts.recorder.is_none());
        assert!(parts.faults.is_none());
        assert_eq!((parts.shards, parts.threads, parts.seed), (1, 1, 0));
        assert_eq!(parts.agenda, AgendaKind::Heap);
    }

    #[test]
    fn faults_setter_changes_the_payload_type() {
        let reqs: Vec<u8> = vec![9];
        let parts = RunConfig::new(&reqs)
            .shards(4)
            .threads(2)
            .seed(11)
            .agenda(AgendaKind::Wheel)
            .faults("script")
            .into_parts();
        assert_eq!(parts.faults, Some("script"));
        assert_eq!((parts.shards, parts.threads, parts.seed), (4, 2, 11));
        assert_eq!(parts.agenda, AgendaKind::Wheel, "agenda survives faults()");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let reqs: Vec<u8> = Vec::new();
        let _ = RunConfig::new(&reqs).shards(0);
    }

    #[test]
    fn validate_accepts_the_defaults_and_sane_knobs() {
        let reqs: Vec<u8> = vec![1];
        assert_eq!(RunConfig::new(&reqs).validate(), Ok(()));
        let map = [0usize, 1, 2];
        assert_eq!(
            RunConfig::new(&reqs)
                .shards(3)
                .partition(&map)
                .checkpoint_every(10)
                .validate(),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_zero_checkpoint_cadence() {
        let reqs: Vec<u8> = vec![1];
        let err = RunConfig::new(&reqs)
            .checkpoint_every(0)
            .validate()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroCheckpointCadence);
        assert!(err.to_string().contains("cadence"));
    }

    #[test]
    fn validate_rejects_partition_owners_beyond_the_shard_count() {
        let reqs: Vec<u8> = vec![1];
        let map = [0usize, 5, 1];
        let err = RunConfig::new(&reqs)
            .shards(2)
            .partition(&map)
            .validate()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::PartitionOutOfRange {
                video: 1,
                owner: 5,
                shards: 2
            }
        );
        assert!(err.to_string().contains("video 1"));
    }
}
