//! Whole-system simulation: many clients against one broadcast plan.
//!
//! Periodic broadcast's selling point (§1) is that server load is
//! *independent of the request rate* — the channels burn the same
//! bandwidth whether one client or a million watch. What varies with load
//! is the client-side picture: how many sessions are active, what startup
//! latencies the population experiences, how much buffer the worst client
//! of the day needed. [`SystemSim`] drives a stream of arrivals through
//! the [`crate::engine`] and aggregates exactly those statistics.
//!
//! The simulation is scheme-agnostic: any [`ClientModel`] — a
//! [`crate::policy::ClientPolicy`] for the tune-at-start schemes, a
//! [`crate::trace::PausingClient`] for PPB's max-saving client, a
//! [`crate::trace::RecordingClient`] for Harmonic Broadcasting — plugs
//! into the same [`SystemSim`], because every model reduces its sessions
//! to the common [`crate::trace::SessionTrace`].

use sb_metrics::Recorder;
use serde::{Deserialize, Serialize};
use vod_units::{Mbits, Mbps, Minutes, TickScale, Ticks};

use sb_core::plan::{ChannelPlan, VideoId};

use crate::agenda::AgendaKind;
use crate::engine::Engine;
use crate::policy::PolicyError;
use crate::shard::SessionScalars;
use crate::sink::TraceSink;
use crate::trace::ClientModel;

/// One viewer request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time.
    pub at: Minutes,
    /// Requested video.
    pub video: VideoId,
}

/// Aggregate statistics from a system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemReport {
    /// Number of sessions served.
    pub sessions: usize,
    /// Mean startup latency over all sessions.
    pub mean_latency: Minutes,
    /// Median (p50) startup latency.
    pub p50_latency: Minutes,
    /// 95th-percentile startup latency.
    pub p95_latency: Minutes,
    /// Worst startup latency over all sessions.
    pub worst_latency: Minutes,
    /// Worst per-client peak buffer over all sessions.
    pub worst_buffer: Mbits,
    /// Largest number of simultaneously active sessions.
    pub peak_active_sessions: usize,
    /// Total client-hours of playback delivered.
    pub delivered_minutes: Minutes,
}

/// Engine events for the system run. `Arrive` carries the request's
/// position in the run's slice so the sharded executor can key captured
/// per-session scalars by a stable index. `Clone`/`Copy` so a pending
/// agenda can be frozen into a checkpoint (see [`crate::checkpoint`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ev {
    Arrive(usize),
    Finish,
}

/// The mutable accumulators of one simulation core — everything
/// [`SystemSim::handle_event`] updates per event and
/// [`finish_core`] folds into the final [`SystemReport`]. Extracted as a
/// struct (rather than a closure's captured locals) so the checkpointed
/// runner can freeze and restore mid-run state bit-exactly; the
/// statements that mutate it are shared verbatim between the historical
/// `run_core` path and the checkpoint path.
#[derive(Debug, Clone)]
pub(crate) struct CoreState {
    pub(crate) sessions: usize,
    pub(crate) latency_sum: f64,
    pub(crate) latencies: Vec<f64>,
    pub(crate) worst_latency: Minutes,
    pub(crate) worst_buffer: Mbits,
    pub(crate) active: usize,
    pub(crate) peak_active: usize,
    pub(crate) delivered: f64,
    pub(crate) error: Option<PolicyError>,
}

impl CoreState {
    pub(crate) fn new() -> Self {
        Self {
            sessions: 0,
            latency_sum: 0.0,
            latencies: Vec::new(),
            worst_latency: Minutes(0.0),
            worst_buffer: Mbits::ZERO,
            active: 0,
            peak_active: 0,
            delivered: 0.0,
            error: None,
        }
    }
}

/// Close out a run: emit the end-of-run metric events and fold the
/// accumulators into a [`SystemReport`] — the exact statements (and
/// float order) of the historical `run_core` epilogue.
pub(crate) fn finish_core(
    mut state: CoreState,
    stats: crate::engine::EngineStats,
    rec: &mut dyn Recorder,
) -> Result<(SystemReport, crate::engine::EngineStats), PolicyError> {
    if let Some(e) = state.error {
        return Err(e);
    }
    rec.gauge_max("sim_peak_active_sessions", &[], state.peak_active as f64);
    for (kind, n) in [
        ("scheduled", stats.scheduled),
        ("fired", stats.fired),
        ("cancelled", stats.cancelled),
    ] {
        rec.incr("engine_events_total", &[("kind", kind)], n);
    }
    state.latencies.sort_by(f64::total_cmp);
    let percentile = |q: f64| -> Minutes {
        if state.latencies.is_empty() {
            Minutes(0.0)
        } else {
            let idx = ((state.latencies.len() as f64 - 1.0) * q).round() as usize;
            Minutes(state.latencies[idx])
        }
    };
    Ok((
        SystemReport {
            sessions: state.sessions,
            mean_latency: Minutes(if state.sessions > 0 {
                state.latency_sum / state.sessions as f64
            } else {
                0.0
            }),
            p50_latency: percentile(0.5),
            p95_latency: percentile(0.95),
            worst_latency: state.worst_latency,
            worst_buffer: state.worst_buffer,
            peak_active_sessions: state.peak_active,
            delivered_minutes: Minutes(state.delivered),
        },
        stats,
    ))
}

/// A many-client simulation over a fixed broadcast plan.
pub struct SystemSim<'a> {
    plan: &'a ChannelPlan,
    display_rate: Mbps,
    model: Box<dyn ClientModel + 'a>,
    scale: TickScale,
}

impl<'a> SystemSim<'a> {
    /// Create a simulation against `plan`, driving clients through any
    /// [`ClientModel`].
    #[must_use]
    pub fn new(plan: &'a ChannelPlan, display_rate: Mbps, model: impl ClientModel + 'a) -> Self {
        Self {
            plan,
            display_rate,
            model: Box::new(model),
            scale: TickScale::default(),
        }
    }

    /// Use a non-default tick resolution.
    #[must_use]
    pub fn with_scale(mut self, scale: TickScale) -> Self {
        self.scale = scale;
        self
    }

    /// The one simulation core every public entry point funnels into.
    ///
    /// Drives `requests` through an engine on the `agenda` backend,
    /// streaming traces into `sink` and metric events into `rec`. When
    /// `capture` is given, additionally appends one [`SessionScalars`]
    /// per served session in engine (pop) order — the sharded executor's
    /// raw material; the captured floats are computed by the very
    /// statements that feed the report, so a later replay repeats
    /// bit-identical operations.
    pub(crate) fn run_core(
        &self,
        requests: &[Request],
        rec: &mut dyn Recorder,
        sink: &mut dyn TraceSink,
        mut capture: Option<&mut Vec<SessionScalars>>,
        agenda: AgendaKind,
    ) -> Result<(SystemReport, crate::engine::EngineStats), PolicyError> {
        let mut engine: Engine<Ev> = Engine::with_agenda(agenda);
        self.schedule_arrivals(&mut engine, requests);
        let index = self.plan.index();
        let mut state = CoreState::new();
        engine.run(|eng, at, ev| {
            self.handle_event(
                &mut state,
                eng,
                at,
                ev,
                &index,
                requests,
                rec,
                sink,
                &mut capture,
            );
        });
        let stats = engine.stats();
        finish_core(state, stats, rec)
    }

    /// Schedule every request's `Arrive` event, in slice order — the
    /// FIFO sequence numbers this assigns are part of the deterministic
    /// pop order a checkpoint must preserve.
    pub(crate) fn schedule_arrivals(&self, engine: &mut Engine<Ev>, requests: &[Request]) {
        for (pos, r) in requests.iter().enumerate() {
            engine.schedule_at(
                Ticks::ZERO + self.scale.duration_from_minutes(r.at),
                Ev::Arrive(pos),
            );
        }
    }

    /// Handle one engine event — the exact per-session statements (and
    /// float order) every execution path shares; bitwise identity between
    /// serial, sharded and checkpoint-resumed runs rests on this being
    /// the *only* copy of them. Returns `true` when a session was served
    /// (the checkpoint cadence counts served sessions).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_event(
        &self,
        state: &mut CoreState,
        eng: &mut Engine<Ev>,
        at: Ticks,
        ev: Ev,
        index: &sb_core::plan::PlanIndex<'_>,
        requests: &[Request],
        rec: &mut dyn Recorder,
        sink: &mut dyn TraceSink,
        capture: &mut Option<&mut Vec<SessionScalars>>,
    ) -> bool {
        match ev {
            Ev::Arrive(pos) => {
                if state.error.is_some() {
                    return false;
                }
                let r = requests[pos];
                match self
                    .model
                    .session_indexed(index, r.video, r.at, self.display_rate)
                {
                    Ok(s) => {
                        sink.accept(&s);
                        state.sessions += 1;
                        state.active += 1;
                        state.peak_active = state.peak_active.max(state.active);
                        let lat = s.startup_latency();
                        state.latency_sum += lat.value();
                        state.latencies.push(lat.value());
                        state.worst_latency = state.worst_latency.max(lat);
                        state.worst_buffer = state.worst_buffer.max(s.peak_buffer());
                        let end = s.playback_end();
                        let session_delivered = end.value() - s.playback_start.value();
                        state.delivered += session_delivered;
                        let video = r.video.0.to_string();
                        let vl: &[(&str, &str)] = &[("video", &video)];
                        rec.incr("sim_sessions_total", vl, 1);
                        rec.observe("sim_latency_minutes", vl, lat.value());
                        rec.observe("sim_peak_buffer_mbits", vl, s.peak_buffer().value());
                        for rx in &s.receptions {
                            let channel = rx.channel.to_string();
                            rec.observe(
                                "sim_channel_busy_minutes",
                                &[("channel", &channel)],
                                rx.duration.value(),
                            );
                        }
                        let end_at = Ticks::ZERO + self.scale.duration_from_minutes(end);
                        if let Some(cap) = capture.as_deref_mut() {
                            cap.push(SessionScalars {
                                tick: at.0,
                                idx: pos,
                                end_tick: end_at.0,
                                latency: lat.value(),
                                peak_buffer: s.peak_buffer().value(),
                                total_received: s.total_received().value(),
                                delivered: session_delivered,
                                max_streams: s.max_concurrent_receptions(),
                            });
                        }
                        eng.schedule_at(end_at, Ev::Finish);
                        true
                    }
                    Err(e) => {
                        state.error = Some(e);
                        false
                    }
                }
            }
            Ev::Finish => {
                state.active = state.active.saturating_sub(1);
                false
            }
        }
    }

    /// The checkpoint-aware shard core: the same event loop as
    /// [`SystemSim::run_core`] (sharing [`SystemSim::handle_event`]
    /// statement for statement), plus three hooks — resume from a decoded
    /// [`crate::checkpoint::CheckpointState`], take a checkpoint every
    /// `checkpoint_every` served sessions, and consult `probe` before
    /// each event and after each checkpoint so a supervisor can inject
    /// deterministic crashes.
    ///
    /// Always runs with a live [`StreamingFold`] *and* a
    /// [`SessionScalars`] capture: the fold serves the single-shard
    /// (serial-identical) outcome, the capture feeds the cross-shard
    /// ordered-replay merge.
    pub(crate) fn run_core_checkpointed(
        &self,
        requests: &[Request],
        agenda: AgendaKind,
        checkpoint_every: u64,
        resume: Option<crate::checkpoint::CheckpointState>,
        probe: &mut dyn FnMut(crate::checkpoint::Probe<'_>) -> crate::checkpoint::Verdict,
    ) -> Result<CoreRunOut, crate::checkpoint::ShardCrash> {
        use crate::checkpoint::{encode_state, Probe, ShardCrash, Verdict};
        assert!(checkpoint_every > 0, "validated by the supervisor");
        let (mut engine, mut state, mut fold, mut scalars, mut reg, mut sessions_done) =
            match resume {
                Some(cp) => (
                    Engine::thaw(cp.frozen, agenda),
                    cp.core,
                    crate::sink::StreamingFold::thaw(cp.fold),
                    cp.scalars,
                    sb_metrics::Registry::from_snapshot(&cp.snapshot),
                    cp.sessions_done,
                ),
                None => {
                    let mut engine: Engine<Ev> = Engine::with_agenda(agenda);
                    self.schedule_arrivals(&mut engine, requests);
                    (
                        engine,
                        CoreState::new(),
                        crate::sink::StreamingFold::new(),
                        Vec::new(),
                        sb_metrics::Registry::new(),
                        0u64,
                    )
                }
            };
        let index = self.plan.index();
        let mut checkpoints_taken = 0u64;
        while let Some((at, ev)) = engine.next() {
            if let Verdict::Kill = probe(Probe::Event { tick: at.0 }) {
                return Err(ShardCrash::killed(at.0, sessions_done, checkpoints_taken));
            }
            let mut cap = Some(&mut scalars);
            let served = self.handle_event(
                &mut state,
                &mut engine,
                at,
                ev,
                &index,
                requests,
                &mut reg,
                &mut fold,
                &mut cap,
            );
            if let Some(e) = state.error.take() {
                return Err(ShardCrash::Policy(e));
            }
            if served {
                sessions_done += 1;
                if sessions_done % checkpoint_every == 0 {
                    let cp = crate::checkpoint::CheckpointState {
                        frozen: engine.freeze(),
                        core: state.clone(),
                        fold: fold.freeze(),
                        scalars: scalars.clone(),
                        snapshot: reg.snapshot(),
                        sessions_done,
                    };
                    let encoded = encode_state(&cp);
                    checkpoints_taken += 1;
                    let index = sessions_done / checkpoint_every;
                    if let Verdict::Kill = probe(Probe::Checkpoint {
                        index,
                        encoded: &encoded,
                    }) {
                        return Err(ShardCrash::killed(at.0, sessions_done, checkpoints_taken));
                    }
                }
            }
        }
        let stats = engine.stats();
        let (report, stats) = finish_core(state, stats, &mut reg).map_err(ShardCrash::Policy)?;
        drop(fold); // the merge re-replays the fold from the scalar stream
        Ok(CoreRunOut {
            report,
            stats,
            scalars,
            snapshot: reg.snapshot(),
            checkpoints_taken,
        })
    }
}

/// What [`SystemSim::run_core_checkpointed`] returns on completion.
pub(crate) struct CoreRunOut {
    pub(crate) report: SystemReport,
    pub(crate) stats: crate::engine::EngineStats,
    pub(crate) scalars: Vec<SessionScalars>,
    pub(crate) snapshot: sb_metrics::Snapshot,
    pub(crate) checkpoints_taken: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ClientPolicy;
    use crate::run::RunConfig;
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;

    fn requests_grid(n: usize, videos: usize, span: f64) -> Vec<Request> {
        (0..n)
            .map(|i| Request {
                at: Minutes(span * i as f64 / n as f64),
                video: VideoId(i % videos),
            })
            .collect()
    }

    #[test]
    fn hundred_clients_all_bounded() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let scheme = Skyscraper::with_width(Width::Capped(52));
        let plan = scheme.plan(&cfg).unwrap();
        let metrics = scheme.metrics(&cfg).unwrap();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let requests = requests_grid(100, 10, 30.0);
        let report = sim.execute(RunConfig::new(&requests)).unwrap().summary;
        assert_eq!(report.sessions, 100);
        assert!(report.worst_latency.value() <= metrics.access_latency.value() + 1e-9);
        assert!(report.worst_buffer.value() <= metrics.buffer_requirement.value() * (1.0 + 1e-9));
        assert!(report.mean_latency.value() <= report.worst_latency.value());
        assert!(report.p50_latency <= report.p95_latency);
        assert!(report.p95_latency <= report.worst_latency);
        // All 100 two-hour sessions overlap within the 30-minute window.
        assert!(report.peak_active_sessions >= 90);
        assert!(report.delivered_minutes.value() > 100.0 * 119.0);
    }

    #[test]
    fn mean_latency_is_about_half_worst() {
        // Uniform arrivals against a periodic first fragment: the mean wait
        // approaches half the period.
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let scheme = Skyscraper::with_width(Width::Capped(2));
        let plan = scheme.plan(&cfg).unwrap();
        let d1 = scheme.metrics(&cfg).unwrap().access_latency.value();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let requests = requests_grid(500, 1, 50.0);
        let report = sim.execute(RunConfig::new(&requests)).unwrap().summary;
        let ratio = report.mean_latency.value() / d1;
        assert!((ratio - 0.5).abs() < 0.05, "mean/worst = {ratio:.3}");
    }

    #[test]
    fn recorded_run_matches_bare_run_and_fills_registry() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let scheme = Skyscraper::with_width(Width::Capped(52));
        let plan = scheme.plan(&cfg).unwrap();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let requests = requests_grid(60, 10, 30.0);
        let bare = sim.execute(RunConfig::new(&requests)).unwrap().summary;
        let mut reg = sb_metrics::Registry::new();
        let recorded = sim
            .execute(RunConfig::new(&requests).recorder(&mut reg))
            .unwrap()
            .summary;
        assert_eq!(bare, recorded, "recording must not steer the simulation");
        let snap = reg.snapshot();
        assert_eq!(snap.counter_total("sim_sessions_total"), 60);
        // 60 sessions over 10 videos → 10 per-video latency series.
        assert_eq!(snap.family("sim_latency_minutes").unwrap().series.len(), 10);
        // Every session's reception time lands on some channel series.
        assert!(snap.family("sim_channel_busy_minutes").is_some());
        assert_eq!(
            snap.counter("engine_events_total", "kind=fired"),
            Some(120),
            "one Arrive and one Finish per session"
        );
        let lat = snap.histogram("sim_latency_minutes", "video=0").unwrap();
        assert!(lat.count > 0 && lat.mean() <= bare.worst_latency.value());
    }

    #[test]
    fn sink_observes_without_steering_and_paths_agree_bitwise() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(52))
            .plan(&cfg)
            .unwrap();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let requests = requests_grid(60, 10, 30.0);
        let bare = sim.execute(RunConfig::new(&requests)).unwrap().summary;

        let mut fold = crate::sink::StreamingFold::new();
        let folded = sim
            .execute(RunConfig::new(&requests).sink(&mut fold))
            .unwrap()
            .summary;
        assert_eq!(bare, folded, "a sink must not steer the simulation");

        let mut collect = crate::sink::CollectTraces::new();
        let collected = sim
            .execute(RunConfig::new(&requests).sink(&mut collect))
            .unwrap()
            .summary;
        assert_eq!(bare, collected);
        assert_eq!(collect.traces.len(), 60);

        // The streaming fold and the materializing summary agree bitwise.
        let a = fold.finish();
        let b = collect.summarize();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        // And they agree with the engine-side report where they overlap.
        assert_eq!(a.sessions, bare.sessions);
        assert_eq!(a.mean_latency, bare.mean_latency);
        assert_eq!(a.p50_latency, bare.p50_latency);
        assert_eq!(a.p95_latency, bare.p95_latency);
        assert_eq!(a.worst_latency, bare.worst_latency);
        assert_eq!(a.worst_buffer, bare.worst_buffer);
        assert_eq!(a.delivered_minutes, bare.delivered_minutes);

        // The materializing path still feeds the packet-level replay.
        let e2e = crate::e2e::replay(&collect.traces[0], crate::e2e::PacketConfig::default());
        assert!(e2e.underruns.is_empty());
    }

    #[test]
    fn empty_request_stream() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::unbounded().plan(&cfg).unwrap();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let report = sim.execute(RunConfig::new(&[])).unwrap().summary;
        assert_eq!(report.sessions, 0);
        assert_eq!(report.peak_active_sessions, 0);
    }

    #[test]
    fn unknown_video_propagates() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::unbounded().plan(&cfg).unwrap();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let requests = [Request {
            at: Minutes(0.0),
            video: VideoId(77),
        }];
        let err = sim.execute(RunConfig::new(&requests)).unwrap_err();
        assert_eq!(err, PolicyError::UnknownVideo(VideoId(77)));
    }

    /// The heap and wheel backends must produce the same bytes end to
    /// end: report, streamed fold, snapshot and (serialized) stats.
    #[test]
    fn heap_and_wheel_backends_match_bitwise() {
        let cfg = SystemConfig::paper_defaults(Mbps(300.0));
        let plan = Skyscraper::with_width(Width::Capped(52))
            .plan(&cfg)
            .unwrap();
        let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
        let requests = requests_grid(48, 10, 20.0);
        let heap = sim.execute(RunConfig::new(&requests)).unwrap();
        let wheel = sim
            .execute(RunConfig::new(&requests).agenda(crate::agenda::AgendaKind::Wheel))
            .unwrap();
        assert_eq!(heap.summary, wheel.summary);
        assert_eq!(heap.fold, wheel.fold);
        assert_eq!(
            serde_json::to_string(&heap.snapshot).unwrap(),
            serde_json::to_string(&wheel.snapshot).unwrap()
        );
        assert_eq!(
            serde_json::to_string(&heap.stats).unwrap(),
            serde_json::to_string(&wheel.stats).unwrap(),
            "serialized stats must hide the backend"
        );
        assert!(heap.stats.wheel.cascades == 0 && heap.stats.wheel.peak_bucket == 0);
        assert!(
            wheel.stats.wheel.peak_bucket > 0,
            "wheel counters live in memory only"
        );
    }
}
