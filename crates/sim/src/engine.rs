//! A small, deterministic discrete-event engine.
//!
//! The broadcast side of the simulator is deterministic and computed in
//! closed form ([`crate::schedule`]), but whole-system questions — how many
//! clients are active at once, how a channel pool drains a request queue —
//! need an agenda-driven simulation. This engine provides exactly that:
//! a tick clock ([`vod_units::Ticks`]), a binary-heap agenda with
//! deterministic FIFO tie-breaking, and event cancellation.
//!
//! Events are user-defined payloads; the engine is generic and contains no
//! domain logic. Determinism matters for reproducible experiments: two
//! events scheduled for the same tick fire in the order they were
//! scheduled, regardless of heap internals.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use vod_units::{TickDuration, Ticks};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

struct Entry<E> {
    at: Ticks,
    seq: u64,
    id: EventId,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (then lowest seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Lifetime counters of an [`Engine`]'s agenda traffic.
///
/// Deterministic for a deterministic run, so they can be exported into a
/// metrics snapshot: `scheduled == fired + cancelled + pending` holds at
/// every instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events that fired.
    pub fired: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
}

/// The discrete-event engine: a clock plus an agenda of pending events.
pub struct Engine<E> {
    now: Ticks,
    seq: u64,
    heap: BinaryHeap<Entry<E>>,
    /// Ids of events that are scheduled and neither fired nor cancelled.
    /// Cancellation only removes from this set; the heap entry is dropped
    /// lazily when it surfaces.
    live: HashSet<EventId>,
    stats: EngineStats,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at tick zero with an empty agenda.
    #[must_use]
    pub fn new() -> Self {
        Self {
            now: Ticks::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            stats: EngineStats::default(),
        }
    }

    /// Lifetime agenda counters (scheduled / fired / cancelled).
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Schedule `payload` at the absolute tick `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the current time — the past is immutable.
    pub fn schedule_at(&mut self, at: Ticks, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let id = EventId(self.seq);
        self.heap.push(Entry {
            at,
            seq: self.seq,
            id,
            payload,
        });
        self.live.insert(id);
        self.seq += 1;
        self.stats.scheduled += 1;
        id
    }

    /// Schedule `payload` after a delay from now.
    pub fn schedule_in(&mut self, delay: TickDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Cancel a pending event. Returns `true` if it had not yet fired.
    ///
    /// Ids that never existed, already fired, or were already cancelled
    /// all return `false` and leave the agenda untouched — so
    /// [`Engine::pending`] stays exact no matter what callers pass in.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // Only the live set changes; the heap entry is dropped lazily when
        // it surfaces in `next`/`run_until`.
        let removed = self.live.remove(&id);
        if removed {
            self.stats.cancelled += 1;
        }
        removed
    }

    /// Pop the next event, advancing the clock to its timestamp.
    /// Returns `None` when the agenda is exhausted.
    ///
    /// Deliberately named like `Iterator::next`; the engine is not an
    /// `Iterator` only because handlers need `&mut self` back.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Ticks, E)> {
        while let Some(entry) = self.heap.pop() {
            if !self.live.remove(&entry.id) {
                continue; // cancelled; drop the stale entry
            }
            debug_assert!(entry.at >= self.now, "agenda went backwards");
            self.now = entry.at;
            self.stats.fired += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Run the agenda to exhaustion, calling `handler` for each event.
    /// The handler may schedule further events through the engine.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, Ticks, E)) {
        while let Some((at, payload)) = self.next() {
            handler(self, at, payload);
        }
    }
}

// `run` needs to pass `&mut self` into the handler while iterating; do the
// loop manually to satisfy the borrow checker.
impl<E> Engine<E> {
    /// Like [`Engine::run`] but stops once the clock passes `horizon`
    /// (events beyond it stay pending).
    pub fn run_until(&mut self, horizon: Ticks, mut handler: impl FnMut(&mut Self, Ticks, E)) {
        loop {
            // Peek for the horizon check without consuming.
            let next_at = loop {
                match self.heap.peek() {
                    Some(e) if !self.live.contains(&e.id) => {
                        self.heap.pop(); // cancelled; drop the stale entry
                    }
                    Some(e) => break Some(e.at),
                    None => break None,
                }
            };
            match next_at {
                Some(at) if at <= horizon => {
                    let (at, payload) = self.next().expect("peeked event exists");
                    handler(self, at, payload);
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fires_in_time_order_with_fifo_ties() {
        let mut eng: Engine<&'static str> = Engine::new();
        eng.schedule_at(Ticks(10), "b");
        eng.schedule_at(Ticks(5), "a");
        eng.schedule_at(Ticks(10), "c"); // same tick as "b", scheduled later
        let mut seen = Vec::new();
        eng.run(|_, at, p| seen.push((at.0, p)));
        assert_eq!(seen, vec![(5, "a"), (10, "b"), (10, "c")]);
    }

    #[test]
    fn handler_can_schedule_more() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule_at(Ticks(1), 0);
        let mut fired = Vec::new();
        eng.run(|eng, _, n| {
            fired.push(n);
            if n < 4 {
                eng.schedule_in(TickDuration(2), n + 1);
            }
        });
        assert_eq!(fired, vec![0, 1, 2, 3, 4]);
        assert_eq!(eng.now(), Ticks(9));
    }

    #[test]
    fn cancellation() {
        let mut eng: Engine<&'static str> = Engine::new();
        let a = eng.schedule_at(Ticks(1), "a");
        eng.schedule_at(Ticks(2), "b");
        assert!(eng.cancel(a));
        assert!(!eng.cancel(a), "double-cancel reports false");
        assert_eq!(eng.pending(), 1);
        let mut seen = Vec::new();
        eng.run(|_, _, p| seen.push(p));
        assert_eq!(seen, vec!["b"]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut eng: Engine<()> = Engine::new();
        assert!(!eng.cancel(EventId(42)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_pending_stays_exact() {
        // Regression: cancelling an id that already fired used to be
        // accepted, leaking a tombstone that made `pending()` underflow
        // once the agenda drained.
        let mut eng: Engine<&'static str> = Engine::new();
        let a = eng.schedule_at(Ticks(1), "a");
        eng.schedule_at(Ticks(2), "b");
        assert_eq!(eng.pending(), 2);
        let (_, p) = eng.next().expect("a fires");
        assert_eq!(p, "a");
        assert!(!eng.cancel(a), "cancelling a fired event must fail");
        assert_eq!(eng.pending(), 1, "the refused cancel must not count");
        let (_, p) = eng.next().expect("b fires");
        assert_eq!(p, "b");
        assert_eq!(eng.pending(), 0);
        assert!(eng.next().is_none());
        // And cancelling after exhaustion is still a clean no-op.
        assert!(!eng.cancel(a));
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn cancelled_event_skipped_by_run_until_peek() {
        let mut eng: Engine<u8> = Engine::new();
        let a = eng.schedule_at(Ticks(1), 1);
        eng.schedule_at(Ticks(2), 2);
        eng.schedule_at(Ticks(100), 3);
        assert!(eng.cancel(a));
        let mut seen = Vec::new();
        eng.run_until(Ticks(50), |_, _, p| seen.push(p));
        assert_eq!(seen, vec![2]);
        assert_eq!(eng.pending(), 1);
    }

    #[test]
    fn run_until_leaves_future_events() {
        let mut eng: Engine<u8> = Engine::new();
        eng.schedule_at(Ticks(1), 1);
        eng.schedule_at(Ticks(100), 2);
        let mut seen = Vec::new();
        eng.run_until(Ticks(50), |_, _, p| seen.push(p));
        assert_eq!(seen, vec![1]);
        assert_eq!(eng.pending(), 1);
        assert_eq!(eng.now(), Ticks(1));
    }

    #[test]
    fn stats_conserve_scheduled_events() {
        let mut eng: Engine<u8> = Engine::new();
        let a = eng.schedule_at(Ticks(1), 1);
        eng.schedule_at(Ticks(2), 2);
        eng.schedule_at(Ticks(9), 3);
        assert!(eng.cancel(a));
        assert!(!eng.cancel(a), "double-cancel must not double-count");
        eng.run_until(Ticks(5), |_, _, _| {});
        let s = eng.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.fired, 1);
        assert_eq!(
            s.scheduled,
            s.fired + s.cancelled + eng.pending() as u64,
            "conservation: every scheduled event is fired, cancelled or pending"
        );
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule_at(Ticks(5), ());
        let _ = eng.next();
        eng.schedule_at(Ticks(3), ());
    }

    proptest! {
        /// Events always replay in non-decreasing time order with FIFO
        /// tie-breaking, whatever the insertion order.
        #[test]
        fn replay_order_invariant(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut eng: Engine<usize> = Engine::new();
            for (i, &t) in times.iter().enumerate() {
                eng.schedule_at(Ticks(t), i);
            }
            let mut fired: Vec<(u64, usize)> = Vec::new();
            eng.run(|_, at, i| fired.push((at.0, i)));
            prop_assert_eq!(fired.len(), times.len());
            for w in fired.windows(2) {
                prop_assert!(w[0].0 <= w[1].0);
                if w[0].0 == w[1].0 {
                    // FIFO within a tick: insertion (payload) order.
                    prop_assert!(w[0].1 < w[1].1);
                }
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        #[test]
        fn cancellation_subset(times in proptest::collection::vec(0u64..100, 1..50), mask in proptest::collection::vec(any::<bool>(), 50)) {
            let mut eng: Engine<usize> = Engine::new();
            let ids: Vec<_> = times.iter().enumerate().map(|(i, &t)| eng.schedule_at(Ticks(t), i)).collect();
            let mut expect: Vec<usize> = Vec::new();
            for (i, id) in ids.iter().enumerate() {
                if mask[i % mask.len()] {
                    eng.cancel(*id);
                } else {
                    expect.push(i);
                }
            }
            let mut fired = Vec::new();
            eng.run(|_, _, i| fired.push(i));
            fired.sort_unstable();
            expect.sort_unstable();
            prop_assert_eq!(fired, expect);
        }
    }
}
