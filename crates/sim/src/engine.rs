//! A small, deterministic discrete-event engine.
//!
//! The broadcast side of the simulator is deterministic and computed in
//! closed form ([`crate::schedule`]), but whole-system questions — how many
//! clients are active at once, how a channel pool drains a request queue —
//! need an agenda-driven simulation. This engine provides exactly that:
//! a tick clock ([`vod_units::Ticks`]), a pluggable agenda backend
//! ([`crate::agenda`]) with deterministic FIFO tie-breaking, and event
//! cancellation.
//!
//! Events are user-defined payloads; the engine is generic and contains no
//! domain logic. Determinism matters for reproducible experiments: two
//! events scheduled for the same tick fire in the order they were
//! scheduled, regardless of backend internals — the binary heap and the
//! hierarchical timing wheel ([`AgendaKind`]) yield bitwise-identical
//! runs.
//!
//! ## The agenda: slab slots, generations, amortized compaction
//!
//! Event liveness is tracked in a **slab**: every scheduled event owns a
//! slot (reused through a free list), and an [`EventId`] packs the slot
//! index with the slot's **generation** — bumped every time the slot is
//! freed — so a stale id can never alias a later event that happens to
//! reuse the slot. Lookup, scheduling and cancellation are all O(1) with
//! no hashing. The slab lives in the engine, *outside* the backend: a
//! backend is a pure `(tick, seq)` priority queue and surfaces stale
//! entries like any others, which is exactly what keeps backends
//! interchangeable (see [`crate::agenda`]).
//!
//! Cancellation is **lazy**: the agenda entry of a cancelled event stays
//! in the store until it surfaces (or a compaction removes it). Lazy
//! alone is unbounded — a workload that cancels most of what it schedules
//! (fault scripts, allocator drain-swaps) grows the agenda forever even
//! though almost nothing in it is live. So the engine **compacts**:
//! whenever the stale entries outnumber the live ones (past a small floor
//! that keeps tiny agendas out of the machinery), the store drops its
//! stale entries in O(n). Every stale entry is paid for at most twice —
//! once when cancelled, once when compacted away — so the amortized cost
//! stays O(log n) per operation and the agenda length is bounded by
//! roughly 2× the live event count at all times (see
//! [`Engine::agenda_len`]).

use vod_units::{TickDuration, Ticks};

use crate::agenda::{Agenda, AgendaEntry, AgendaKind, HeapAgenda, WheelAgenda, WheelStats};

/// Handle to a scheduled event, usable for cancellation.
///
/// Packs a slab slot index with that slot's generation at scheduling
/// time, so ids stay valid (as *rejected*, not misdelivered) after the
/// slot is reused by a later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    pub(crate) fn new(slot: u32, gen: u32) -> Self {
        Self(u64::from(gen) << 32 | u64::from(slot))
    }

    fn slot(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// One slab slot: the current generation plus whether an event lives here.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Bumped on every free; an agenda entry is live iff its recorded
    /// generation matches.
    gen: u32,
    /// `true` while a scheduled, un-fired, un-cancelled event owns the
    /// slot.
    occupied: bool,
}

/// Lifetime counters of an [`Engine`]'s agenda traffic.
///
/// Deterministic for a deterministic run, so they can be exported into a
/// metrics snapshot: `scheduled == fired + cancelled + pending` holds at
/// every instant, on every backend.
///
/// The serialized form deliberately omits [`EngineStats::wheel`]: those
/// counters describe the backend, not the simulation, and artifacts must
/// stay byte-identical whichever backend produced them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Events that fired.
    pub fired: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
    /// High-water mark of the agenda length (live + stale entries) —
    /// the engine's memory footprint in events.
    pub peak_agenda: u64,
    /// Store rebuilds that purged stale (lazily-cancelled) entries.
    pub compactions: u64,
    /// Wheel-backend counters; all zero on the heap backend. Excluded
    /// from the serialized form (see the type docs).
    pub wheel: WheelStats,
}

impl serde::Serialize for EngineStats {
    fn serialize(&self) -> serde::Value {
        let u = |v: &u64| serde::Serialize::serialize(v);
        serde::Value::Object(vec![
            ("scheduled".to_string(), u(&self.scheduled)),
            ("fired".to_string(), u(&self.fired)),
            ("cancelled".to_string(), u(&self.cancelled)),
            ("peak_agenda".to_string(), u(&self.peak_agenda)),
            ("compactions".to_string(), u(&self.compactions)),
        ])
    }
}

impl serde::Deserialize for EngineStats {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected EngineStats object"))?;
        let u = |name: &str| -> Result<u64, serde::Error> {
            <u64 as serde::Deserialize>::deserialize(serde::field(obj, name))
        };
        Ok(Self {
            scheduled: u("scheduled")?,
            fired: u("fired")?,
            cancelled: u("cancelled")?,
            peak_agenda: u("peak_agenda")?,
            compactions: u("compactions")?,
            wheel: WheelStats::default(),
        })
    }
}

/// Agendas smaller than this never compact: below the floor the stale
/// entries cost less than the rebuild bookkeeping.
pub(crate) const COMPACT_FLOOR: usize = 32;

/// A backend-independent still image of an [`Engine`]: the clock, the
/// FIFO sequence counter, the lifetime stats, and every *live* pending
/// entry in canonical `(at, seq)` order.
///
/// This is the checkpoint/restore primitive. The frozen form deliberately
/// forgets backend internals (heap layout, wheel cursors) and slab
/// bookkeeping (slot indices, generations, free lists): none of them are
/// observable through the engine's pop order or serialized stats, so a
/// freeze taken under one [`AgendaKind`] thaws under the other and the
/// resumed run stays bitwise identical either way.
#[derive(Debug, Clone)]
pub struct FrozenEngine<E> {
    /// The clock at freeze time.
    pub now: Ticks,
    /// Next schedule sequence number (monotonic, never reused).
    pub seq: u64,
    /// Lifetime counters at freeze time ([`EngineStats::wheel`] zeroed —
    /// backend counters are not part of the simulation state).
    pub stats: EngineStats,
    /// Live pending entries as `(at, seq, payload)`, sorted by
    /// `(at, seq)`.
    pub entries: Vec<(Ticks, u64, E)>,
}

/// The event store behind an engine: statically dispatched for the two
/// built-in backends, boxed for caller-supplied ones.
enum Backend<E> {
    Heap(HeapAgenda<E>),
    Wheel(WheelAgenda<E>),
    Custom(Box<dyn Agenda<E>>),
}

impl<E> Backend<E> {
    fn push(&mut self, entry: AgendaEntry<E>) {
        match self {
            Backend::Heap(a) => a.push(entry),
            Backend::Wheel(a) => a.push(entry),
            Backend::Custom(a) => a.push(entry),
        }
    }

    fn pop(&mut self) -> Option<AgendaEntry<E>> {
        match self {
            Backend::Heap(a) => a.pop(),
            Backend::Wheel(a) => a.pop(),
            Backend::Custom(a) => a.pop(),
        }
    }

    fn peek(&mut self) -> Option<(Ticks, EventId)> {
        match self {
            Backend::Heap(a) => a.peek(),
            Backend::Wheel(a) => a.peek(),
            Backend::Custom(a) => a.peek(),
        }
    }

    fn len(&self) -> usize {
        match self {
            Backend::Heap(a) => Agenda::len(a),
            Backend::Wheel(a) => Agenda::len(a),
            Backend::Custom(a) => a.len(),
        }
    }

    fn retain(&mut self, keep: &mut dyn FnMut(&AgendaEntry<E>) -> bool) {
        match self {
            Backend::Heap(a) => a.retain(keep),
            Backend::Wheel(a) => a.retain(keep),
            Backend::Custom(a) => a.retain(keep),
        }
    }

    fn wheel_stats(&self) -> WheelStats {
        match self {
            Backend::Heap(a) => a.wheel_stats(),
            Backend::Wheel(a) => a.wheel_stats(),
            Backend::Custom(a) => a.wheel_stats(),
        }
    }
}

/// The discrete-event engine: a clock plus an agenda of pending events.
pub struct Engine<E> {
    now: Ticks,
    /// Monotonic FIFO tie-break counter (never reused, unlike slots).
    seq: u64,
    backend: Backend<E>,
    /// Slab of event slots; `EventId`s index into it.
    slots: Vec<Slot>,
    /// Freed slot indices available for reuse.
    free: Vec<u32>,
    /// Live (scheduled, neither fired nor cancelled) events.
    live: usize,
    /// Cancelled events whose agenda entries have not yet been dropped.
    stale: usize,
    stats: EngineStats,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// A fresh engine at tick zero with an empty agenda on the default
    /// (heap) backend.
    #[must_use]
    pub fn new() -> Self {
        Self::with_agenda(AgendaKind::Heap)
    }

    /// A fresh engine on the chosen built-in backend. Runs are bitwise
    /// identical whichever `kind` is passed; only wall-clock speed and
    /// [`EngineStats::wheel`] differ.
    #[must_use]
    pub fn with_agenda(kind: AgendaKind) -> Self {
        Self::from_backend(match kind {
            AgendaKind::Heap => Backend::Heap(HeapAgenda::new()),
            AgendaKind::Wheel => Backend::Wheel(WheelAgenda::new()),
        })
    }

    /// A fresh engine on a caller-supplied [`Agenda`] backend. The
    /// backend must honour the trait's `(at, seq)` ordering contract for
    /// the engine's determinism guarantees to hold.
    #[must_use]
    pub fn with_backend(backend: Box<dyn Agenda<E>>) -> Self {
        Self::from_backend(Backend::Custom(backend))
    }

    fn from_backend(backend: Backend<E>) -> Self {
        Self {
            now: Ticks::ZERO,
            seq: 0,
            backend,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            stale: 0,
            stats: EngineStats::default(),
        }
    }

    /// Lifetime agenda counters (scheduled / fired / cancelled / peaks),
    /// including the backend's [`WheelStats`].
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats;
        s.wheel = self.backend.wheel_stats();
        s
    }

    /// The current simulation time.
    #[must_use]
    pub fn now(&self) -> Ticks {
        self.now
    }

    /// Number of pending (non-cancelled) events. O(1), exact across
    /// cancellations and compactions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.live
    }

    /// Current agenda length: live entries plus stale entries awaiting
    /// lazy removal. Compaction keeps this bounded by roughly
    /// `2 × pending()` (plus the compaction floor).
    #[must_use]
    pub fn agenda_len(&self) -> usize {
        self.backend.len()
    }

    /// Whether `id` still names a scheduled, un-fired, un-cancelled
    /// event.
    fn id_live(&self, id: EventId) -> bool {
        let s = self.slots[id.slot() as usize];
        s.occupied && s.gen == id.gen()
    }

    /// Free `slot`, invalidating every outstanding reference to it.
    fn release(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.occupied = false;
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Schedule `payload` at the absolute tick `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the current time — the past is immutable.
    pub fn schedule_at(&mut self, at: Ticks, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize].occupied = true;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("agenda outgrew u32 slots");
                self.slots.push(Slot {
                    gen: 0,
                    occupied: true,
                });
                slot
            }
        };
        let gen = self.slots[slot as usize].gen;
        let id = EventId::new(slot, gen);
        self.backend.push(AgendaEntry {
            at,
            seq: self.seq,
            id,
            payload,
        });
        self.live += 1;
        self.seq += 1;
        self.stats.scheduled += 1;
        self.stats.peak_agenda = self.stats.peak_agenda.max(self.backend.len() as u64);
        id
    }

    /// Schedule `payload` after a delay from now.
    pub fn schedule_in(&mut self, delay: TickDuration, payload: E) -> EventId {
        self.schedule_at(self.now + delay, payload)
    }

    /// Capture the engine's simulation-visible state as a
    /// [`FrozenEngine`]: clock, sequence counter, stats, and the live
    /// pending entries in canonical `(at, seq)` order. Stale (cancelled)
    /// entries are not captured — they are an implementation artifact of
    /// lazy cancellation, already counted in `stats.cancelled`.
    ///
    /// Takes `&mut self` because enumerating a backend goes through its
    /// `retain` hook; the agenda itself is left untouched (every entry is
    /// kept) and the engine keeps running afterwards.
    #[must_use]
    pub fn freeze(&mut self) -> FrozenEngine<E>
    where
        E: Clone,
    {
        let mut entries: Vec<(Ticks, u64, E)> = Vec::with_capacity(self.live);
        let slots = &self.slots;
        self.backend.retain(&mut |e: &AgendaEntry<E>| {
            let s = slots[e.id.slot() as usize];
            if s.occupied && s.gen == e.id.gen() {
                entries.push((e.at, e.seq, e.payload.clone()));
            }
            true
        });
        entries.sort_by_key(|&(at, seq, _)| (at, seq));
        debug_assert_eq!(entries.len(), self.live, "freeze must capture the live set");
        let mut stats = self.stats;
        stats.wheel = WheelStats::default();
        FrozenEngine {
            now: self.now,
            seq: self.seq,
            stats,
            entries,
        }
    }

    /// Rebuild an engine from a [`FrozenEngine`] on the chosen backend.
    ///
    /// The thawed engine is in *canonical* form — a fresh slab with one
    /// slot per pending entry and an empty free list — which is
    /// indistinguishable from the original through every observable:
    /// pop order (`(at, seq)` is preserved verbatim), `pending()`,
    /// `stats()`, and the serialized artifacts derived from them. A
    /// freeze taken under [`AgendaKind::Heap`] may therefore be thawed
    /// under [`AgendaKind::Wheel`] and vice versa.
    #[must_use]
    pub fn thaw(frozen: FrozenEngine<E>, kind: AgendaKind) -> Self {
        let mut eng = Self::with_agenda(kind);
        eng.now = frozen.now;
        eng.seq = frozen.seq;
        eng.stats = frozen.stats;
        for (i, (at, seq, payload)) in frozen.entries.into_iter().enumerate() {
            let slot = u32::try_from(i).expect("agenda outgrew u32 slots");
            eng.slots.push(Slot {
                gen: 0,
                occupied: true,
            });
            eng.backend.push(AgendaEntry {
                at,
                seq,
                id: EventId::new(slot, 0),
                payload,
            });
            eng.live += 1;
        }
        eng
    }

    /// Cancel a pending event. Returns `true` if it had not yet fired.
    ///
    /// Ids that never existed, already fired, or were already cancelled
    /// all return `false` and leave the agenda untouched — so
    /// [`Engine::pending`] stays exact no matter what callers pass in.
    ///
    /// The agenda entry is dropped lazily — either when it surfaces in
    /// [`Engine::next`]/[`Engine::run_until`] or when stale entries
    /// outnumber live ones and the agenda compacts.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let (slot, gen) = (id.slot(), id.gen());
        match self.slots.get(slot as usize) {
            Some(s) if s.occupied && s.gen == gen => {}
            _ => return false,
        }
        self.release(slot);
        self.stale += 1;
        self.stats.cancelled += 1;
        self.maybe_compact();
        true
    }

    /// Drop the store's stale entries once they outnumber the live ones.
    /// O(current agenda); amortized O(1) per cancel, because at least
    /// half the entries paid for by the rebuild are discarded by it.
    fn maybe_compact(&mut self) {
        if self.stale <= self.live || self.backend.len() < COMPACT_FLOOR {
            return;
        }
        let slots = &self.slots;
        self.backend.retain(&mut |e: &AgendaEntry<E>| {
            let s = slots[e.id.slot() as usize];
            s.occupied && s.gen == e.id.gen()
        });
        debug_assert_eq!(
            self.backend.len(),
            self.live,
            "compaction must keep exactly the live set"
        );
        self.stale = 0;
        self.stats.compactions += 1;
    }

    /// Pop the next event, advancing the clock to its timestamp.
    /// Returns `None` when the agenda is exhausted.
    ///
    /// Deliberately named like `Iterator::next`; the engine is not an
    /// `Iterator` only because handlers need `&mut self` back.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Ticks, E)> {
        while let Some(entry) = self.backend.pop() {
            if !self.id_live(entry.id) {
                self.stale -= 1;
                continue; // cancelled; drop the stale entry
            }
            self.release(entry.id.slot());
            debug_assert!(entry.at >= self.now, "agenda went backwards");
            self.now = entry.at;
            self.stats.fired += 1;
            return Some((entry.at, entry.payload));
        }
        None
    }

    /// Run the agenda to exhaustion, calling `handler` for each event.
    /// The handler may schedule further events through the engine.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, Ticks, E)) {
        while let Some((at, payload)) = self.next() {
            handler(self, at, payload);
        }
    }
}

// `run` needs to pass `&mut self` into the handler while iterating; do the
// loop manually to satisfy the borrow checker.
impl<E> Engine<E> {
    /// Like [`Engine::run`] but stops once the clock passes `horizon`
    /// (events beyond it stay pending).
    pub fn run_until(&mut self, horizon: Ticks, mut handler: impl FnMut(&mut Self, Ticks, E)) {
        loop {
            // Peek for the horizon check without consuming.
            let next_at = loop {
                match self.backend.peek() {
                    Some((at, id)) => {
                        if self.id_live(id) {
                            break Some(at);
                        }
                        self.backend.pop(); // cancelled; drop the stale entry
                        self.stale -= 1;
                    }
                    None => break None,
                }
            };
            match next_at {
                Some(at) if at <= horizon => {
                    let (at, payload) = self.next().expect("peeked event exists");
                    handler(self, at, payload);
                }
                _ => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fires_in_time_order_with_fifo_ties() {
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<&'static str> = Engine::with_agenda(kind);
            eng.schedule_at(Ticks(10), "b");
            eng.schedule_at(Ticks(5), "a");
            eng.schedule_at(Ticks(10), "c"); // same tick as "b", scheduled later
            let mut seen = Vec::new();
            eng.run(|_, at, p| seen.push((at.0, p)));
            assert_eq!(seen, vec![(5, "a"), (10, "b"), (10, "c")], "{kind:?}");
        }
    }

    #[test]
    fn handler_can_schedule_more() {
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<u32> = Engine::with_agenda(kind);
            eng.schedule_at(Ticks(1), 0);
            let mut fired = Vec::new();
            eng.run(|eng, _, n| {
                fired.push(n);
                if n < 4 {
                    eng.schedule_in(TickDuration(2), n + 1);
                }
            });
            assert_eq!(fired, vec![0, 1, 2, 3, 4]);
            assert_eq!(eng.now(), Ticks(9));
        }
    }

    #[test]
    fn cancellation() {
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<&'static str> = Engine::with_agenda(kind);
            let a = eng.schedule_at(Ticks(1), "a");
            eng.schedule_at(Ticks(2), "b");
            assert!(eng.cancel(a));
            assert!(!eng.cancel(a), "double-cancel reports false");
            assert_eq!(eng.pending(), 1);
            let mut seen = Vec::new();
            eng.run(|_, _, p| seen.push(p));
            assert_eq!(seen, vec!["b"]);
        }
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut eng: Engine<()> = Engine::new();
        assert!(!eng.cancel(EventId::new(42, 0)));
        assert!(!eng.cancel(EventId::new(0, 7)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_pending_stays_exact() {
        // Regression: cancelling an id that already fired used to be
        // accepted, leaking a tombstone that made `pending()` underflow
        // once the agenda drained.
        let mut eng: Engine<&'static str> = Engine::new();
        let a = eng.schedule_at(Ticks(1), "a");
        eng.schedule_at(Ticks(2), "b");
        assert_eq!(eng.pending(), 2);
        let (_, p) = eng.next().expect("a fires");
        assert_eq!(p, "a");
        assert!(!eng.cancel(a), "cancelling a fired event must fail");
        assert_eq!(eng.pending(), 1, "the refused cancel must not count");
        let (_, p) = eng.next().expect("b fires");
        assert_eq!(p, "b");
        assert_eq!(eng.pending(), 0);
        assert!(eng.next().is_none());
        // And cancelling after exhaustion is still a clean no-op.
        assert!(!eng.cancel(a));
        assert_eq!(eng.pending(), 0);
    }

    #[test]
    fn stale_id_does_not_cancel_a_slot_reuser() {
        // Slot reuse must not let an old id reach the new tenant: the
        // generation in the id has to mismatch.
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<&'static str> = Engine::with_agenda(kind);
            let a = eng.schedule_at(Ticks(1), "a");
            assert!(eng.cancel(a));
            // "b" reuses slot 0 at a later generation.
            let b = eng.schedule_at(Ticks(2), "b");
            assert!(!eng.cancel(a), "the stale id must not hit b");
            assert_eq!(eng.pending(), 1);
            let mut seen = Vec::new();
            eng.run(|_, _, p| seen.push(p));
            assert_eq!(seen, vec!["b"]);
            assert!(!eng.cancel(b), "b already fired");
        }
    }

    #[test]
    fn cancelled_event_skipped_by_run_until_peek() {
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<u8> = Engine::with_agenda(kind);
            let a = eng.schedule_at(Ticks(1), 1);
            eng.schedule_at(Ticks(2), 2);
            eng.schedule_at(Ticks(100), 3);
            assert!(eng.cancel(a));
            let mut seen = Vec::new();
            eng.run_until(Ticks(50), |_, _, p| seen.push(p));
            assert_eq!(seen, vec![2]);
            assert_eq!(eng.pending(), 1);
        }
    }

    #[test]
    fn run_until_leaves_future_events() {
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<u8> = Engine::with_agenda(kind);
            eng.schedule_at(Ticks(1), 1);
            eng.schedule_at(Ticks(100), 2);
            let mut seen = Vec::new();
            eng.run_until(Ticks(50), |_, _, p| seen.push(p));
            assert_eq!(seen, vec![1]);
            assert_eq!(eng.pending(), 1);
            assert_eq!(eng.now(), Ticks(1));
        }
    }

    #[test]
    fn schedule_behind_a_peeked_cursor_still_fires_in_order() {
        // run_until's peek may advance the wheel cursor past the engine
        // clock; a later schedule between the two must still fire first
        // (the wheel's fallback path).
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<u8> = Engine::with_agenda(kind);
            eng.schedule_at(Ticks(10), 1);
            eng.schedule_at(Ticks(1000), 3);
            let mut seen = Vec::new();
            eng.run_until(Ticks(500), |_, _, p| seen.push(p));
            assert_eq!(seen, vec![1]);
            assert_eq!(eng.now(), Ticks(10));
            // Behind the peeked-at 1000 tick, ahead of the clock.
            eng.schedule_at(Ticks(200), 2);
            eng.run(|_, _, p| seen.push(p));
            assert_eq!(seen, vec![1, 2, 3], "{kind:?}");
        }
    }

    #[test]
    fn stats_conserve_scheduled_events() {
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let mut eng: Engine<u8> = Engine::with_agenda(kind);
            let a = eng.schedule_at(Ticks(1), 1);
            eng.schedule_at(Ticks(2), 2);
            eng.schedule_at(Ticks(9), 3);
            assert!(eng.cancel(a));
            assert!(!eng.cancel(a), "double-cancel must not double-count");
            eng.run_until(Ticks(5), |_, _, _| {});
            let s = eng.stats();
            assert_eq!(s.scheduled, 3);
            assert_eq!(s.cancelled, 1);
            assert_eq!(s.fired, 1);
            assert_eq!(s.peak_agenda, 3);
            assert_eq!(
                s.scheduled,
                s.fired + s.cancelled + eng.pending() as u64,
                "conservation: every scheduled event is fired, cancelled or pending"
            );
        }
    }

    #[test]
    fn engine_stats_serialization_omits_wheel_counters() {
        let mut eng: Engine<u8> = Engine::with_agenda(AgendaKind::Wheel);
        eng.schedule_at(Ticks(64 * 64 + 5), 1); // forces a cascade later
        eng.run(|_, _, _| {});
        let s = eng.stats();
        assert!(s.wheel.cascades > 0, "counters populated in memory");
        let json = serde_json::to_string(&s).unwrap();
        assert!(
            !json.contains("wheel") && !json.contains("cascades"),
            "backend counters must not reach artifacts: {json}"
        );
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.wheel, WheelStats::default());
        assert_eq!(back.scheduled, s.scheduled);
    }

    #[test]
    fn cancel_heavy_agenda_stays_bounded() {
        // The unbounded-growth regression: schedule/cancel churn with a
        // small live population. Before compaction the store kept every
        // cancelled entry until its (far-future) timestamp surfaced —
        // 40 000 cancellations meant a 40 000-entry agenda. Now the
        // agenda length must stay within ~2× the live count, on both
        // backends.
        for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
            let live_target = 100usize;
            let mut eng: Engine<u64> = Engine::with_agenda(kind);
            let mut ids = std::collections::VecDeque::new();
            for i in 0..live_target as u64 {
                ids.push_back(eng.schedule_at(Ticks(1_000_000 + i), i));
            }
            let mut cancels = 0u64;
            for i in 0..40_000u64 {
                let id = ids.pop_front().expect("live population maintained");
                assert!(eng.cancel(id));
                cancels += 1;
                ids.push_back(eng.schedule_at(Ticks(2_000_000 + i), i));
                assert!(
                    eng.agenda_len() <= 2 * live_target + COMPACT_FLOOR,
                    "agenda {} after {} cancels",
                    eng.agenda_len(),
                    cancels
                );
            }
            assert_eq!(cancels, 40_000);
            let s = eng.stats();
            assert!(s.compactions > 0, "churn at this scale must compact");
            assert!(
                s.peak_agenda <= (2 * live_target + COMPACT_FLOOR) as u64,
                "peak agenda {}",
                s.peak_agenda
            );
            assert_eq!(eng.pending(), live_target);
            assert_eq!(s.scheduled, s.fired + s.cancelled + eng.pending() as u64);
            // The survivors still fire in order.
            let mut fired = 0usize;
            eng.run(|_, _, _| fired += 1);
            assert_eq!(fired, live_target);
        }
    }

    #[test]
    fn freeze_thaw_preserves_order_stats_and_clock_across_backends() {
        // Run half the agenda, freeze, thaw under every backend pairing,
        // and check the tail fires identically (order, clock, stats).
        for src in [AgendaKind::Heap, AgendaKind::Wheel] {
            for dst in [AgendaKind::Heap, AgendaKind::Wheel] {
                let mut reference: Engine<u32> = Engine::with_agenda(AgendaKind::Heap);
                let mut eng: Engine<u32> = Engine::with_agenda(src);
                for e in [&mut reference, &mut eng] {
                    e.schedule_at(Ticks(5), 0);
                    e.schedule_at(Ticks(1), 1);
                    e.schedule_at(Ticks(5), 2); // same tick as 0, later seq
                    e.schedule_at(Ticks(9), 3);
                    let x = e.schedule_at(Ticks(7), 4);
                    assert!(e.cancel(x));
                    let _ = e.next(); // fires 1 at tick 1
                }
                let frozen = eng.freeze();
                assert_eq!(frozen.now, Ticks(1));
                assert_eq!(frozen.entries.len(), 3, "live entries only");
                let mut thawed = Engine::thaw(frozen, dst);
                assert_eq!(thawed.pending(), 3);
                assert_eq!(thawed.now(), Ticks(1));
                // Tail replay matches the uninterrupted reference.
                let mut a = Vec::new();
                let mut b = Vec::new();
                reference.run(|_, at, p| a.push((at.0, p)));
                thawed.run(|_, at, p| b.push((at.0, p)));
                assert_eq!(a, b, "{src:?} -> {dst:?}");
                let (rs, ts) = (reference.stats(), thawed.stats());
                assert_eq!(
                    (rs.scheduled, rs.fired, rs.cancelled),
                    (ts.scheduled, ts.fired, ts.cancelled)
                );
                assert_eq!(reference.now(), thawed.now());
                // The thawed engine keeps scheduling with fresh seqs.
                thawed.schedule_at(thawed.now(), 9);
                assert_eq!(thawed.pending(), 1);
            }
        }
    }

    #[test]
    fn freeze_is_non_destructive() {
        let mut eng: Engine<u8> = Engine::with_agenda(AgendaKind::Wheel);
        eng.schedule_at(Ticks(3), 1);
        eng.schedule_at(Ticks(1), 2);
        let frozen = eng.freeze();
        assert_eq!(frozen.entries.len(), 2);
        // The engine itself is untouched by the freeze.
        let mut seen = Vec::new();
        eng.run(|_, _, p| seen.push(p));
        assert_eq!(seen, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule_at(Ticks(5), ());
        let _ = eng.next();
        eng.schedule_at(Ticks(3), ());
    }

    #[test]
    fn custom_backend_is_pluggable() {
        // `with_backend` takes any Agenda impl; drive one end to end.
        let mut eng: Engine<u8> = Engine::with_backend(Box::new(WheelAgenda::new()));
        eng.schedule_at(Ticks(3), 1);
        eng.schedule_at(Ticks(1), 2);
        let mut seen = Vec::new();
        eng.run(|_, _, p| seen.push(p));
        assert_eq!(seen, vec![2, 1]);
    }

    proptest! {
        /// Events always replay in non-decreasing time order with FIFO
        /// tie-breaking, whatever the insertion order and backend.
        #[test]
        fn replay_order_invariant(times in proptest::collection::vec(0u64..1000, 1..200)) {
            for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
                let mut eng: Engine<usize> = Engine::with_agenda(kind);
                for (i, &t) in times.iter().enumerate() {
                    eng.schedule_at(Ticks(t), i);
                }
                let mut fired: Vec<(u64, usize)> = Vec::new();
                eng.run(|_, at, i| fired.push((at.0, i)));
                prop_assert_eq!(fired.len(), times.len());
                for w in fired.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0);
                    if w[0].0 == w[1].0 {
                        // FIFO within a tick: insertion (payload) order.
                        prop_assert!(w[0].1 < w[1].1);
                    }
                }
            }
        }

        /// Cancelling an arbitrary subset removes exactly that subset.
        #[test]
        fn cancellation_subset(times in proptest::collection::vec(0u64..100, 1..50), mask in proptest::collection::vec(any::<bool>(), 50)) {
            for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
                let mut eng: Engine<usize> = Engine::with_agenda(kind);
                let ids: Vec<_> = times.iter().enumerate().map(|(i, &t)| eng.schedule_at(Ticks(t), i)).collect();
                let mut expect: Vec<usize> = Vec::new();
                for (i, id) in ids.iter().enumerate() {
                    if mask[i % mask.len()] {
                        eng.cancel(*id);
                    } else {
                        expect.push(i);
                    }
                }
                let mut fired = Vec::new();
                eng.run(|_, _, i| fired.push(i));
                fired.sort_unstable();
                expect.sort_unstable();
                prop_assert_eq!(fired, expect);
            }
        }

        /// Conservation under arbitrary interleavings of schedule, cancel
        /// (including bogus and repeated ids) and partial draining:
        /// `scheduled == fired + cancelled + pending`, with the agenda
        /// compacting rather than accumulating stale entries — on both
        /// backends, which must stay in lockstep throughout.
        #[test]
        fn conservation_under_cancel_heavy_churn(
            ops in proptest::collection::vec(0u64..5000, 1..400),
        ) {
            let mut heap: Engine<u64> = Engine::with_agenda(AgendaKind::Heap);
            let mut wheel: Engine<u64> = Engine::with_agenda(AgendaKind::Wheel);
            let mut ids: Vec<(EventId, EventId)> = Vec::new();
            let mut fired = 0u64;
            for &raw in &ops {
                let (op, x) = (raw % 10, raw / 10);
                match op {
                    // Weight cancels heavily (ops 0..=5): the regression
                    // workload cancels most of what it schedules.
                    0..=5 => {
                        if !ids.is_empty() {
                            let (h, w) = ids[x as usize % ids.len()];
                            // May be stale: must be a no-op then.
                            prop_assert_eq!(heap.cancel(h), wheel.cancel(w));
                        }
                    }
                    // Three schedule flavours spanning the wheel's whole
                    // geometry: near (level 0-2), mid (level 3-4), and
                    // past the 2^36-tick span (the overflow queue).
                    6 | 7 => {
                        ids.push((
                            heap.schedule_at(Ticks(heap.now().0 + x), x),
                            wheel.schedule_at(Ticks(wheel.now().0 + x), x),
                        ));
                    }
                    8 => {
                        let delta = if x % 2 == 0 {
                            x << 13
                        } else {
                            (1u64 << 36) + (x << 3)
                        };
                        ids.push((
                            heap.schedule_at(Ticks(heap.now().0 + delta), x),
                            wheel.schedule_at(Ticks(wheel.now().0 + delta), x),
                        ));
                    }
                    _ => {
                        let (a, b) = (heap.next(), wheel.next());
                        prop_assert_eq!(
                            a.as_ref().map(|(t, p)| (*t, *p)),
                            b.as_ref().map(|(t, p)| (*t, *p)),
                            "backends diverged on pop"
                        );
                        if a.is_some() {
                            fired += 1;
                        }
                    }
                }
                for eng in [&heap, &wheel] {
                    let s = eng.stats();
                    prop_assert_eq!(
                        s.scheduled,
                        s.fired + s.cancelled + eng.pending() as u64,
                        "conservation violated"
                    );
                    prop_assert_eq!(s.fired, fired);
                    prop_assert!(
                        eng.agenda_len() <= 2 * eng.pending() + COMPACT_FLOOR,
                        "agenda {} vs live {}",
                        eng.agenda_len(),
                        eng.pending()
                    );
                }
            }
            // Draining fires exactly the still-pending events.
            let before = heap.pending();
            let mut drained = 0usize;
            heap.run(|_, _, _| drained += 1);
            prop_assert_eq!(drained, before);
            prop_assert_eq!(heap.pending(), 0);
            let s = heap.stats();
            prop_assert_eq!(s.scheduled, s.fired + s.cancelled);
        }
    }
}
