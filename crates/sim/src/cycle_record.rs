//! CTIFB's cycle-recording client — and the channel-transition invariance
//! property that names the scheme.
//!
//! Against a slot-aligned, fully-packed, phase-zero plan (FB's layout,
//! reused verbatim by CTIFB), the client tunes **every** channel at the
//! next slot boundary `T` after arrival and records each channel `i` for
//! exactly one full period `[T, T + 2^{i−1}·d)`. Because slot boundaries,
//! channel phases and periods are all multiples of `d`, every slot then
//! arrives as **one whole contiguous reception** on one channel — no
//! broadcast is ever caught mid-slot, so the client performs zero
//! mid-reception channel transitions and its per-channel recording
//! windows have the *same* bounds relative to `T` for every arrival
//! phase. Contrast FB's latest-feasible client, whose set of reception
//! intervals per channel depends on the tune-in phase (demonstrated in
//! the tests below).
//!
//! Playback starts at `T` itself: slot `s` (1-based) lives on channel
//! `i = ⌊log₂ s⌋ + 1` whose period is `2^{i−1} ≤ s` slots, so its single
//! reception begins no later than `T + (s − 1)·d` — the slot's own
//! playback deadline. The resulting buffer profile is *exactly* phase
//! invariant and peaks at `(N − 1)/2` slots of data when the widest
//! channel retires, which is precisely `sb_pyramid::Ctifb`'s analytic
//! buffer requirement (pinned to equality, not just bounded, below).

use vod_units::{Mbits, Mbps, Minutes};

use sb_core::plan::{BroadcastItem, ChannelPlan, PlanIndex, VideoId};

use crate::policy::PolicyError;
use crate::trace::{Reception, SessionTrace};

/// Build the cycle-recording session: tune every channel at the next
/// broadcast start of segment 0 after `arrival`, record each carrier for
/// one full cycle, and play from the tune-in point.
///
/// Each segment must be carried by a channel whose next broadcast at or
/// after tune-in is a whole contiguous slot (true for the slot-aligned
/// FB/CTIFB layouts; the caller's plan is trusted, the trace's
/// `validate`/jitter checks catch misuse).
pub fn record_cycles(
    plan: &ChannelPlan,
    video: VideoId,
    arrival: Minutes,
    display_rate: Mbps,
) -> Result<SessionTrace, PolicyError> {
    record_cycles_indexed(&plan.index(), video, arrival, display_rate)
}

/// [`record_cycles`] against a prebuilt carrier index — bit-identical
/// output; use when scheduling many sessions against one plan.
pub fn record_cycles_indexed(
    index: &PlanIndex<'_>,
    video: VideoId,
    arrival: Minutes,
    display_rate: Mbps,
) -> Result<SessionTrace, PolicyError> {
    let sizes = index
        .plan()
        .segment_sizes
        .get(video.0)
        .ok_or(PolicyError::UnknownVideo(video))?
        .clone();
    let first = BroadcastItem { video, segment: 0 };
    let tune_in = index
        .carriers(first)
        .iter()
        .map(|occ| index.next_start(occ, arrival))
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        .ok_or(PolicyError::MissingSegment(0))?;

    let mut receptions = Vec::with_capacity(sizes.len());
    for (segment, &size) in sizes.iter().enumerate() {
        let item = BroadcastItem { video, segment };
        let occ = index
            .carriers(item)
            .first()
            .ok_or(PolicyError::MissingSegment(segment))?;
        let ch = index.channel(occ);
        let start = index.next_start(occ, tune_in);
        receptions.push(Reception {
            segment,
            channel: ch.id,
            start,
            duration: (size / ch.rate).to_minutes(),
            rate: ch.rate,
            content_offset: Mbits(0.0),
            size,
        });
    }
    Ok(SessionTrace {
        arrival,
        playback_start: tune_in,
        display_rate,
        segment_sizes: sizes,
        receptions,
    })
}

/// Per-channel recording windows of a trace: for each channel with at
/// least one reception, `(channel, window start, window end)` of the
/// union of its reception intervals — plus whether that union is one
/// contiguous interval. The invariance property says: under
/// [`record_cycles`] every channel's union is contiguous, starts at the
/// tune-in point, and spans exactly one channel period, for **every**
/// arrival phase.
#[must_use]
pub fn channel_windows(trace: &SessionTrace) -> Vec<(usize, Minutes, Minutes, bool)> {
    let mut by_channel: Vec<(usize, Vec<(f64, f64)>)> = Vec::new();
    for rec in &trace.receptions {
        let iv = (rec.start.value(), rec.end().value());
        match by_channel.iter_mut().find(|(c, _)| *c == rec.channel) {
            Some((_, ivs)) => ivs.push(iv),
            None => by_channel.push((rec.channel, vec![iv])),
        }
    }
    by_channel
        .into_iter()
        .map(|(channel, mut ivs)| {
            ivs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            let contiguous = ivs.windows(2).all(|w| (w[0].1 - w[1].0).abs() < 1e-9);
            let start = ivs.first().expect("non-empty").0;
            let end = ivs.last().expect("non-empty").1;
            (channel, Minutes(start), Minutes(end), contiguous)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{schedule_client, ClientPolicy};
    use crate::trace::{ClientModel, CycleRecordingClient};
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_pyramid::{Ctifb, FastBroadcasting};

    fn setup(b: f64) -> (SystemConfig, sb_core::plan::ChannelPlan, Minutes) {
        let cfg = SystemConfig::paper_defaults(vod_units::Mbps(b));
        let plan = Ctifb.plan(&cfg).unwrap();
        let slot = Ctifb.slot(&cfg).unwrap();
        (cfg, plan, slot)
    }

    #[test]
    fn jitter_free_whole_slot_receptions_at_every_phase() {
        // K = 4, N = 15. Every reception is a whole slot delivered
        // contiguously on one channel, on time, at every arrival phase.
        let (cfg, plan, slot) = setup(60.0);
        for i in 0..96 {
            let arrival = Minutes(slot.value() * i as f64 / 96.0 * 17.0);
            let t = record_cycles(&plan, VideoId(0), arrival, cfg.display_rate).unwrap();
            t.validate(&plan).unwrap();
            assert!(t.is_jitter_free(1e-9), "arrival {arrival}");
            assert_eq!(t.receptions.len(), 15);
            for rec in &t.receptions {
                assert!((rec.duration.value() - slot.value()).abs() < 1e-9);
                assert_eq!(rec.content_offset, Mbits(0.0));
            }
            // Latency never exceeds one slot.
            assert!(t.startup_latency().value() <= slot.value() + 1e-9);
        }
    }

    #[test]
    fn recording_windows_are_phase_invariant() {
        // The namesake property: channel i's recording window is exactly
        // [T, T + 2^i·d) relative to tune-in, for every arrival phase —
        // one contiguous interval per channel, K − 1 channel retirements,
        // zero mid-reception transitions.
        let (cfg, plan, slot) = setup(60.0);
        for i in 0..64 {
            let arrival = Minutes(slot.value() * i as f64 / 64.0 * 23.0);
            let t = record_cycles(&plan, VideoId(0), arrival, cfg.display_rate).unwrap();
            let tune_in = t.playback_start.value();
            let mut windows = channel_windows(&t);
            windows.sort_by_key(|w| w.0);
            assert_eq!(windows.len(), 4);
            for (idx, (_, start, end, contiguous)) in windows.iter().enumerate() {
                assert!(contiguous, "channel {idx} split its window");
                assert!((start.value() - tune_in).abs() < 1e-9);
                let period = slot.value() * (1 << idx) as f64;
                assert!(
                    (end.value() - tune_in - period).abs() < 1e-9,
                    "channel {idx} window length"
                );
            }
        }
    }

    #[test]
    fn fb_latest_feasible_is_not_invariant() {
        // The contrast: FB's pick-the-latest-broadcast client re-tunes
        // channels at phase-dependent times, so at some arrival phases a
        // channel's receptions do not form one contiguous window anchored
        // at the session start.
        let (cfg, _, slot) = setup(60.0);
        let plan = FastBroadcasting.plan(&cfg).unwrap();
        let mut anchored_everywhere = true;
        for i in 0..64 {
            let arrival = Minutes(slot.value() * i as f64 / 64.0 * 23.0);
            let s = schedule_client(
                &plan,
                VideoId(0),
                arrival,
                cfg.display_rate,
                ClientPolicy::LatestFeasible,
            )
            .unwrap();
            let t = s.trace();
            let tune_in = t.playback_start.value();
            for (_, start, _, contiguous) in channel_windows(&t) {
                if !contiguous || (start.value() - tune_in).abs() > 1e-9 {
                    anchored_everywhere = false;
                }
            }
        }
        assert!(
            !anchored_everywhere,
            "FB's latest-feasible client should depend on the arrival phase"
        );
    }

    #[test]
    fn peak_buffer_equals_analytic_at_every_phase() {
        // Stronger than FB's worst-case bound: CTIFB's buffer profile is
        // the *same* for every phase, so the simulated peak equals the
        // analytic closed form exactly (not merely respects it).
        for b in [30.0, 60.0, 120.0] {
            let cfg = SystemConfig::paper_defaults(vod_units::Mbps(b));
            let plan = Ctifb.plan(&cfg).unwrap();
            let slot = Ctifb.slot(&cfg).unwrap();
            let analytic = Ctifb.metrics(&cfg).unwrap().buffer_requirement.value();
            for i in 0..48 {
                let arrival = Minutes(slot.value() * i as f64 / 48.0 * 11.0);
                let t = record_cycles(&plan, VideoId(0), arrival, cfg.display_rate).unwrap();
                let peak = t.peak_buffer().value();
                assert!(
                    (peak - analytic).abs() < 1e-6 * analytic.max(1.0),
                    "B={b} arrival {arrival}: peak {peak} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn client_model_wires_through() {
        let (cfg, plan, _) = setup(60.0);
        let direct = record_cycles(&plan, VideoId(0), Minutes(3.3), cfg.display_rate).unwrap();
        let via_model = CycleRecordingClient
            .session(&plan, VideoId(0), Minutes(3.3), cfg.display_rate)
            .unwrap();
        assert_eq!(direct, via_model);
    }
}
