//! Criterion benches for whole-system runs: workload generation, the
//! batching pool, and many-client broadcast simulation.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sb_batching::{BatchPolicy, BatchingServer};
use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::RunConfig;
use sb_workload::{Catalog, Patience, PoissonArrivals, ZipfPopularity};
use vod_units::{Mbps, Minutes};

fn bench_workload_generation(c: &mut Criterion) {
    let z = ZipfPopularity::paper(100);
    c.bench_function("poisson_10k_requests", |b| {
        b.iter(|| {
            PoissonArrivals::new(10.0, 42)
                .with_patience(Patience::Exponential(Minutes(8.0)))
                .generate(black_box(&z), Minutes(1000.0))
        })
    });
}

fn bench_batching_pool(c: &mut Criterion) {
    let catalog = Catalog::paper_defaults(50);
    let z = ZipfPopularity::paper(50);
    let reqs = PoissonArrivals::new(2.0, 7)
        .with_patience(Patience::Exponential(Minutes(10.0)))
        .generate(&z, Minutes(2000.0));
    c.bench_function("mql_pool_4k_requests", |b| {
        b.iter(|| {
            BatchingServer::new(16, BatchPolicy::Mql).run(black_box(&catalog), black_box(&reqs))
        })
    });
}

fn bench_system_sim(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));
    let plan = Skyscraper::with_width(Width::Capped(52))
        .plan(&cfg)
        .unwrap();
    let requests: Vec<Request> = (0..200)
        .map(|i| Request {
            at: Minutes(i as f64 * 0.13),
            video: VideoId(i % 10),
        })
        .collect();
    c.bench_function("system_200_sb_clients", |b| {
        b.iter(|| {
            SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible)
                .execute(RunConfig::new(black_box(&requests)))
                .unwrap()
        })
    });
}

fn bench_figure_pipeline(c: &mut Criterion) {
    use sb_analysis::lineup::paper_lineup;
    let ids = paper_lineup();
    let serial = sb_analysis::Runner::serial();
    c.bench_function("paper_sweep_26_points", |b| {
        b.iter(|| sb_analysis::sweep::paper_sweep_with(black_box(&ids), &serial))
    });
    let rows = sb_analysis::sweep::paper_sweep_with(&ids, &serial);
    c.bench_function("figures_6_7_8_from_sweep", |b| {
        b.iter(|| {
            (
                sb_analysis::figures::figure6(black_box(&rows), &ids),
                sb_analysis::figures::figure7(black_box(&rows), &ids),
                sb_analysis::figures::figure8(black_box(&rows), &ids),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_workload_generation,
    bench_batching_pool,
    bench_system_sim,
    bench_figure_pipeline
);
criterion_main!(benches);
