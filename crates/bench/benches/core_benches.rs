//! Criterion micro-benches for the core algorithms: series generation,
//! fragmentation, slot-level client scheduling, and the worst-case phase
//! sweeps that back the §4 storage theorem.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_core::client::{sampled_worst_case_peak_buffer_units, ClientTimeline};
use sb_core::config::SystemConfig;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::{series, Width};
use sb_core::Skyscraper;
use vod_units::Mbps;

fn bench_series(c: &mut Criterion) {
    let mut g = c.benchmark_group("series");
    for k in [10usize, 40, 80] {
        g.bench_with_input(BenchmarkId::new("generate", k), &k, |b, &k| {
            b.iter(|| series(black_box(k)))
        });
    }
    g.finish();
}

fn bench_client_timeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("slot_client");
    for (k, w) in [
        (10usize, Width::Capped(12)),
        (20, Width::Capped(52)),
        (40, Width::Capped(52)),
    ] {
        let units = w.units(k);
        g.bench_with_input(
            BenchmarkId::new("schedule+buffer", format!("K{k}_{w}")),
            &units,
            |b, units| {
                b.iter(|| {
                    let tl = ClientTimeline::compute(black_box(units), black_box(137));
                    black_box(tl.peak_buffer_units())
                })
            },
        );
    }
    g.finish();
}

fn bench_phase_sweep(c: &mut Criterion) {
    let units = Width::Capped(12).units(10);
    c.bench_function("sampled_worst_case_peak", |b| {
        b.iter(|| sampled_worst_case_peak_buffer_units(black_box(&units), 64))
    });
}

fn bench_plan_construction(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(600.0));
    let scheme = Skyscraper::with_width(Width::Capped(52));
    c.bench_function("sb_plan_600", |b| {
        b.iter(|| scheme.plan(black_box(&cfg)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_series,
    bench_client_timeline,
    bench_phase_sweep,
    bench_plan_construction
);
criterion_main!(benches);
