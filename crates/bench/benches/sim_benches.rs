//! Criterion benches for the continuous-time client scheduler and the
//! discrete-event engine.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_pyramid::PyramidBroadcasting;
use sb_sim::engine::Engine;
use sb_sim::policy::{schedule_client, ClientPolicy};
use sb_sim::AgendaKind;
use vod_units::{Mbps, Minutes, TickDuration, Ticks};

fn bench_schedule_client(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));
    let sb_plan = Skyscraper::with_width(Width::Capped(52))
        .plan(&cfg)
        .unwrap();
    let pb_plan = PyramidBroadcasting::a().plan(&cfg).unwrap();
    let mut g = c.benchmark_group("schedule_client");
    g.bench_function(BenchmarkId::new("sb_latest_feasible", 300), |b| {
        b.iter(|| {
            schedule_client(
                black_box(&sb_plan),
                VideoId(3),
                Minutes(7.31),
                cfg.display_rate,
                ClientPolicy::LatestFeasible,
            )
            .unwrap()
        })
    });
    g.bench_function(BenchmarkId::new("pb_earliest", 300), |b| {
        b.iter(|| {
            schedule_client(
                black_box(&pb_plan),
                VideoId(3),
                Minutes(7.31),
                cfg.display_rate,
                ClientPolicy::PbEarliest,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_buffer_profile(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(600.0));
    let plan = Skyscraper::with_width(Width::Capped(52))
        .plan(&cfg)
        .unwrap();
    let sched = schedule_client(
        &plan,
        VideoId(0),
        Minutes(3.7),
        cfg.display_rate,
        ClientPolicy::LatestFeasible,
    )
    .unwrap();
    c.bench_function("buffer_profile_K40", |b| {
        b.iter(|| black_box(&sched).peak_buffer())
    });
}

/// The heap-vs-wheel comparison the `--agenda` flag exposes: the same
/// 100k-event self-scheduling cascade on each backend. Fire order (and
/// so `fired`) is bitwise identical; only the per-operation cost of the
/// event store differs.
fn bench_engine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_100k_events");
    for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
        g.bench_function(BenchmarkId::new(kind.name(), 100_000), |b| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::with_agenda(kind);
                for i in 0..1_000u64 {
                    eng.schedule_at(Ticks(i * 7 % 991), i);
                }
                let mut fired = 0u64;
                eng.run(|eng, _, n| {
                    fired += 1;
                    if n < 99_000 {
                        eng.schedule_in(TickDuration(3), n + 1_000);
                    }
                });
                black_box(fired)
            })
        });
    }
    g.finish();
}

/// Cancel-heavy churn with far-future deadlines — the workload the
/// session sim's watchdog timers produce, and the one where backend
/// push/cancel cost dominates. Exercises the wheel's overflow level
/// (deadlines land beyond the wheel span from the cursor).
fn bench_agenda_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("agenda_churn_20k_cancels");
    for kind in [AgendaKind::Heap, AgendaKind::Wheel] {
        g.bench_function(BenchmarkId::new(kind.name(), 20_000), |b| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::with_agenda(kind);
                let far = 1u64 << 40;
                let mut ring: std::collections::VecDeque<_> = (0..128u64)
                    .map(|i| eng.schedule_at(Ticks(far + i), i))
                    .collect();
                for i in 0..20_000u64 {
                    if let Some(id) = ring.pop_front() {
                        eng.cancel(id);
                    }
                    ring.push_back(eng.schedule_at(Ticks(far + 128 + i), i));
                }
                let mut fired = 0u64;
                eng.run(|_, _, _| fired += 1);
                black_box(fired)
            })
        });
    }
    g.finish();
}

fn bench_pausing_client(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    let plan = sb_pyramid::PermutationPyramid::b().plan(&cfg).unwrap();
    c.bench_function("ppb_pausing_client", |b| {
        b.iter(|| {
            sb_sim::pausing::schedule_pausing_client(
                black_box(&plan),
                VideoId(0),
                Minutes(3.7),
                cfg.display_rate,
            )
            .unwrap()
        })
    });
}

fn bench_packet_replay(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));
    let plan = Skyscraper::with_width(Width::Capped(12))
        .plan(&cfg)
        .unwrap();
    let sched = schedule_client(
        &plan,
        VideoId(0),
        Minutes(5.2),
        cfg.display_rate,
        ClientPolicy::LatestFeasible,
    )
    .unwrap()
    .trace();
    c.bench_function("packet_replay_2h_session", |b| {
        b.iter(|| sb_sim::e2e::replay(black_box(&sched), sb_sim::e2e::PacketConfig::default()))
    });
}

criterion_group!(
    benches,
    bench_schedule_client,
    bench_buffer_profile,
    bench_engine_throughput,
    bench_agenda_churn,
    bench_pausing_client,
    bench_packet_replay
);
criterion_main!(benches);
