//! Criterion benches for the continuous-time client scheduler and the
//! discrete-event engine.

#![allow(missing_docs)] // criterion_group! generates undocumented items

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_pyramid::PyramidBroadcasting;
use sb_sim::engine::Engine;
use sb_sim::policy::{schedule_client, ClientPolicy};
use vod_units::{Mbps, Minutes, TickDuration, Ticks};

fn bench_schedule_client(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));
    let sb_plan = Skyscraper::with_width(Width::Capped(52))
        .plan(&cfg)
        .unwrap();
    let pb_plan = PyramidBroadcasting::a().plan(&cfg).unwrap();
    let mut g = c.benchmark_group("schedule_client");
    g.bench_function(BenchmarkId::new("sb_latest_feasible", 300), |b| {
        b.iter(|| {
            schedule_client(
                black_box(&sb_plan),
                VideoId(3),
                Minutes(7.31),
                cfg.display_rate,
                ClientPolicy::LatestFeasible,
            )
            .unwrap()
        })
    });
    g.bench_function(BenchmarkId::new("pb_earliest", 300), |b| {
        b.iter(|| {
            schedule_client(
                black_box(&pb_plan),
                VideoId(3),
                Minutes(7.31),
                cfg.display_rate,
                ClientPolicy::PbEarliest,
            )
            .unwrap()
        })
    });
    g.finish();
}

fn bench_buffer_profile(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(600.0));
    let plan = Skyscraper::with_width(Width::Capped(52))
        .plan(&cfg)
        .unwrap();
    let sched = schedule_client(
        &plan,
        VideoId(0),
        Minutes(3.7),
        cfg.display_rate,
        ClientPolicy::LatestFeasible,
    )
    .unwrap();
    c.bench_function("buffer_profile_K40", |b| {
        b.iter(|| black_box(&sched).peak_buffer())
    });
}

fn bench_engine_throughput(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            for i in 0..1_000u64 {
                eng.schedule_at(Ticks(i * 7 % 991), i);
            }
            let mut fired = 0u64;
            eng.run(|eng, _, n| {
                fired += 1;
                if n < 99_000 {
                    eng.schedule_in(TickDuration(3), n + 1_000);
                }
            });
            black_box(fired)
        })
    });
}

fn bench_pausing_client(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(320.0));
    let plan = sb_pyramid::PermutationPyramid::b().plan(&cfg).unwrap();
    c.bench_function("ppb_pausing_client", |b| {
        b.iter(|| {
            sb_sim::pausing::schedule_pausing_client(
                black_box(&plan),
                VideoId(0),
                Minutes(3.7),
                cfg.display_rate,
            )
            .unwrap()
        })
    });
}

fn bench_packet_replay(c: &mut Criterion) {
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));
    let plan = Skyscraper::with_width(Width::Capped(12))
        .plan(&cfg)
        .unwrap();
    let sched = schedule_client(
        &plan,
        VideoId(0),
        Minutes(5.2),
        cfg.display_rate,
        ClientPolicy::LatestFeasible,
    )
    .unwrap()
    .trace();
    c.bench_function("packet_replay_2h_session", |b| {
        b.iter(|| sb_sim::e2e::replay(black_box(&sched), sb_sim::e2e::PacketConfig::default()))
    });
}

criterion_group!(
    benches,
    bench_schedule_client,
    bench_buffer_profile,
    bench_engine_throughput,
    bench_pausing_client,
    bench_packet_replay
);
criterion_main!(benches);
