//! Crash-recovery cadence trade: checkpoints written vs sessions
//! replayed under one seeded chaos script, with the byte-identity
//! invariant re-verified in every cell. Emits `BENCH_recovery.json`
//! unless `--json` names another path.
//!
//! `--threads <n>` picks the worker pool and `--agenda heap|wheel` the
//! engine backend — the JSON artifact and stdout are byte-identical for
//! every combination (the determinism gate `scripts/verify.sh` diffs
//! them). `--sessions <n>` resizes the arrival grid. Wall-clock goes to
//! stderr and to the sibling nondeterministic `BENCH_wallclock.json`.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::recovery_study::{recovery_study, render_recovery, RecoveryConfig};
use sb_bench::{WallclockReport, WallclockRun};

fn main() {
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from("BENCH_recovery.json"));
    }
    let runner = args.runner();
    let mut cfg = RecoveryConfig::paper_defaults();
    if let Some(sessions) = args.sessions {
        assert!(sessions >= 1, "--sessions must be at least 1");
        cfg.sessions = sessions;
    }
    let t0 = Instant::now();
    let report = recovery_study(&cfg, &runner).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", render_recovery(&report));
    // One baseline pass plus one supervised pass per cadence cell, all
    // over the same grid (replays re-run sessions on top of that, but
    // they are part of the measurement, not the denominator).
    let streamed = report.fold.sessions * (report.rows.len() + 1);
    eprintln!(
        "wall: {:.3}s at --threads {} --agenda {}, {:.0} sessions/sec over the grid",
        wall,
        runner.threads(),
        args.agenda.name(),
        streamed as f64 / wall,
    );
    let replayed: u64 = report.rows.iter().map(|r| r.replayed_sessions).sum();
    WallclockReport::new(
        "recovery_bench",
        vec![WallclockRun::new(args.agenda, streamed, replayed, wall)],
    )
    .write_beside(args.json.as_deref());
    args.maybe_write_json(&report);
    args.finish(&runner);
}
