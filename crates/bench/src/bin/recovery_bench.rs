//! Crash-recovery cadence trade: checkpoints written vs sessions
//! replayed under one seeded chaos script, with the byte-identity
//! invariant re-verified in every cell — dispatched through the
//! [`sb_analysis::study`] registry. Emits `BENCH_recovery.json` unless
//! `--json` names another path.
//!
//! `--threads <n>` picks the worker pool, `--agenda heap|wheel` the
//! engine backend and `--shards <n>` the supervised shard count — the
//! JSON artifact and stdout are byte-identical for every combination
//! (the determinism gate `scripts/verify.sh` diffs them). `--sessions
//! <n>` resizes the arrival grid. Wall-clock goes to stderr and to the
//! sibling nondeterministic `BENCH_wallclock.json`.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::study::{StudyCtx, StudyOpts};
use sb_bench::{WallclockReport, WallclockRun};

fn main() {
    let study = sb_analysis::study::find("recovery").expect("recovery study registered");
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from(study.artifact().expect("artifact study")));
    }
    let runner = args.runner();
    let mut opts = StudyOpts::default();
    if let Some(sessions) = args.sessions {
        assert!(sessions >= 1, "--sessions must be at least 1");
        opts.set("sessions", sessions.to_string());
    }
    let ctx = StudyCtx {
        opts: &opts,
        shards: args.shards,
        seed: None,
        runner: &runner,
    };
    let t0 = Instant::now();
    let out = study.run(&ctx).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", out.rendered);
    // One baseline pass plus one supervised pass per cadence cell, all
    // over the same grid (replays re-run sessions on top of that, but
    // they are part of the measurement, not the denominator).
    eprintln!(
        "wall: {:.3}s at --threads {} --agenda {}, {:.0} sessions/sec over the grid",
        wall,
        runner.threads(),
        args.agenda.name(),
        out.sessions as f64 / wall,
    );
    WallclockReport::new(
        "recovery_bench",
        vec![WallclockRun::new(
            args.agenda,
            out.sessions,
            out.events,
            wall,
        )],
    )
    .write_beside(args.json.as_deref());
    args.maybe_write_json_str(&out.report_json);
    args.finish(&runner);
}
