//! Runs the beyond-paper ablations: series shape (A1), width sensitivity
//! (A2), and the greedy rediscovery of the paper's series (A3).

use sb_analysis::ablation::{series_ablation_with, width_ablation};
use sb_core::custom::{greedy_max_series, PhaseBudget};
use vod_units::Minutes;

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    println!("A1: series-shape ablation (K=12, D=120 min, 1024 arrival phases)\n");
    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "series", "latency(min)", "conflicts", "jitter", "peak(u)", "usable", "loaders"
    );
    let reports = series_ablation_with(12, Minutes(120.0), 1024, &runner);
    for r in &reports {
        println!(
            "{:<16} {:>12.4} {:>10} {:>10} {:>10} {:>9} {:>9}",
            r.name,
            r.latency_min,
            r.phases_with_conflicts,
            r.phases_with_jitter,
            r.worst_peak_units,
            r.usable(),
            r.loaders_needed.map_or("-".into(), |l| l.to_string()),
        );
    }
    println!("\nA2: width sensitivity at K=40 (B=600 Mb/s)\n");
    println!(
        "{:>8} {:>14} {:>12} {:>22}",
        "W", "latency(min)", "buffer(MB)", "marginal MB per sec"
    );
    let rows = width_ablation(Minutes(120.0), 40);
    for (w, lat, buf, marginal) in &rows {
        println!("{w:>8} {lat:>14.4} {buf:>12.1} {marginal:>22.2}");
    }
    println!("\nA3: greedy search for the fastest two-loader-safe series\n");
    let found = greedy_max_series(11, PhaseBudget::ExhaustiveUpTo(100_000));
    let paper = sb_core::series::series(11);
    println!("greedy-maximal: {found:?}");
    println!("paper's series: {paper:?}");
    println!(
        "match: {} — the paper's series is exactly the fastest series the\n\
         two-loader client can follow",
        found == paper
    );
    args.maybe_write_json(&(reports, rows, found));
    args.finish(&runner);
}
