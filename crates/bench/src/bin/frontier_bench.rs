//! The scheme-zoo Pareto frontier as a benchmark: every scheme (SB
//! expanded over its candidate widths, the PB/PPB/FB/HB/CTIFB/AQHB
//! baselines) across the paper's bandwidth × catalog grid, each point
//! marked for dominance in latency × client-I/O × buffer both from the
//! closed forms and from simulated sessions — dispatched through the
//! [`sb_analysis::study`] registry. Emits `BENCH_frontier.json` unless
//! `--json` names another path.
//!
//! `--shards <n>` picks the per-cell shard count, `--threads <n>` the
//! worker pool and `--agenda heap|wheel` the engine backend — the JSON
//! artifact and stdout are byte-identical for every combination (the
//! determinism gate `scripts/verify.sh` diffs them). `--sessions <n>`
//! overrides the simulated arrivals per cell. Wall-clock goes to stderr.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::study::{StudyCtx, StudyOpts};

fn main() {
    let study = sb_analysis::study::find("frontier").expect("frontier study registered");
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from(study.artifact().expect("artifact study")));
    }
    let runner = args.runner();
    let mut opts = StudyOpts::default();
    if let Some(sessions) = args.sessions {
        opts.set("sessions", sessions.to_string());
    }
    let ctx = StudyCtx {
        opts: &opts,
        shards: args.shards,
        seed: None,
        runner: &runner,
    };
    let t0 = Instant::now();
    let out = study.run(&ctx).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", out.rendered);
    // Wall-clock is machine- and thread-dependent: stderr only, so
    // stdout and the JSON artifact stay byte-identical across
    // `--shards`, `--threads` and `--agenda`.
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {} --agenda {}",
        wall,
        args.shards,
        runner.threads(),
        args.agenda.name(),
    );
    args.maybe_write_json_str(&out.report_json);
    args.finish(&runner);
}
