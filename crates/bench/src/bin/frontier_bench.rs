//! The scheme-zoo Pareto frontier as a benchmark: every scheme (SB
//! expanded over its candidate widths, the PB/PPB/FB/HB/CTIFB/AQHB
//! baselines) across the paper's bandwidth × catalog grid, each point
//! marked for dominance in latency × client-I/O × buffer both from the
//! closed forms and from simulated sessions. Emits `BENCH_frontier.json`
//! unless `--json` names another path.
//!
//! `--shards <n>` picks the per-cell shard count, `--threads <n>` the
//! worker pool and `--agenda heap|wheel` the engine backend — the JSON
//! artifact and stdout are byte-identical for every combination (the
//! determinism gate `scripts/verify.sh` diffs them). `--sessions <n>`
//! overrides the simulated arrivals per cell. Wall-clock goes to stderr.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::frontier::{frontier_report, render_frontier, FrontierConfig};

fn main() {
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from("BENCH_frontier.json"));
    }
    let runner = args.runner();
    let mut cfg = FrontierConfig::paper();
    if let Some(sessions) = args.sessions {
        cfg.sessions = sessions;
    }
    let t0 = Instant::now();
    let report = frontier_report(&cfg, args.shards, &runner);
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", render_frontier(&report));
    // Wall-clock is machine- and thread-dependent: stderr only, so
    // stdout and the JSON artifact stay byte-identical across
    // `--shards`, `--threads` and `--agenda`.
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {} --agenda {}",
        wall,
        args.shards,
        runner.threads(),
        args.agenda.name(),
    );
    args.maybe_write_json(&report);
    args.finish(&runner);
}
