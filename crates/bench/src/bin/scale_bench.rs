//! Sharded scale-out: per-shard agenda footprint and simulated-time
//! rates at `S ∈ {1, 2, 4, 8}`, a million-session grid per cell (raise
//! it with `--sessions`). Emits `BENCH_scale.json` unless `--json` names
//! another path.
//!
//! `--shards <n>` picks the flagship pass's shard count, `--threads <n>`
//! the worker pool and `--agenda heap|wheel` the engine backend — the
//! JSON artifact and stdout are byte-identical for every combination
//! (the determinism gate `scripts/verify.sh` diffs them). Wall-clock
//! sessions/sec go to stderr and to the sibling nondeterministic
//! `BENCH_wallclock.json`, which the byte-identity smokes exclude.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::scale_study::{render_scale, scale_study, ScaleConfig};
use sb_bench::{WallclockReport, WallclockRun};

fn main() {
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from("BENCH_scale.json"));
    }
    let runner = args.runner();
    let mut cfg = ScaleConfig::paper_defaults();
    if let Some(sessions) = args.sessions {
        assert!(sessions >= 1, "--sessions must be at least 1");
        cfg.sessions = sessions;
    }
    let t0 = Instant::now();
    let (report, metrics) = scale_study(&cfg, args.shards, &runner).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", render_scale(&report));
    println!(
        "metrics: {} engine events, {} sessions",
        metrics.counter_total("engine_events_total"),
        metrics.counter_total("sim_sessions_total"),
    );
    // Wall-clock rates are machine- and thread-dependent: stderr only,
    // so stdout and the JSON artifact stay byte-identical across
    // `--shards`, `--threads` and `--agenda`.
    let grid_sessions: usize = report.cells.len() * report.total_sessions;
    let streamed = grid_sessions + report.total_sessions;
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {} --agenda {}, {:.0} sessions/sec over the grid",
        wall,
        args.shards,
        runner.threads(),
        args.agenda.name(),
        streamed as f64 / wall,
    );
    // Grid events scale with the cells the same way sessions do: every
    // cell fires the flagship's event count (shard-invariant), plus the
    // flagship pass itself.
    let events = report.total_events_fired * (report.cells.len() as u64 + 1);
    WallclockReport::new(
        "scale_bench",
        vec![WallclockRun::new(args.agenda, streamed, events, wall)],
    )
    .write_beside(args.json.as_deref());
    args.maybe_write_json(&report);
    args.finish(&runner);
}
