//! Sharded scale-out: per-shard agenda footprint and simulated-time
//! rates at `S ∈ {1, 2, 4, 8}`, a million-session grid per cell. Emits
//! `BENCH_scale.json` unless `--json` names another path.
//!
//! `--shards <n>` picks the flagship pass's shard count and `--threads
//! <n>` the worker pool — the JSON artifact and stdout are byte-identical
//! for every combination (the determinism gate `scripts/verify.sh`
//! diffs them); wall-clock sessions/sec go to stderr.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::scale_study::{render_scale, scale_study, ScaleConfig};

fn main() {
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from("BENCH_scale.json"));
    }
    let runner = args.runner();
    let cfg = ScaleConfig::paper_defaults();
    let t0 = Instant::now();
    let (report, metrics) = scale_study(&cfg, args.shards, &runner).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", render_scale(&report));
    println!(
        "metrics: {} engine events, {} sessions",
        metrics.counter_total("engine_events_total"),
        metrics.counter_total("sim_sessions_total"),
    );
    // Wall-clock rates are machine- and thread-dependent: stderr only,
    // so stdout and the JSON artifact stay byte-identical across
    // `--shards` and `--threads`.
    let grid_sessions: usize = report.cells.len() * report.total_sessions;
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {}, {:.0} sessions/sec over the grid",
        wall,
        args.shards,
        runner.threads(),
        (grid_sessions + report.total_sessions) as f64 / wall,
    );
    args.maybe_write_json(&report);
    args.finish(&runner);
}
