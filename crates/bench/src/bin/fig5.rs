//! Regenerates Figure 5: design-parameter values (K, P, α) vs bandwidth.

use sb_analysis::figures::{figure5a, figure5b};
use sb_analysis::lineup::paper_lineup;
use sb_analysis::render::render_figure;
use sb_analysis::sweep::paper_sweep_with;

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    let rows = paper_sweep_with(&paper_lineup(), &runner);
    let a = figure5a(&rows);
    let b = figure5b(&rows);
    print!("{}", render_figure(&a));
    println!();
    print!("{}", render_figure(&b));
    args.maybe_write_json(&(a, b));
    args.finish(&runner);
}
