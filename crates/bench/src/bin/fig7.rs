//! Regenerates Figure 7: access latency (minutes).

use sb_analysis::figures::figure7;
use sb_analysis::lineup::paper_lineup;
use sb_analysis::render::render_figure;
use sb_analysis::sweep::paper_sweep_with;

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    let ids = paper_lineup();
    let fig = figure7(&paper_sweep_with(&ids, &runner), &ids);
    print!("{}", render_figure(&fig));
    args.maybe_write_json(&fig);
    args.finish(&runner);
}
