//! Regenerates Figure 7: access latency (minutes).

use sb_analysis::figures::figure7;
use sb_analysis::lineup::paper_lineup;
use sb_analysis::render::render_figure;
use sb_analysis::sweep::paper_sweep;

fn main() {
    let args = sb_bench::Args::parse();
    let ids = paper_lineup();
    let fig = figure7(&paper_sweep(&ids), &ids);
    print!("{}", render_figure(&fig));
    args.maybe_write_json(&fig);
}
