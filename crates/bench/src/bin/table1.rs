//! Regenerates Table 1: the performance formula box, plus its numeric
//! evaluation across the studied bandwidths.

use sb_analysis::lineup::paper_lineup;
use sb_analysis::render::{render_evaluations, render_formulas};
use sb_analysis::tables::{evaluate_tables_with, table1_formulas};

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    println!("Table 1: performance computation (as reconstructed; DESIGN.md section 3)\n");
    print!("{}", render_formulas(&table1_formulas()));
    println!("\nEvaluated at the paper's workload (M=10, D=120 min, b=1.5 Mb/s):\n");
    let rows = evaluate_tables_with(
        &paper_lineup(),
        &[100.0, 200.0, 300.0, 320.0, 400.0, 500.0, 600.0],
        &runner,
    );
    print!("{}", render_evaluations(&rows));
    args.maybe_write_json(&rows);
    args.finish(&runner);
}
