//! The fault study, swept over burstiness: every scheme under i.i.d.
//! and Gilbert–Elliott loss at equal mean rates plus a mid-run outage,
//! and the control plane's recovery under the same script. Emits
//! `BENCH_resilience.json` unless `--json` names another path.

use std::path::PathBuf;

use sb_analysis::resilience_study::{resilience_study, ResilienceStudyConfig};

fn main() {
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from("BENCH_resilience.json"));
    }
    let runner = args.runner();
    let base = ResilienceStudyConfig::paper_defaults();
    println!(
        "fault study: B = {:.0} Mb/s, {} sessions/cell over {:.0} min, \
         loss rates {:?}, outage on channel {} at {:.0}+{:.0} min\n",
        base.bandwidth.value(),
        base.samples,
        base.horizon.value(),
        base.loss_rates,
        base.script.outages[0].channel,
        base.script.outages[0].start.value(),
        base.script.outages[0].duration.value(),
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>13}",
        "burst len", "iid stall", "burst stall", "truncated", "static lat", "dynamic lat"
    );
    let mut studies = Vec::new();
    let mut metrics = sb_metrics::Snapshot::default();
    for &burst_len in &[2.0, 4.0, 8.0] {
        let cfg = ResilienceStudyConfig {
            burst_len,
            ..base.clone()
        };
        let (study, snapshot) = resilience_study(&cfg, &runner).expect("valid default config");
        // Stall-policy damage (tally 0) summed across cells, per loss kind.
        let stall_of = |kind: sb_analysis::resilience_study::LossKind| -> f64 {
            study
                .cells
                .iter()
                .filter(|c| c.kind == kind)
                .map(|c| c.tallies[0].stall_minutes)
                .sum()
        };
        let truncated: usize = study
            .cells
            .iter()
            .flat_map(|c| c.tallies.iter())
            .map(|t| t.truncated_sessions)
            .sum();
        println!(
            "{:>10.1} {:>12.2} {:>12.2} {:>12} {:>12.3} {:>13.3}",
            burst_len,
            stall_of(sb_analysis::resilience_study::LossKind::Iid),
            stall_of(sb_analysis::resilience_study::LossKind::Burst),
            truncated,
            study.static_mean_latency.value(),
            study.dynamic_mean_latency.value(),
        );
        metrics.merge(&snapshot);
        studies.push(study);
    }
    println!(
        "\nmetrics: {} outages, {} sessions repaired, {} redirected, {} burst slips",
        metrics.counter_total("resilience_outages_total"),
        metrics.counter_total("resilience_repaired_sessions_total"),
        metrics.counter_total("resilience_redirected_total"),
        metrics.counter_total("resilience_burst_slips_total"),
    );
    args.maybe_write_json(&studies);
    args.finish(&runner);
}
