//! Regenerates Table 2: the design-parameter selection rules, plus the
//! resolved (K, P, α) values across the studied bandwidths.

use sb_analysis::lineup::paper_lineup;
use sb_analysis::render::render_evaluations;
use sb_analysis::tables::{evaluate_tables_with, table2_rules};

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    println!("Table 2: design parameter determination (as reconstructed; DESIGN.md section 3)\n");
    for (scheme, rule) in table2_rules() {
        println!("{scheme:7} {rule}");
    }
    println!("\nResolved parameters:\n");
    let rows = evaluate_tables_with(
        &paper_lineup(),
        &[
            100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0, 550.0, 600.0,
        ],
        &runner,
    );
    print!("{}", render_evaluations(&rows));
    args.maybe_write_json(&rows);
    args.finish(&runner);
}
