//! Analytic-vs-simulated cross-check for every scheme, at the paper's
//! spotlight bandwidths. This is the data behind EXPERIMENTS.md.

use sb_analysis::crosscheck::crosscheck_lineup_with;
use sb_analysis::lineup::extended_lineup;
use vod_units::{Mbps, Minutes};

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    let mut all = Vec::new();
    for b in [100.0, 320.0, 600.0] {
        println!("== B = {b} Mb/s ==");
        println!(
            "{:<12} {:>14} {:>14} {:>7} {:>14} {:>14} {:>7} {:>8}",
            "scheme",
            "latency(anl)",
            "latency(sim)",
            "ratio",
            "buffer(anl)MB",
            "buffer(sim)MB",
            "ratio",
            "streams"
        );
        let checks =
            crosscheck_lineup_with(&extended_lineup(), Mbps(b), Minutes(15.0), 120, &runner);
        for c in &checks {
            println!(
                "{:<12} {:>14.4} {:>14.4} {:>7.3} {:>14.1} {:>14.1} {:>7.3} {:>8}",
                c.scheme,
                c.analytic.access_latency.value(),
                c.sim_worst_latency,
                c.latency_ratio(),
                c.analytic.buffer_requirement.value() / 8.0,
                c.sim_peak_buffer / 8.0,
                c.buffer_ratio(),
                c.sim_max_streams
            );
        }
        println!();
        all.extend(checks);
    }
    args.maybe_write_json(&all);
    args.finish(&runner);
}
