//! The metropolitan scenario pack as a benchmark: the full
//! urban/rural/remote preset grid — per-region-class SB vs baselines,
//! the premiere flash crowd, the correlated regional outage and the
//! diurnal × density cell — at paper scale, dispatched through the
//! [`sb_analysis::study`] registry. Emits `BENCH_scenario.json` unless
//! `--json` names another path.
//!
//! `--shards <n>` picks the flagship pass's shard count, `--threads <n>`
//! the worker pool and `--agenda heap|wheel` the engine backend — the
//! JSON artifact and stdout are byte-identical for every combination
//! (the determinism gate `scripts/verify.sh` diffs them). Wall-clock
//! rates go to stderr and to the sibling nondeterministic
//! `BENCH_wallclock.json`, which the byte-identity smokes exclude.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::study::{StudyCtx, StudyOpts};
use sb_bench::{WallclockReport, WallclockRun};

fn main() {
    let study = sb_analysis::study::find("scenario").expect("scenario study registered");
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from(study.artifact().expect("artifact study")));
    }
    let runner = args.runner();
    let opts = StudyOpts::default();
    let ctx = StudyCtx {
        opts: &opts,
        shards: args.shards,
        seed: None,
        runner: &runner,
    };
    let t0 = Instant::now();
    let out = study.run(&ctx).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", out.rendered);
    let metrics = out
        .metrics
        .as_ref()
        .expect("scenario study is instrumented");
    println!(
        "metrics: {} engine events, {} sessions",
        metrics.counter_total("engine_events_total"),
        metrics.counter_total("sim_sessions_total"),
    );
    // Wall-clock rates are machine- and thread-dependent: stderr only,
    // so stdout and the JSON artifact stay byte-identical across
    // `--shards`, `--threads` and `--agenda`.
    eprintln!(
        "wall: {:.3}s at --shards {} --threads {} --agenda {}, {:.0} sessions/sec",
        wall,
        args.shards,
        runner.threads(),
        args.agenda.name(),
        out.sessions as f64 / wall,
    );
    WallclockReport::new(
        "scenario_bench",
        vec![WallclockRun::new(
            args.agenda,
            out.sessions,
            out.events,
            wall,
        )],
    )
    .write_beside(args.json.as_deref());
    args.maybe_write_json_str(&out.report_json);
    args.finish(&runner);
}
