//! Measures §1's throughput argument: hybrid (broadcast + batching) vs
//! pure scheduled multicast at equal bandwidth, across arrival rates.

use sb_analysis::hybrid_study::{throughput_study_with, StudyConfig};

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    let cfg = StudyConfig::default();
    println!(
        "hybrid-vs-pure throughput: {} titles ({} broadcast), B = {:.0}, horizon {:.0} min, \
         mean patience {:.0} min\n",
        cfg.titles,
        cfg.popular,
        cfg.bandwidth.value(),
        cfg.horizon.value(),
        cfg.mean_patience.value()
    );
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>13} {:>13} {:>14}",
        "req/min",
        "requests",
        "pure served",
        "pure renege",
        "hybrid served",
        "hybrid renege",
        "guarantee(min)"
    );
    let rates = [1.0, 2.0, 4.0, 6.0, 8.0, 12.0];
    let points = throughput_study_with(cfg, &rates, &runner);
    for p in &points {
        println!(
            "{:>10.1} {:>10} {:>12} {:>11.1}% {:>13} {:>12.1}% {:>14.3}",
            p.rate_per_minute,
            p.requests,
            p.pure_served,
            p.pure_renege_rate * 100.0,
            p.hybrid_served,
            p.hybrid_renege_rate * 100.0,
            p.broadcast_worst_latency.value()
        );
    }
    args.maybe_write_json(&points);
    args.finish(&runner);
}
