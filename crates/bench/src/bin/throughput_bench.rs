//! Streaming-core throughput: per-scheme engine/agenda accounting plus
//! the cancel-heavy churn stress, dispatched through the
//! [`sb_analysis::study`] registry. Emits `BENCH_throughput.json` unless
//! `--json` names another path.
//!
//! The JSON is fully deterministic (simulated-time rates only), so runs
//! with different `--threads` counts diff clean. Wall-clock rates are
//! machine truth, not simulation truth: they go to stderr and to the
//! sibling `BENCH_wallclock.json` — one timed pass per engine backend
//! (`--agenda` first, the other for comparison) — which the byte-identity
//! smokes in `scripts/verify.sh` explicitly exclude.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::runner::Runner;
use sb_analysis::study::{StudyCtx, StudyOpts};
use sb_bench::{WallclockReport, WallclockRun};
use sb_sim::AgendaKind;

/// The deepest agenda any study cell reached, read back from the
/// serialized report (the registry hands the artifact over as JSON).
fn peak_agenda(report_json: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(report_json).expect("valid report JSON");
    let cells = v
        .as_object()
        .map(|o| serde::field(o, "cells"))
        .and_then(serde_json::Value::as_array)
        .unwrap_or(&[]);
    cells
        .iter()
        .filter_map(|c| {
            c.as_object()
                .map(|o| serde::field(o, "engine"))
                .and_then(serde_json::Value::as_object)
                .map(|e| serde::field(e, "peak_agenda"))
                .and_then(serde_json::Value::as_u64)
        })
        .max()
        .unwrap_or(0)
}

fn main() {
    let study = sb_analysis::study::find("throughput").expect("throughput study registered");
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from(study.artifact().expect("artifact study")));
    }
    let runner = args.runner();
    let opts = StudyOpts::default();
    let ctx = StudyCtx {
        opts: &opts,
        shards: args.shards,
        seed: None,
        runner: &runner,
    };
    let t0 = Instant::now();
    let out = study.run(&ctx).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", out.rendered);
    let metrics = out
        .metrics
        .as_ref()
        .expect("throughput study is instrumented");
    println!(
        "metrics: {} engine events, {} sessions",
        metrics.counter_total("engine_events_total"),
        metrics.counter_total("sim_sessions_total"),
    );
    // Wall-clock rates are machine- and thread-dependent: stderr only,
    // so stdout and the JSON artifact stay byte-identical across
    // `--threads` counts. The study's event denominator includes the
    // churn half (fired + cancelled).
    eprintln!(
        "wall: {:.3}s on {}, {:.0} sessions/sec, {:.0} events/sec, peak agenda {}",
        wall,
        args.agenda.name(),
        out.sessions as f64 / wall,
        out.events as f64 / wall,
        peak_agenda(&out.report_json),
    );
    args.maybe_write_json_str(&out.report_json);

    // The perf trajectory: re-time the same study on the other backend
    // and write both rates beside the deterministic artifact. The
    // comparison pass's report must serialize to the same bytes — the
    // backend is an execution knob, never a result knob.
    let other = match args.agenda {
        AgendaKind::Heap => AgendaKind::Wheel,
        AgendaKind::Wheel => AgendaKind::Heap,
    };
    let other_runner = Runner::new(args.threads).with_agenda(other);
    let other_ctx = StudyCtx {
        opts: &opts,
        shards: args.shards,
        seed: None,
        runner: &other_runner,
    };
    let t1 = Instant::now();
    let other_out = study.run(&other_ctx).expect("valid default config");
    let other_wall = t1.elapsed().as_secs_f64();
    assert_eq!(
        out.report_json, other_out.report_json,
        "heap and wheel passes diverged — agenda determinism is broken",
    );
    eprintln!(
        "wall: {:.3}s on {} (comparison pass), {:.0} sessions/sec",
        other_wall,
        other.name(),
        other_out.sessions as f64 / other_wall,
    );
    let wallclock = WallclockReport::new(
        "throughput_bench",
        vec![
            WallclockRun::new(args.agenda, out.sessions, out.events, wall),
            WallclockRun::new(other, other_out.sessions, other_out.events, other_wall),
        ],
    );
    wallclock.write_beside(args.json.as_deref());
    args.finish(&runner);
}
