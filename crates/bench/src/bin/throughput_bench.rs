//! Streaming-core throughput: per-scheme engine/agenda accounting plus
//! the cancel-heavy churn stress. Emits `BENCH_throughput.json` unless
//! `--json` names another path.
//!
//! The JSON is fully deterministic (simulated-time rates only), so runs
//! with different `--threads` counts diff clean; wall-clock sessions/sec
//! and events/sec go to stderr.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::throughput::{render_throughput, throughput_study, ThroughputConfig};

fn main() {
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from("BENCH_throughput.json"));
    }
    let runner = args.runner();
    let cfg = ThroughputConfig::paper_defaults();
    let t0 = Instant::now();
    let (report, metrics) = throughput_study(&cfg, &runner).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", render_throughput(&report));
    println!(
        "metrics: {} engine events, {} sessions",
        metrics.counter_total("engine_events_total"),
        metrics.counter_total("sim_sessions_total"),
    );
    // Wall-clock rates are machine- and thread-dependent: stderr only,
    // so stdout and the JSON artifact stay byte-identical across
    // `--threads` counts.
    let churn_events = report.churn.engine.fired + report.churn.engine.cancelled;
    eprintln!(
        "wall: {:.3}s, {:.0} sessions/sec, {:.0} events/sec, peak agenda {}",
        wall,
        report.total_sessions as f64 / wall,
        (report.total_events_fired + churn_events) as f64 / wall,
        report
            .cells
            .iter()
            .map(|c| c.engine.peak_agenda)
            .max()
            .unwrap_or(0),
    );
    args.maybe_write_json(&report);
    args.finish(&runner);
}
