//! Streaming-core throughput: per-scheme engine/agenda accounting plus
//! the cancel-heavy churn stress. Emits `BENCH_throughput.json` unless
//! `--json` names another path.
//!
//! The JSON is fully deterministic (simulated-time rates only), so runs
//! with different `--threads` counts diff clean. Wall-clock rates are
//! machine truth, not simulation truth: they go to stderr and to the
//! sibling `BENCH_wallclock.json` — one timed pass per engine backend
//! (`--agenda` first, the other for comparison) — which the byte-identity
//! smokes in `scripts/verify.sh` explicitly exclude.

use std::path::PathBuf;
use std::time::Instant;

use sb_analysis::runner::Runner;
use sb_analysis::throughput::{render_throughput, throughput_study, ThroughputConfig};
use sb_bench::{WallclockReport, WallclockRun};
use sb_sim::AgendaKind;

/// Events a study pass put through the engine, churn half included.
fn pass_events(report: &sb_analysis::throughput::ThroughputReport) -> u64 {
    report.total_events_fired + report.churn.engine.fired + report.churn.engine.cancelled
}

fn main() {
    let mut args = sb_bench::Args::parse();
    if args.json.is_none() {
        args.json = Some(PathBuf::from("BENCH_throughput.json"));
    }
    let runner = args.runner();
    let cfg = ThroughputConfig::paper_defaults();
    let t0 = Instant::now();
    let (report, metrics) = throughput_study(&cfg, &runner).expect("valid default config");
    let wall = t0.elapsed().as_secs_f64();

    print!("{}", render_throughput(&report));
    println!(
        "metrics: {} engine events, {} sessions",
        metrics.counter_total("engine_events_total"),
        metrics.counter_total("sim_sessions_total"),
    );
    // Wall-clock rates are machine- and thread-dependent: stderr only,
    // so stdout and the JSON artifact stay byte-identical across
    // `--threads` counts.
    eprintln!(
        "wall: {:.3}s on {}, {:.0} sessions/sec, {:.0} events/sec, peak agenda {}",
        wall,
        args.agenda.name(),
        report.total_sessions as f64 / wall,
        pass_events(&report) as f64 / wall,
        report
            .cells
            .iter()
            .map(|c| c.engine.peak_agenda)
            .max()
            .unwrap_or(0),
    );
    args.maybe_write_json(&report);

    // The perf trajectory: re-time the same study on the other backend
    // and write both rates beside the deterministic artifact. The
    // comparison pass's report must serialize to the same bytes — the
    // backend is an execution knob, never a result knob.
    let other = match args.agenda {
        AgendaKind::Heap => AgendaKind::Wheel,
        AgendaKind::Wheel => AgendaKind::Heap,
    };
    let other_runner = Runner::new(args.threads).with_agenda(other);
    let t1 = Instant::now();
    let (other_report, _) = throughput_study(&cfg, &other_runner).expect("valid default config");
    let other_wall = t1.elapsed().as_secs_f64();
    assert_eq!(
        serde_json::to_string(&report).expect("serializable report"),
        serde_json::to_string(&other_report).expect("serializable report"),
        "heap and wheel passes diverged — agenda determinism is broken",
    );
    eprintln!(
        "wall: {:.3}s on {} (comparison pass), {:.0} sessions/sec",
        other_wall,
        other.name(),
        other_report.total_sessions as f64 / other_wall,
    );
    let wallclock = WallclockReport::new(
        "throughput_bench",
        vec![
            WallclockRun::new(
                args.agenda,
                report.total_sessions,
                pass_events(&report),
                wall,
            ),
            WallclockRun::new(
                other,
                other_report.total_sessions,
                pass_events(&other_report),
                other_wall,
            ),
        ],
    );
    wallclock.write_beside(args.json.as_deref());
    args.finish(&runner);
}
