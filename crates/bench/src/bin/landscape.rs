//! Beyond the paper: the 1997-98 periodic-broadcast landscape in one
//! table — the paper's schemes plus Fast Broadcasting and (corrected)
//! Harmonic Broadcasting, which trade client receive bandwidth and
//! mid-broadcast tuning for bandwidth efficiency SB refuses to pay for.

use sb_analysis::lineup::landscape_lineup;
use sb_analysis::render::render_evaluations;
use sb_analysis::tables::evaluate_tables_with;

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    println!("periodic-broadcast landscape at the paper's workload (M=10, D=120, b=1.5):\n");
    let rows = evaluate_tables_with(&landscape_lineup(), &[100.0, 320.0, 600.0], &runner);
    print!("{}", render_evaluations(&rows));
    println!(
        "\nnote: FB needs K+1 display-rate tuners at the client; HB:delayed needs to\n\
         record every channel mid-broadcast (see sb_sim::receive_all for the\n\
         original HB's correctness bug, demonstrated)."
    );
    args.maybe_write_json(&rows);
    args.finish(&runner);
}
