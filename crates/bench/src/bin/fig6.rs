//! Regenerates Figure 6: client disk bandwidth requirement (MBytes/sec).

use sb_analysis::figures::figure6;
use sb_analysis::lineup::paper_lineup;
use sb_analysis::render::render_figure;
use sb_analysis::sweep::paper_sweep;

fn main() {
    let args = sb_bench::Args::parse();
    let ids = paper_lineup();
    let fig = figure6(&paper_sweep(&ids), &ids);
    print!("{}", render_figure(&fig));
    args.maybe_write_json(&fig);
}
