//! Regenerates Figures 1–4: the §4 group-transition buffer profiles,
//! measured from the exact slot-level client model at the worst arrival
//! phase for each transition type.

use sb_analysis::figures::figures1_to_4_with;

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    let demos = figures1_to_4_with(&runner);
    for d in &demos {
        println!("== {} ==", d.figure);
        println!("{}", d.description);
        println!("units: {:?}", d.units);
        println!(
            "worst phase t0={}  measured peak = {} units  (section-4 bound: {} units; 1 unit = 60*b*D1 Mbits)",
            d.worst_phase, d.measured_peak_units, d.bound_units
        );
        print!("buffer profile (slot units): ");
        for (t, b) in &d.profile {
            print!("({t},{b}) ");
        }
        println!("\n");
    }
    args.maybe_write_json(&demos);
    args.finish(&runner);
}
