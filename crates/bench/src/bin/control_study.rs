//! Sweeps the popularity-shift scenario: static vs dynamic channel
//! control at increasing arrival rates, same workloads on both sides.

use sb_analysis::control_study::{shift_study, ShiftStudyConfig};

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    let base = ShiftStudyConfig::paper_defaults();
    println!(
        "static vs dynamic control: {} titles ({} broadcast slots), B = {:.0}, \
         shift at {:.0} min (rotate {}), horizon {:.0} min\n",
        base.control.titles,
        base.control.hot_slots,
        base.control.total_bandwidth.value(),
        base.shift_at.value(),
        base.rotate,
        base.horizon.value()
    );
    println!(
        "{:>8} {:>12} {:>13} {:>13} {:>14} {:>8}",
        "req/min", "static lat", "dynamic lat", "static srv", "dynamic srv", "swaps"
    );
    let rates = [2.0, 4.0, 6.0, 8.0];
    let mut studies = Vec::new();
    let mut metrics = sb_metrics::Snapshot::default();
    for &rate in &rates {
        let cfg = ShiftStudyConfig {
            rate,
            ..base.clone()
        };
        let (study, snapshot) = shift_study(&cfg, &runner).expect("feasible control split");
        let swaps: usize = study
            .cells
            .iter()
            .map(|c| c.dynamic_report.swaps_committed)
            .sum();
        println!(
            "{:>8.1} {:>12.3} {:>13.3} {:>13} {:>14} {:>8}",
            rate,
            study.static_mean_latency.value(),
            study.dynamic_mean_latency.value(),
            study.static_served,
            study.dynamic_served,
            swaps
        );
        metrics.merge(&snapshot);
        studies.push(study);
    }
    println!(
        "\nmetrics: {} requests observed, {} reallocations, {} rejections, {} defections",
        metrics.counter_total("control_requests_total"),
        metrics.counter_total("control_reallocations_total"),
        metrics.counter_total("control_rejected_total"),
        metrics.counter_total("control_defections_total"),
    );
    args.maybe_write_json(&studies);
    args.finish(&runner);
}
