//! The latency × buffer trade-off plane at one bandwidth: every scheme,
//! with SB expanded to all candidate widths, and Pareto-dominance marked —
//! §5.4's "cross-examine Figure 7 and Figure 8", made explicit.

use sb_analysis::figures::{dominated, tradeoff_points};

fn main() {
    let args = sb_bench::Args::parse();
    let runner = args.runner();
    let bandwidths = [200.0, 320.0, 600.0];
    let per_b = runner.timed_map("pareto", &bandwidths, |&b| tradeoff_points(b));
    let mut all = Vec::new();
    for (&b, points) in bandwidths.iter().zip(&per_b) {
        println!("== B = {b} Mb/s ==");
        println!(
            "{:<12} {:>14} {:>12} {:>10} {:>9}",
            "scheme", "latency(min)", "buffer(MB)", "io(Mb/s)", "frontier"
        );
        for p in points {
            println!(
                "{:<12} {:>14.4} {:>12.1} {:>10.2} {:>9}",
                p.scheme,
                p.latency,
                p.buffer_mb,
                p.io_mbps,
                if dominated(p, points) { "" } else { "*" }
            );
        }
        println!();
        all.push((b, points.clone()));
    }
    println!("(* = on the latency/buffer Pareto frontier)");
    args.maybe_write_json(&all);
    args.finish(&runner);
}
