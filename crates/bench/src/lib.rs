//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each paper artifact has a binary (`fig5` … `fig8`, `fig1_4`, `table1`,
//! `table2`, `ablation`, `crosscheck`, `hybrid_study`, `landscape`,
//! `pareto`) that prints the regenerated data as text and, with `--json
//! <path>`, also writes the structured data for plotting. All of them
//! execute through [`sb_analysis::runner`]: `--threads N` picks the
//! worker-pool size (output is bit-identical for every N), and
//! `--manifest <path>` writes the run's [`sb_analysis::RunManifest`] —
//! per-stage wall-clock timings — as JSON. The Criterion benches live in
//! `benches/`.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use sb_analysis::runner::Runner;

/// Parsed command line shared by every figure binary.
#[derive(Debug, Default)]
pub struct Args {
    /// `--json <path>`: where to additionally write JSON output.
    pub json: Option<PathBuf>,
    /// `--threads <n>`: runner worker count (0 = one per core, default 1).
    pub threads: usize,
    /// `--manifest <path>`: where to write the JSON run manifest.
    pub manifest: Option<PathBuf>,
    /// `--progress`: live per-stage counters on stderr.
    pub progress: bool,
    /// `--shards <n>`: shard count for scale-out binaries (default 1).
    /// Results are byte-identical for every value; only wall-clock and
    /// per-shard footprints (stderr) change.
    pub shards: usize,
}

impl Args {
    /// Parse `std::env::args()`. Unknown flags abort with a usage message.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    ///
    /// # Panics
    /// Panics on unknown arguments or a missing flag value.
    #[must_use]
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args {
            threads: 1,
            shards: 1,
            ..Args::default()
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => {
                    let path = it.next().expect("--json requires a path");
                    out.json = Some(PathBuf::from(path));
                }
                "--threads" => {
                    let n = it.next().expect("--threads requires a count");
                    out.threads = n.parse().expect("--threads: not an integer");
                }
                "--manifest" => {
                    let path = it.next().expect("--manifest requires a path");
                    out.manifest = Some(PathBuf::from(path));
                }
                "--shards" => {
                    let n = it.next().expect("--shards requires a count");
                    out.shards = n.parse().expect("--shards: not an integer");
                    assert!(out.shards >= 1, "--shards must be at least 1");
                }
                "--progress" => out.progress = true,
                other => panic!(
                    "unknown argument `{other}` (supported: --json <path> --threads <n> \
                     --shards <n> --manifest <path> --progress)"
                ),
            }
        }
        out
    }

    /// The [`Runner`] this invocation asked for.
    #[must_use]
    pub fn runner(&self) -> Runner {
        Runner::new(self.threads).with_progress(self.progress)
    }

    /// Write `value` as pretty JSON if `--json` was given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).expect("serializable artifact");
            std::fs::write(path, json).expect("writable --json path");
            eprintln!("wrote {}", path.display());
        }
    }

    /// Finish the run: print the runner's per-stage timings to stderr and
    /// write the manifest if `--manifest` was given. Timings never touch
    /// stdout, which stays byte-identical across thread counts.
    pub fn finish(&self, runner: &Runner) {
        let manifest = runner.manifest();
        eprint!("{}", manifest.summary());
        if let Some(path) = &self.manifest {
            let json = serde_json::to_string_pretty(&manifest).expect("serializable manifest");
            std::fs::write(path, json).expect("writable --manifest path");
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_json_flag() {
        let a = Args::parse_from(["--json".to_string(), "/tmp/x.json".to_string()]);
        assert_eq!(a.json, Some(PathBuf::from("/tmp/x.json")));
        assert_eq!(a.threads, 1);
        let none = Args::parse_from(std::iter::empty());
        assert!(none.json.is_none());
        assert!(none.manifest.is_none());
    }

    #[test]
    fn parses_runner_flags() {
        let a = Args::parse_from(
            ["--threads", "8", "--manifest", "/tmp/m.json", "--progress"].map(str::to_string),
        );
        assert_eq!(a.threads, 8);
        assert_eq!(a.manifest, Some(PathBuf::from("/tmp/m.json")));
        assert!(a.progress);
        assert_eq!(a.runner().threads(), 8);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let a = Args::parse_from(["--threads", "0"].map(str::to_string));
        assert!(a.runner().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_flags() {
        let _ = Args::parse_from(["--bogus".to_string()]);
    }

    #[test]
    fn parses_shards_and_defaults_to_one() {
        let a = Args::parse_from(["--shards", "4"].map(str::to_string));
        assert_eq!(a.shards, 4);
        assert_eq!(Args::parse_from(std::iter::empty()).shards, 1);
    }

    #[test]
    #[should_panic(expected = "--shards must be at least 1")]
    fn rejects_zero_shards() {
        let _ = Args::parse_from(["--shards", "0"].map(str::to_string));
    }
}
