//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each paper artifact has a binary (`fig5` … `fig8`, `fig1_4`, `table1`,
//! `table2`, `ablation`, `crosscheck`, `hybrid_study`, `landscape`,
//! `pareto`) that prints the regenerated data as text and, with `--json
//! <path>`, also writes the structured data for plotting. All of them
//! execute through [`sb_analysis::runner`]: `--threads N` picks the
//! worker-pool size (output is bit-identical for every N), and
//! `--manifest <path>` writes the run's [`sb_analysis::RunManifest`] —
//! per-stage wall-clock timings — as JSON. The Criterion benches live in
//! `benches/`.
//!
//! The study benchmarks (`throughput_bench`, `scale_bench`,
//! `scenario_bench`, `recovery_bench`, `frontier_bench`,
//! `distribution_bench`) dispatch through [`sb_analysis::study::find`] —
//! the same registry the `sbcast` subcommands run on — and only add the
//! wall-clock instrumentation: timed passes on stderr plus the
//! nondeterministic [`WallclockReport`] artifact.

#![forbid(unsafe_code)]

use std::path::PathBuf;

use sb_analysis::runner::Runner;
use sb_sim::AgendaKind;
use serde::{Deserialize, Serialize};

/// Parsed command line shared by every figure binary.
#[derive(Debug, Default)]
pub struct Args {
    /// `--json <path>`: where to additionally write JSON output.
    pub json: Option<PathBuf>,
    /// `--threads <n>`: runner worker count (0 = one per core, default 1).
    pub threads: usize,
    /// `--manifest <path>`: where to write the JSON run manifest.
    pub manifest: Option<PathBuf>,
    /// `--progress`: live per-stage counters on stderr.
    pub progress: bool,
    /// `--shards <n>`: shard count for scale-out binaries (default 1).
    /// Results are byte-identical for every value; only wall-clock and
    /// per-shard footprints (stderr) change.
    pub shards: usize,
    /// `--agenda heap|wheel`: engine event-store backend (default heap).
    /// Results are byte-identical for either; only wall-clock changes.
    pub agenda: AgendaKind,
    /// `--sessions <n>`: session-count override for binaries that size
    /// their own workload (`scale_bench`); `None` keeps the binary's
    /// default.
    pub sessions: Option<usize>,
}

impl Args {
    /// Parse `std::env::args()`. Unknown flags abort with a usage message.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    ///
    /// # Panics
    /// Panics on unknown arguments or a missing flag value.
    #[must_use]
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args {
            threads: 1,
            shards: 1,
            ..Args::default()
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => {
                    let path = it.next().expect("--json requires a path");
                    out.json = Some(PathBuf::from(path));
                }
                "--threads" => {
                    let n = it.next().expect("--threads requires a count");
                    out.threads = n.parse().expect("--threads: not an integer");
                }
                "--manifest" => {
                    let path = it.next().expect("--manifest requires a path");
                    out.manifest = Some(PathBuf::from(path));
                }
                "--shards" => {
                    let n = it.next().expect("--shards requires a count");
                    out.shards = n.parse().expect("--shards: not an integer");
                    assert!(out.shards >= 1, "--shards must be at least 1");
                }
                "--agenda" => {
                    let kind = it.next().expect("--agenda requires heap|wheel");
                    out.agenda = AgendaKind::parse(&kind)
                        .unwrap_or_else(|| panic!("--agenda: expected heap|wheel, got `{kind}`"));
                }
                "--sessions" => {
                    let n = it.next().expect("--sessions requires a count");
                    out.sessions = Some(n.parse().expect("--sessions: not an integer"));
                }
                "--progress" => out.progress = true,
                other => panic!(
                    "unknown argument `{other}` (supported: --json <path> --threads <n> \
                     --shards <n> --agenda heap|wheel --sessions <n> --manifest <path> \
                     --progress)"
                ),
            }
        }
        out
    }

    /// The [`Runner`] this invocation asked for.
    #[must_use]
    pub fn runner(&self) -> Runner {
        Runner::new(self.threads)
            .with_progress(self.progress)
            .with_agenda(self.agenda)
    }

    /// Write `value` as pretty JSON if `--json` was given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).expect("serializable artifact");
            std::fs::write(path, json).expect("writable --json path");
            eprintln!("wrote {}", path.display());
        }
    }

    /// Write pre-serialized pretty JSON — a [`sb_analysis::StudyOutput`]'s
    /// `report_json` — if `--json` was given. Byte-for-byte what
    /// [`Args::maybe_write_json`] would produce from the report value.
    pub fn maybe_write_json_str(&self, json: &str) {
        if let Some(path) = &self.json {
            std::fs::write(path, json).expect("writable --json path");
            eprintln!("wrote {}", path.display());
        }
    }

    /// Finish the run: print the runner's per-stage timings to stderr and
    /// write the manifest if `--manifest` was given. Timings never touch
    /// stdout, which stays byte-identical across thread counts.
    pub fn finish(&self, runner: &Runner) {
        let manifest = runner.manifest();
        eprint!("{}", manifest.summary());
        if let Some(path) = &self.manifest {
            let json = serde_json::to_string_pretty(&manifest).expect("serializable manifest");
            std::fs::write(path, json).expect("writable --manifest path");
            eprintln!("wrote {}", path.display());
        }
    }
}

/// One timed pass of a wall-clock benchmark on one engine backend.
///
/// Everything here is *nondeterministic by design* — wall seconds vary
/// run to run and machine to machine — which is why these records go to
/// [`WallclockReport`]'s own artifact (`BENCH_wallclock.json`) and never
/// into the deterministic study JSON that `scripts/verify.sh` diffs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallclockRun {
    /// Backend name (`heap` or `wheel`).
    pub backend: String,
    /// Sessions streamed through the simulator in this pass.
    pub sessions: usize,
    /// Engine events fired in this pass.
    pub events: u64,
    /// Wall-clock seconds the pass took.
    pub wall_secs: f64,
    /// `sessions / wall_secs`.
    pub sessions_per_sec: f64,
    /// `events / wall_secs`.
    pub events_per_sec: f64,
}

impl WallclockRun {
    /// Build a run record from raw counts and a measured duration.
    #[must_use]
    pub fn new(backend: AgendaKind, sessions: usize, events: u64, wall_secs: f64) -> Self {
        let secs = wall_secs.max(1e-9);
        Self {
            backend: backend.name().to_string(),
            sessions,
            events,
            wall_secs,
            sessions_per_sec: sessions as f64 / secs,
            events_per_sec: events as f64 / secs,
        }
    }
}

/// The committed wall-clock perf trajectory: per-backend throughput of
/// one benchmark binary, plus the wheel-over-heap speedup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WallclockReport {
    /// Which binary produced this (`throughput_bench`, `scale_bench`).
    pub benchmark: String,
    /// One record per timed pass, in execution order.
    pub runs: Vec<WallclockRun>,
    /// Wheel sessions/sec over heap sessions/sec (1.0 when either side
    /// is missing). Indicative only — single-run timings are noisy.
    pub wheel_speedup: f64,
}

impl WallclockReport {
    /// Assemble a report, deriving the speedup from the best pass of
    /// each backend.
    #[must_use]
    pub fn new(benchmark: &str, runs: Vec<WallclockRun>) -> Self {
        let best = |name: &str| {
            runs.iter()
                .filter(|r| r.backend == name)
                .map(|r| r.sessions_per_sec)
                .fold(f64::NAN, f64::max)
        };
        let (heap, wheel) = (best("heap"), best("wheel"));
        let wheel_speedup = if heap.is_finite() && wheel.is_finite() && heap > 0.0 {
            wheel / heap
        } else {
            1.0
        };
        Self {
            benchmark: benchmark.to_string(),
            runs,
            wheel_speedup,
        }
    }

    /// Write the report next to `sibling` (or into the working directory
    /// when the run wrote no deterministic artifact) as
    /// `BENCH_wallclock.json`.
    ///
    /// # Panics
    /// Panics when the path is not writable — wall-clock evidence is a
    /// deliverable here, not a best-effort extra.
    pub fn write_beside(&self, sibling: Option<&std::path::Path>) {
        let dir = sibling
            .and_then(std::path::Path::parent)
            .unwrap_or_else(|| std::path::Path::new("."));
        let path = dir.join("BENCH_wallclock.json");
        let json = serde_json::to_string_pretty(self).expect("serializable wallclock report");
        std::fs::write(&path, json).expect("writable BENCH_wallclock.json path");
        eprintln!(
            "wrote {} (nondeterministic; excluded from diffs)",
            path.display()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_json_flag() {
        let a = Args::parse_from(["--json".to_string(), "/tmp/x.json".to_string()]);
        assert_eq!(a.json, Some(PathBuf::from("/tmp/x.json")));
        assert_eq!(a.threads, 1);
        let none = Args::parse_from(std::iter::empty());
        assert!(none.json.is_none());
        assert!(none.manifest.is_none());
    }

    #[test]
    fn parses_runner_flags() {
        let a = Args::parse_from(
            ["--threads", "8", "--manifest", "/tmp/m.json", "--progress"].map(str::to_string),
        );
        assert_eq!(a.threads, 8);
        assert_eq!(a.manifest, Some(PathBuf::from("/tmp/m.json")));
        assert!(a.progress);
        assert_eq!(a.runner().threads(), 8);
    }

    #[test]
    fn zero_threads_means_all_cores() {
        let a = Args::parse_from(["--threads", "0"].map(str::to_string));
        assert!(a.runner().threads() >= 1);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_flags() {
        let _ = Args::parse_from(["--bogus".to_string()]);
    }

    #[test]
    fn parses_shards_and_defaults_to_one() {
        let a = Args::parse_from(["--shards", "4"].map(str::to_string));
        assert_eq!(a.shards, 4);
        assert_eq!(Args::parse_from(std::iter::empty()).shards, 1);
    }

    #[test]
    #[should_panic(expected = "--shards must be at least 1")]
    fn rejects_zero_shards() {
        let _ = Args::parse_from(["--shards", "0"].map(str::to_string));
    }

    #[test]
    fn parses_agenda_and_sessions() {
        let a = Args::parse_from(["--agenda", "wheel", "--sessions", "500000"].map(str::to_string));
        assert_eq!(a.agenda, AgendaKind::Wheel);
        assert_eq!(a.sessions, Some(500_000));
        assert_eq!(a.runner().agenda(), AgendaKind::Wheel);
        let d = Args::parse_from(std::iter::empty());
        assert_eq!(d.agenda, AgendaKind::Heap);
        assert_eq!(d.sessions, None);
    }

    #[test]
    #[should_panic(expected = "expected heap|wheel")]
    fn rejects_unknown_agenda() {
        let _ = Args::parse_from(["--agenda", "btree"].map(str::to_string));
    }

    #[test]
    fn wallclock_report_derives_speedup_from_best_passes() {
        let runs = vec![
            WallclockRun::new(AgendaKind::Heap, 100, 1000, 2.0),
            WallclockRun::new(AgendaKind::Heap, 100, 1000, 4.0),
            WallclockRun::new(AgendaKind::Wheel, 100, 1000, 1.0),
        ];
        let report = WallclockReport::new("t", runs);
        assert!(
            (report.wheel_speedup - 2.0).abs() < 1e-12,
            "best heap 50/s, wheel 100/s"
        );
        assert_eq!(report.runs.len(), 3);
        assert!((report.runs[0].sessions_per_sec - 50.0).abs() < 1e-12);
        // One-sided reports fall back to a neutral speedup.
        let only_heap =
            WallclockReport::new("t", vec![WallclockRun::new(AgendaKind::Heap, 1, 1, 1.0)]);
        assert!((only_heap.wheel_speedup - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wallclock_report_round_trips_through_json() {
        let report = WallclockReport::new(
            "scale_bench",
            vec![WallclockRun::new(AgendaKind::Wheel, 42, 420, 0.5)],
        );
        let json = serde_json::to_string(&report).unwrap();
        for field in [
            "backend",
            "sessions",
            "events",
            "wall_secs",
            "sessions_per_sec",
            "wheel_speedup",
        ] {
            assert!(json.contains(field), "missing `{field}` in {json}");
        }
        let back: WallclockReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
