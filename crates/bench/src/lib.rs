//! Shared plumbing for the figure-regeneration binaries.
//!
//! Each paper artifact has a binary (`fig5` … `fig8`, `fig1_4`, `table1`,
//! `table2`, `ablation`, `crosscheck`) that prints the regenerated data as
//! text and, with `--json <path>`, also writes the structured data for
//! plotting. The Criterion benches live in `benches/`.

#![forbid(unsafe_code)]

use std::path::PathBuf;

/// Parsed command line shared by every figure binary.
#[derive(Debug, Default)]
pub struct Args {
    /// `--json <path>`: where to additionally write JSON output.
    pub json: Option<PathBuf>,
}

impl Args {
    /// Parse `std::env::args()`. Unknown flags abort with a usage message.
    #[must_use]
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    ///
    /// # Panics
    /// Panics on unknown arguments or a missing `--json` value.
    #[must_use]
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--json" => {
                    let path = it.next().expect("--json requires a path");
                    out.json = Some(PathBuf::from(path));
                }
                other => panic!("unknown argument `{other}` (supported: --json <path>)"),
            }
        }
        out
    }

    /// Write `value` as pretty JSON if `--json` was given.
    pub fn maybe_write_json<T: serde::Serialize>(&self, value: &T) {
        if let Some(path) = &self.json {
            let json = serde_json::to_string_pretty(value).expect("serializable artifact");
            std::fs::write(path, json).expect("writable --json path");
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_json_flag() {
        let a = Args::parse_from(["--json".to_string(), "/tmp/x.json".to_string()]);
        assert_eq!(a.json, Some(PathBuf::from("/tmp/x.json")));
        let none = Args::parse_from(std::iter::empty());
        assert!(none.json.is_none());
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_flags() {
        let _ = Args::parse_from(["--bogus".to_string()]);
    }
}
