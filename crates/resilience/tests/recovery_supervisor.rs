//! The crash-recovery supervisor's flagship invariants, end to end.
//!
//! 1. **Bitwise identity under chaos** — a supervised run whose shards
//!    are killed (at ticks and at checkpoints) and resumed from their
//!    checkpoints produces the exact bytes of an uninterrupted
//!    `SystemSim::execute`, for every `shards {1,2,4} × threads {1,2,4}
//!    × agenda {heap,wheel}` combination.
//! 2. **Corruption fallback** — a corrupted latest checkpoint is
//!    rejected by its checksum and the shard falls back to the previous
//!    one, still landing on identical bytes.
//! 3. **Graceful degradation** — a shard that exhausts its restart
//!    budget yields an explicit [`PartialRun`] with a [`MissingShard`]
//!    marker, never a panic, and the survivors still merge canonically.

use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_resilience::{Backoff, CrashScript, Recovered, RunSpec, Supervisor};
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::{AgendaKind, RunConfig, RunOutcome};

fn lineup() -> (SystemConfig, sb_core::plan::ChannelPlan, Vec<Request>) {
    let cfg = SystemConfig::paper_defaults(Mbps(300.0));
    let plan = Skyscraper::with_width(Width::Capped(52))
        .plan(&cfg)
        .unwrap();
    let requests: Vec<Request> = (0..240)
        .map(|i| Request {
            at: Minutes(45.0 * (i as f64 + 0.31) / 240.0),
            video: VideoId(i % 10),
        })
        .collect();
    (cfg, plan, requests)
}

fn outcome_bytes(o: &RunOutcome) -> (String, String, String) {
    (
        serde_json::to_string(&o.summary).unwrap(),
        serde_json::to_string(&o.fold).unwrap(),
        serde_json::to_string(&o.snapshot).unwrap(),
    )
}

fn backoff() -> Backoff {
    Backoff::new(Minutes(1.0), 2.0, 8).unwrap()
}

#[test]
fn supervised_chaos_is_bitwise_identical_to_uninterrupted_execute() {
    let (cfg, plan, requests) = lineup();
    let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
    let supervisor = Supervisor::new(backoff(), 10).unwrap();
    for shards in [1usize, 2, 4] {
        // Kill every shard once at its first checkpoint, and shard 0 a
        // second time mid-stream by tick.
        let mut spec_items: Vec<String> = (0..shards).map(|s| format!("kill:{s}@ckpt:1")).collect();
        spec_items.push("kill:0@tick:40000".to_string());
        let chaos = CrashScript::parse(&spec_items.join(";")).unwrap();
        for threads in [1usize, 2, 4] {
            for agenda in [AgendaKind::Heap, AgendaKind::Wheel] {
                let base = sim
                    .execute(
                        RunConfig::new(&requests)
                            .shards(shards)
                            .threads(threads)
                            .agenda(agenda),
                    )
                    .unwrap();
                let spec = RunSpec {
                    shards,
                    threads,
                    agenda,
                    ..RunSpec::default()
                };
                let recovered = supervisor.run(&sim, &requests, &spec, &chaos).unwrap();
                let Recovered::Complete { outcome, stats } = recovered else {
                    panic!("S={shards} T={threads} {agenda:?}: expected a complete run");
                };
                assert_eq!(
                    outcome_bytes(&base),
                    outcome_bytes(&outcome),
                    "S={shards} T={threads} {agenda:?}: supervised bytes diverged"
                );
                assert!(
                    stats.crashes_injected >= shards as u64,
                    "S={shards}: every scripted per-shard kill should fire \
                     (got {})",
                    stats.crashes_injected
                );
                assert!(stats.restores >= 1, "kills at ckpt 1 resume from it");
                assert!(stats.checkpoints_taken > 0);
                assert!(stats.recovery_delay.value() > 0.0, "delays are modeled");
            }
        }
    }
}

#[test]
fn chaos_free_supervision_matches_execute_too() {
    let (cfg, plan, requests) = lineup();
    let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
    let supervisor = Supervisor::new(backoff(), 25).unwrap();
    let base = sim
        .execute(RunConfig::new(&requests).shards(2).threads(2))
        .unwrap();
    let spec = RunSpec {
        shards: 2,
        threads: 2,
        ..RunSpec::default()
    };
    let recovered = supervisor
        .run(&sim, &requests, &spec, &CrashScript::none())
        .unwrap();
    let Recovered::Complete { outcome, stats } = recovered else {
        panic!("expected a complete run");
    };
    assert_eq!(outcome_bytes(&base), outcome_bytes(&outcome));
    assert_eq!(stats.crashes_injected, 0);
    assert_eq!(stats.restores, 0);
    assert_eq!(stats.replayed_sessions, 0);
    assert_eq!(stats.recovery_delay, Minutes(0.0));
}

#[test]
fn corrupted_checkpoint_is_rejected_and_the_previous_one_serves() {
    let (cfg, plan, requests) = lineup();
    let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
    let cadence = 10u64;
    let supervisor = Supervisor::new(backoff(), cadence).unwrap();
    let base = sim.execute(RunConfig::new(&requests).shards(2)).unwrap();
    // Corrupt shard 1's second checkpoint *and* kill it right there: the
    // restore must reject checkpoint 2 by checksum and fall back to
    // checkpoint 1, replaying one cadence worth of sessions.
    let chaos = CrashScript::parse("corrupt:1@ckpt:2;kill:1@ckpt:2").unwrap();
    let spec = RunSpec {
        shards: 2,
        threads: 2,
        ..RunSpec::default()
    };
    let recovered = supervisor.run(&sim, &requests, &spec, &chaos).unwrap();
    let Recovered::Complete { outcome, stats } = recovered else {
        panic!("expected a complete run");
    };
    assert_eq!(
        outcome_bytes(&base),
        outcome_bytes(&outcome),
        "corruption fallback changed the bytes"
    );
    assert_eq!(stats.crashes_injected, 1);
    assert_eq!(stats.corrupt_rejected, 1, "checksum must catch the flip");
    assert_eq!(stats.restores, 1, "the previous checkpoint serves");
    assert_eq!(
        stats.replayed_sessions, cadence,
        "falling back one checkpoint replays exactly one cadence"
    );
}

#[test]
fn exhausted_restart_budget_degrades_to_an_explicit_partial_run() {
    let (cfg, plan, requests) = lineup();
    let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
    // One restart allowed; two kills scripted on shard 1 → shard 1 lost.
    let tight = Backoff::new(Minutes(1.0), 2.0, 1).unwrap();
    let supervisor = Supervisor::new(tight, 10).unwrap();
    let chaos = CrashScript::parse("kill:1@ckpt:1;kill:1@ckpt:3").unwrap();
    let spec = RunSpec {
        shards: 2,
        threads: 2,
        ..RunSpec::default()
    };
    let recovered = supervisor.run(&sim, &requests, &spec, &chaos).unwrap();
    let Recovered::Partial(partial) = recovered else {
        panic!("expected a degraded run");
    };
    assert_eq!(partial.missing.len(), 1, "exactly one shard is lost");
    let marker = &partial.missing[0];
    assert_eq!(marker.shard, 1);
    assert_eq!(marker.attempts, 1, "the whole budget was consumed");
    assert!(
        marker.last_error.contains("killed"),
        "the marker names the crash: {}",
        marker.last_error
    );
    // The survivors still merge: shard 0's sessions are all present and
    // match a solo run of the same slice.
    assert!(partial.outcome.summary.sessions > 0);
    assert!(partial.outcome.summary.sessions < 240);
    assert_eq!(partial.stats.crashes_injected, 2);
    // Determinism of degradation itself: the same inputs lose the same
    // shard with the same bytes.
    let again = supervisor.run(&sim, &requests, &spec, &chaos).unwrap();
    let Recovered::Partial(partial2) = again else {
        panic!("expected the same degraded run");
    };
    assert_eq!(
        outcome_bytes(&partial.outcome),
        outcome_bytes(&partial2.outcome)
    );
    assert_eq!(partial.missing, partial2.missing);
}

#[test]
fn seeded_scripts_drive_identical_supervised_runs() {
    let (cfg, plan, requests) = lineup();
    let sim = SystemSim::new(&plan, cfg.display_rate, ClientPolicy::LatestFeasible);
    let supervisor = Supervisor::new(backoff(), 10).unwrap();
    let chaos = CrashScript::seeded(7, 4, 6);
    let spec = RunSpec {
        shards: 4,
        threads: 4,
        ..RunSpec::default()
    };
    let a = supervisor.run(&sim, &requests, &spec, &chaos).unwrap();
    let b = supervisor.run(&sim, &requests, &spec, &chaos).unwrap();
    assert_eq!(outcome_bytes(a.outcome()), outcome_bytes(b.outcome()));
    assert_eq!(a.stats(), b.stats());
    // And when every shard completes, the usual identity holds.
    if let Recovered::Complete { outcome, .. } = &a {
        let base = sim
            .execute(RunConfig::new(&requests).shards(4).threads(4))
            .unwrap();
        assert_eq!(outcome_bytes(&base), outcome_bytes(outcome));
    }
}
