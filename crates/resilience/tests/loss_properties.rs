//! Property tests for the loss pipeline: random seeds and rates, every
//! client model, both loss processes.
//!
//! Invariants:
//! * the stalled timeline is always jitter-free once stalls are credited,
//! * losses only ever push receptions *later* (never earlier),
//! * [`Degradation::Stall`] replay equals [`apply_losses`] exactly,
//! * Gilbert–Elliott with equal per-state loss probabilities degenerates
//!   to the i.i.d. [`LossModel`], occurrence by occurrence.

use proptest::prelude::*;
use vod_units::Mbps;

use sb_core::config::SystemConfig;
use sb_core::plan::{ChannelPlan, VideoId};
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_metrics::NullRecorder;
use sb_pyramid::{HarmonicBroadcasting, PermutationPyramid};
use sb_resilience::{as_stall_report, replay, Degradation, GilbertElliott};
use sb_sim::policy::ClientPolicy;
use sb_sim::trace::{ClientModel, PausingClient, RecordingClient, SessionTrace};
use sb_sim::{apply_losses, jitter_free_with_stalls, LossModel};

/// Each client model paired with a plan it can actually receive:
/// tune-at-start on SB, the pausing client on PPB, the recorder on HB.
fn sessions(bandwidth: f64, arrival: f64) -> Vec<(ChannelPlan, SessionTrace)> {
    let cfg = SystemConfig::paper_defaults(Mbps(bandwidth));
    let mut out = Vec::new();
    let cases: Vec<(Box<dyn BroadcastScheme>, Box<dyn ClientModel>)> = vec![
        (
            Box::new(Skyscraper::with_width(Width::Capped(52))),
            Box::new(ClientPolicy::LatestFeasible),
        ),
        (Box::new(PermutationPyramid::a()), Box::new(PausingClient)),
        (
            Box::new(HarmonicBroadcasting::delayed()),
            Box::new(RecordingClient::default()),
        ),
    ];
    for (scheme, model) in cases {
        let Ok(plan) = scheme.plan(&cfg) else {
            continue;
        };
        let Ok(trace) = model.session(
            &plan,
            VideoId(0),
            vod_units::Minutes(arrival),
            cfg.display_rate,
        ) else {
            continue;
        };
        out.push((plan, trace));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under i.i.d. loss, every client model's damaged timeline is
    /// jitter-free with stalls credited, and no reception moves earlier.
    #[test]
    fn iid_losses_stall_but_never_rewind(
        p in 0.0f64..0.6,
        seed in 0u64..1_000,
        bandwidth in 250.0f64..500.0,
        arrival in 0.0f64..40.0,
    ) {
        let losses = LossModel::new(p, seed).expect("p in range");
        for (plan, trace) in sessions(bandwidth, arrival) {
            let report = apply_losses(&plan, &trace, &losses);
            prop_assert!(jitter_free_with_stalls(&report, 1e-6));
            for (before, after) in trace.receptions.iter().zip(&report.trace.receptions) {
                prop_assert!(after.start.value() >= before.start.value() - 1e-9);
            }
        }
    }

    /// The same invariants hold under bursty Gilbert–Elliott loss, and
    /// the Stall-policy replay reproduces `apply_losses` exactly.
    #[test]
    fn bursty_losses_stall_but_never_rewind(
        burst in 1.5f64..8.0,
        gap in 4.0f64..60.0,
        seed in 0u64..1_000,
        bandwidth in 250.0f64..500.0,
        arrival in 0.0f64..40.0,
    ) {
        let losses = GilbertElliott::burst(burst, gap, 1.0, seed).expect("means above 1");
        for (plan, trace) in sessions(bandwidth, arrival) {
            let report = apply_losses(&plan, &trace, &losses);
            prop_assert!(jitter_free_with_stalls(&report, 1e-6));
            for (before, after) in trace.receptions.iter().zip(&report.trace.receptions) {
                prop_assert!(after.start.value() >= before.start.value() - 1e-9);
            }
            let replayed = replay(&plan, &trace, &losses, Degradation::Stall, &mut NullRecorder);
            prop_assert_eq!(&as_stall_report(&replayed), &report);
        }
    }

    /// Equal per-state loss probabilities make the burst structure
    /// unobservable: the chain degenerates to the i.i.d. model with the
    /// same seed, occurrence by occurrence.
    #[test]
    fn equal_state_probabilities_degenerate_to_bernoulli(
        p in 0.0f64..1.0,
        a in 0.05f64..0.95,
        b in 0.05f64..0.95,
        seed in 0u64..10_000,
        channel in 0usize..8,
    ) {
        let ge = GilbertElliott::new(a, b, p, p, seed).expect("params in range");
        let iid = LossModel::new(p, seed).expect("p in range");
        for occ in 0..200u64 {
            prop_assert_eq!(ge.is_lost(channel, occ), iid.is_lost(channel, occ));
        }
    }
}
