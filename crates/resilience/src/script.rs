//! Fault-injection scripts: outages, restarts, burst episodes, churn.
//!
//! A [`FaultScript`] is a declarative, fully deterministic description of
//! everything that goes wrong during a run: channel outages (a physical
//! channel dark for a window), server restart epochs, bursty-loss
//! episodes (a [`GilbertElliott`] chain active only inside a time
//! window), and seeded client churn (a fraction of waiting clients
//! abandoning at an instant). The control plane consumes the script as
//! first-class simulation events; the loss pipeline consumes it through
//! [`ScriptedLoss`], which compiles the time-windowed parts down to the
//! pure `(channel, occurrence)` contract of
//! [`LossProcess`] — occurrence `occ` of channel `c`
//! starts at `phase + occ · period`, so window membership is itself a
//! pure function of the pair and replays stay order-independent.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::error::{Result, SchemeError};
use sb_core::plan::ChannelPlan;
use sb_sim::LossProcess;

use crate::loss::GilbertElliott;

/// One channel dark for a window: every occurrence whose broadcast
/// interval intersects `[start, start + duration)` is lost, and the
/// control plane takes the slot out of service at `start`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelOutage {
    /// Physical channel slot that fails.
    pub channel: usize,
    /// When the outage begins.
    pub start: Minutes,
    /// How long it lasts.
    pub duration: Minutes,
}

impl ChannelOutage {
    /// First instant the channel is live again.
    #[must_use]
    pub fn end(&self) -> Minutes {
        Minutes(self.start.value() + self.duration.value())
    }
}

/// A bursty-loss episode: a Gilbert–Elliott chain that applies only to
/// occurrences starting inside `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstEpisode {
    /// When the episode begins.
    pub start: Minutes,
    /// How long it lasts.
    pub duration: Minutes,
    /// The burst-loss chain active during the episode.
    pub loss: GilbertElliott,
}

impl BurstEpisode {
    /// First instant past the episode.
    #[must_use]
    pub fn end(&self) -> Minutes {
        Minutes(self.start.value() + self.duration.value())
    }
}

/// Seeded client abandonment: at `at`, each waiting client independently
/// abandons with probability `fraction` (drawn from a stream seeded by
/// `seed`, so the run stays reproducible).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// When the abandonment wave hits.
    pub at: Minutes,
    /// Per-client abandonment probability in `[0, 1]`.
    pub fraction: f64,
    /// Seed for the abandonment draws.
    pub seed: u64,
}

/// Everything scripted to go wrong during one run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultScript {
    /// Channel outages (slot dark for a window).
    pub outages: Vec<ChannelOutage>,
    /// Server restart epochs: pending reconfigurations are cancelled and
    /// demand estimators reset, as after a crash-recovery.
    pub restarts: Vec<Minutes>,
    /// Time-windowed bursty-loss episodes.
    pub bursts: Vec<BurstEpisode>,
    /// Seeded client-abandonment waves.
    pub churn: Vec<ChurnEvent>,
}

impl FaultScript {
    /// The empty script: nothing goes wrong.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the script injects no faults at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
            && self.restarts.is_empty()
            && self.bursts.is_empty()
            && self.churn.is_empty()
    }

    /// Validate the script once, before a run consumes it.
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] if any window has a non-positive
    /// duration, any event time is negative, or any churn fraction falls
    /// outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        for o in &self.outages {
            let ok = o.start.value() >= 0.0 && o.duration.value() > 0.0;
            if !ok {
                return Err(SchemeError::InvalidConfig {
                    what: "fault script outages need a non-negative start and positive duration",
                });
            }
        }
        for b in &self.bursts {
            let ok = b.start.value() >= 0.0 && b.duration.value() > 0.0;
            if !ok {
                return Err(SchemeError::InvalidConfig {
                    what: "fault script burst episodes need a non-negative start and positive duration",
                });
            }
        }
        for r in &self.restarts {
            if r.value() < 0.0 {
                return Err(SchemeError::InvalidConfig {
                    what: "fault script restart epochs must be non-negative",
                });
            }
        }
        for c in &self.churn {
            if c.at.value() < 0.0 || !(0.0..=1.0).contains(&c.fraction) {
                return Err(SchemeError::InvalidConfig {
                    what: "fault script churn needs a non-negative time and fraction within [0, 1]",
                });
            }
        }
        Ok(())
    }

    /// A correlated regional outage: every broadcast slot in `slots`
    /// goes dark over the same `[start, start + duration)` window — the
    /// fault signature of a metro region losing its head-end (power cut,
    /// fiber backhaul severed) rather than one channel failing alone.
    ///
    /// `slots` is typically a scenario's `region_slots(region, hot_slots)`
    /// list, so the generated script hits exactly the slots the region's
    /// shard owns. Slot order is preserved, making the script a pure
    /// function of its inputs (deterministic across runs).
    #[must_use]
    pub fn correlated_outages(slots: &[usize], start: Minutes, duration: Minutes) -> Self {
        Self {
            outages: slots
                .iter()
                .map(|&channel| ChannelOutage {
                    channel,
                    start,
                    duration,
                })
                .collect(),
            ..Self::none()
        }
    }

    /// Total minutes of `[start, end)` during which `channel` is dark.
    #[must_use]
    pub fn outage_overlap(&self, channel: usize, start: Minutes, end: Minutes) -> Minutes {
        let total = self
            .outages
            .iter()
            .filter(|o| o.channel == channel)
            .map(|o| {
                let lo = start.value().max(o.start.value());
                let hi = end.value().min(o.end().value());
                (hi - lo).max(0.0)
            })
            .sum();
        Minutes(total)
    }
}

/// What the control plane did about the scripted faults during one run —
/// the recovery-side ledger [`ControlReport`](../../sb_control) carries.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResilienceOutcome {
    /// Outage windows processed.
    pub outages: usize,
    /// Allocator reconfigurations (out-of-service swaps + restorations)
    /// triggered by outages.
    pub reallocations: usize,
    /// In-flight sessions repaired after losing their channel mid-run.
    pub repaired_sessions: usize,
    /// Admissions redirected to the on-demand pool because their
    /// broadcast channel was dark.
    pub redirected: usize,
    /// Backoff retries performed by deferred admissions.
    pub retries: usize,
    /// Admissions rejected after exhausting their backoff attempts.
    pub backoff_rejects: usize,
    /// Waiting clients lost to churn events.
    pub churned: usize,
    /// Server restarts processed.
    pub restarts: usize,
    /// Repair stall time summed over sessions (minutes).
    pub stall_minutes: f64,
    /// Content skipped by `Degradation::SkipSegment` (display minutes).
    pub skipped_minutes: f64,
    /// Playback degraded by `Degradation::QualityDrop` (display minutes).
    pub degraded_minutes: f64,
}

impl ResilienceOutcome {
    /// `true` when the run saw no faults and took no recovery actions.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// A [`FaultScript`] compiled against a [`ChannelPlan`] into a pure
/// `(channel, occurrence)` loss process layered over a base process.
///
/// An occurrence is lost if the base process drops it, **or** a burst
/// episode covering its start time drops it, **or** its broadcast
/// interval intersects an outage window on its channel.
#[derive(Debug, Clone)]
pub struct ScriptedLoss<'a, L: LossProcess + ?Sized> {
    /// `(phase, period)` per logical channel, for occurrence timing.
    timing: Vec<(f64, f64)>,
    /// Outage windows, copied from the script.
    outages: Vec<ChannelOutage>,
    /// Burst episodes, copied from the script.
    bursts: Vec<BurstEpisode>,
    /// The always-on background loss process.
    base: &'a L,
}

impl<'a, L: LossProcess + ?Sized> ScriptedLoss<'a, L> {
    /// Compile `script` against `plan`, layering it over `base`.
    #[must_use]
    pub fn compile(plan: &ChannelPlan, script: &FaultScript, base: &'a L) -> Self {
        Self {
            timing: plan
                .channels
                .iter()
                .map(|c| (c.phase.value(), c.period().value()))
                .collect(),
            outages: script.outages.clone(),
            bursts: script.bursts.clone(),
            base,
        }
    }

    /// Start time of occurrence `occ` on `channel`, and its period.
    fn occurrence_window(&self, channel: usize, occ: u64) -> (f64, f64) {
        let (phase, period) = self.timing[channel];
        (phase + occ as f64 * period, period)
    }
}

impl<L: LossProcess + ?Sized> LossProcess for ScriptedLoss<'_, L> {
    fn is_lost(&self, channel: usize, occ: u64) -> bool {
        if self.base.is_lost(channel, occ) {
            return true;
        }
        let (start, period) = self.occurrence_window(channel, occ);
        for b in &self.bursts {
            if start >= b.start.value() && start < b.end().value() && b.loss.is_lost(channel, occ) {
                return true;
            }
        }
        self.outages.iter().any(|o| {
            o.channel == channel && start < o.end().value() && start + period > o.start.value()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use sb_sim::LossModel;
    use vod_units::Mbps;

    fn plan() -> ChannelPlan {
        let cfg = SystemConfig::paper_defaults(Mbps(150.0));
        Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap()
    }

    #[test]
    fn correlated_outages_cover_every_slot_over_one_window() {
        let script = FaultScript::correlated_outages(&[1, 3, 5], Minutes(40.0), Minutes(15.0));
        script.validate().unwrap();
        assert_eq!(script.outages.len(), 3);
        for (o, slot) in script.outages.iter().zip([1, 3, 5]) {
            assert_eq!(
                (o.channel, o.start, o.duration),
                (slot, Minutes(40.0), Minutes(15.0))
            );
        }
        assert!(script.restarts.is_empty() && script.bursts.is_empty() && script.churn.is_empty());
        assert_eq!(
            script.outage_overlap(3, Minutes(45.0), Minutes(60.0)),
            Minutes(10.0)
        );
        assert_eq!(
            script.outage_overlap(2, Minutes(0.0), Minutes(120.0)),
            Minutes(0.0)
        );
        // Pure function of its inputs — regenerating yields the same script.
        assert_eq!(
            script,
            FaultScript::correlated_outages(&[1, 3, 5], Minutes(40.0), Minutes(15.0))
        );
        assert!(FaultScript::correlated_outages(&[], Minutes(0.0), Minutes(1.0)).is_empty());
    }

    #[test]
    fn validation_rejects_malformed_scripts() {
        let ok = FaultScript {
            outages: vec![ChannelOutage {
                channel: 1,
                start: Minutes(10.0),
                duration: Minutes(30.0),
            }],
            restarts: vec![Minutes(50.0)],
            bursts: vec![],
            churn: vec![ChurnEvent {
                at: Minutes(20.0),
                fraction: 0.5,
                seed: 1,
            }],
        };
        assert!(ok.validate().is_ok());
        assert!(!ok.is_empty());
        assert!(FaultScript::none().validate().is_ok());
        assert!(FaultScript::none().is_empty());

        let bad_outage = FaultScript {
            outages: vec![ChannelOutage {
                channel: 0,
                start: Minutes(5.0),
                duration: Minutes(0.0),
            }],
            ..FaultScript::none()
        };
        assert!(bad_outage.validate().is_err());

        let bad_churn = FaultScript {
            churn: vec![ChurnEvent {
                at: Minutes(5.0),
                fraction: 1.5,
                seed: 0,
            }],
            ..FaultScript::none()
        };
        assert!(bad_churn.validate().is_err());
    }

    #[test]
    fn outage_overlap_measures_dark_time() {
        let script = FaultScript {
            outages: vec![ChannelOutage {
                channel: 2,
                start: Minutes(100.0),
                duration: Minutes(40.0),
            }],
            ..FaultScript::none()
        };
        let m = |v: f64| Minutes(v);
        assert_eq!(script.outage_overlap(2, m(0.0), m(90.0)).value(), 0.0);
        assert_eq!(script.outage_overlap(2, m(110.0), m(120.0)).value(), 10.0);
        assert_eq!(script.outage_overlap(2, m(0.0), m(500.0)).value(), 40.0);
        assert_eq!(script.outage_overlap(3, m(0.0), m(500.0)).value(), 0.0);
    }

    #[test]
    fn scripted_loss_drops_occurrences_inside_an_outage() {
        let p = plan();
        let ch = 1usize;
        let period = p.channels[ch].period().value();
        let phase = p.channels[ch].phase.value();
        // Outage covering occurrences 3 and 4 (offsets sit mid-cycle so
        // float rounding cannot flip a boundary).
        let script = FaultScript {
            outages: vec![ChannelOutage {
                channel: ch,
                start: Minutes(phase + 3.05 * period),
                duration: Minutes(1.9 * period),
            }],
            ..FaultScript::none()
        };
        let base = LossModel::lossless();
        let scripted = ScriptedLoss::compile(&p, &script, &base);
        for occ in 0..10u64 {
            let dark = (3..=4).contains(&occ);
            assert_eq!(scripted.is_lost(ch, occ), dark, "occ {occ}");
            // Other channels are untouched.
            assert!(!scripted.is_lost(ch + 1, occ));
        }
    }

    #[test]
    fn scripted_loss_layers_bursts_over_the_base_process() {
        let p = plan();
        let ch = 0usize;
        let period = p.channels[ch].period().value();
        let phase = p.channels[ch].phase.value();
        // A certain-loss burst chain active only for occurrences 5..15
        // (window edges sit mid-cycle to dodge float boundary rounding).
        let burst = GilbertElliott::new(0.5, 0.5, 1.0, 1.0, 3).unwrap();
        let script = FaultScript {
            bursts: vec![BurstEpisode {
                start: Minutes(phase + 4.5 * period),
                duration: Minutes(10.0 * period),
                loss: burst,
            }],
            ..FaultScript::none()
        };
        let base = LossModel::lossless();
        let scripted = ScriptedLoss::compile(&p, &script, &base);
        for occ in 0..20u64 {
            let inside = (5..15).contains(&occ);
            assert_eq!(scripted.is_lost(ch, occ), inside, "occ {occ}");
        }
    }
}
