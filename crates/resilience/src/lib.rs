//! # sb-resilience — surviving faults end-to-end
//!
//! The paper assumes a lossless isochronous metropolitan network. This
//! crate is the reproduction's answer to everything that assumption hides:
//!
//! - [`GilbertElliott`] — a two-state Markov **burst-loss** channel behind
//!   the [`LossProcess`](sb_sim::LossProcess) trait, evaluated
//!   order-independently per `(channel, occurrence)` via coupling from the
//!   past, so it plugs into [`sb_sim::apply_losses`] without giving up
//!   determinism or thread-count independence.
//! - [`FaultScript`] — a declarative schedule of channel outages, server
//!   restart epochs, bursty-loss episodes, and seeded client churn. The
//!   control plane replays it as first-class events; [`ScriptedLoss`]
//!   compiles its time windows down to the pure occurrence contract for
//!   the loss pipeline.
//! - [`Degradation`] — what a client does when a repair misses its
//!   deadline: stall (the classic behaviour), skip the late content, or
//!   drop to a half-rate rendition. [`replay`] generalizes the repair
//!   loop over the policy and records each ledger through `sb-metrics`.
//! - [`ResilienceOutcome`] — the recovery-side ledger a controlled run
//!   reports: reallocations, repaired sessions, backoff retries, churn.
//! - [`Backoff`] — the bounded-exponential retry schedule shared by the
//!   admission controller (re-exported by `sb-control`) and the shard
//!   supervisor.
//! - [`Supervisor`] + [`CrashScript`] — crash-recovery execution: shards
//!   as restartable units with versioned, checksummed checkpoints,
//!   deterministic chaos injection, and byte-identical resume (see
//!   [`recovery`] and `DESIGN.md` §14).
//!
//! Motivated by the channel-transition tolerance of CTIFB
//! (arXiv:1711.08118) and the degraded-service regimes of the scalable
//! distributed VoD bounds (arXiv:0804.0743); see `DESIGN.md` §9 for the
//! recovery invariants.

#![forbid(unsafe_code)]

pub mod backoff;
pub mod degrade;
pub mod loss;
pub mod recovery;
pub mod script;

pub use backoff::Backoff;
pub use degrade::{as_stall_report, replay, Degradation, DegradedReport};
pub use loss::GilbertElliott;
pub use recovery::{
    CrashEvent, CrashScript, CrashTrigger, MissingShard, PartialRun, Recovered, RecoveryError,
    RecoveryStats, RunSpec, Supervisor,
};
pub use script::{
    BurstEpisode, ChannelOutage, ChurnEvent, FaultScript, ResilienceOutcome, ScriptedLoss,
};
