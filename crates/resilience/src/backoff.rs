//! Bounded exponential backoff — the shared retry schedule.
//!
//! One schedule serves two very different retry loops:
//!
//! * the **admission controller** (`sb-control`) deferring over-ceiling
//!   pool requests ("come back in `base` minutes, then `base·factor`,
//!   …"), and
//! * the **crash-recovery supervisor** ([`crate::recovery`]) spacing
//!   restart attempts of a killed shard.
//!
//! Both want the same contract: the first retry after `base`, each
//! further one `factor`× later, a hard give-up after `max_attempts`
//! tries, and saturation at [`Backoff::MAX_DELAY`] so an effectively
//! unbounded attempt budget ([`Backoff::fixed`]) can never produce an
//! infinite or multi-year delay. The type lives here, at the bottom of
//! the dependency stack, and `sb-control` re-exports it unchanged.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::error::{Result, SchemeError};

/// Bounded exponential backoff for deferred admissions and shard
/// restarts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Backoff {
    /// Delay before the first retry.
    pub base: Minutes,
    /// Multiplier applied per further retry (`1.0` = fixed delay).
    pub factor: f64,
    /// Retries allowed before giving up outright.
    pub max_attempts: u32,
}

impl Backoff {
    /// A backoff schedule: retry after `base`, then `base·factor`, then
    /// `base·factor²`, …, giving up after `max_attempts` retries.
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] unless the base delay is positive
    /// and finite, the factor is at least 1 and finite, and at least one
    /// attempt is allowed.
    pub fn new(base: Minutes, factor: f64, max_attempts: u32) -> Result<Self> {
        if !(base.value() > 0.0 && base.value().is_finite()) {
            return Err(SchemeError::InvalidConfig {
                what: "backoff base delay must be positive and finite",
            });
        }
        if !(factor >= 1.0 && factor.is_finite()) {
            return Err(SchemeError::InvalidConfig {
                what: "backoff factor must be at least 1 and finite",
            });
        }
        if max_attempts == 0 {
            return Err(SchemeError::InvalidConfig {
                what: "backoff needs at least one attempt",
            });
        }
        Ok(Self {
            base,
            factor,
            max_attempts,
        })
    }

    /// The old fixed-delay behaviour: every retry waits `delay`, with a
    /// generous attempt cap standing in for "unbounded".
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] unless the delay is positive and
    /// finite.
    pub fn fixed(delay: Minutes) -> Result<Self> {
        Self::new(delay, 1.0, u32::MAX)
    }

    /// The ceiling an exponential schedule saturates at: one day. Past
    /// it, a "retry later" answer is indistinguishable from a rejection,
    /// and the unclamped product overflows to `inf` within a few dozen
    /// doublings anyway.
    pub const MAX_DELAY: Minutes = Minutes(24.0 * 60.0);

    /// Delay before retry number `attempt` (0-based), or `None` once the
    /// attempt budget is exhausted.
    ///
    /// The schedule saturates: the delay never exceeds
    /// `max(base, `[`Backoff::MAX_DELAY`]`)`, so a generous attempt
    /// budget (e.g. [`Backoff::fixed`]'s `u32::MAX`) cannot drive the
    /// product to `inf` or a multi-year deferral.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Option<Minutes> {
        if attempt >= self.max_attempts {
            return None;
        }
        // Clamp the exponent before the i32 cast (`attempt` may be huge
        // under a fixed schedule) — factor ≥ 1, so past the clamp the
        // raw product is far beyond the saturation point regardless.
        let exp = attempt.min(1 << 16) as i32;
        let raw = self.base.value() * self.factor.powi(exp);
        let cap = Self::MAX_DELAY.value().max(self.base.value());
        Some(Minutes(raw.min(cap)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps_out() {
        let b = Backoff::new(Minutes(2.0), 2.0, 3).unwrap();
        assert_eq!(b.delay(0), Some(Minutes(2.0)));
        assert_eq!(b.delay(1), Some(Minutes(4.0)));
        assert_eq!(b.delay(2), Some(Minutes(8.0)));
        assert_eq!(b.delay(3), None);
    }

    #[test]
    fn backoff_saturates_at_the_documented_max_delay() {
        // Doubling from 2 minutes passes the one-day cap at attempt 10
        // (2·2¹⁰ = 2048 > 1440); from there every delay is exactly the cap.
        let b = Backoff::new(Minutes(2.0), 2.0, u32::MAX).unwrap();
        assert_eq!(b.delay(9), Some(Minutes(1024.0)));
        assert_eq!(b.delay(10), Some(Backoff::MAX_DELAY));
        assert_eq!(b.delay(100), Some(Backoff::MAX_DELAY));
        // Exponents that would overflow `powi` (or wrap the i32 cast)
        // still saturate finitely.
        let d = b.delay(u32::MAX - 1).unwrap();
        assert!(d.value().is_finite());
        assert_eq!(d, Backoff::MAX_DELAY);
        // A fixed schedule is untouched by the cap.
        let f = Backoff::fixed(Minutes(3.0)).unwrap();
        assert_eq!(f.delay(u32::MAX - 1), Some(Minutes(3.0)));
        // A base above the cap is honoured — saturation never shrinks
        // the first delay.
        let big = Backoff::new(Minutes(10_000.0), 2.0, 5).unwrap();
        assert_eq!(big.delay(0), Some(Minutes(10_000.0)));
        assert_eq!(big.delay(4), Some(Minutes(10_000.0)));
    }

    #[test]
    fn backoff_construction_validates() {
        assert!(Backoff::new(Minutes(0.0), 2.0, 3).is_err());
        assert!(Backoff::new(Minutes(1.0), 0.5, 3).is_err());
        assert!(Backoff::new(Minutes(1.0), 2.0, 0).is_err());
        assert!(Backoff::fixed(Minutes(-1.0)).is_err());
        assert!(Backoff::new(Minutes(1.0), 1.0, 1).is_ok());
    }
}
