//! Gilbert–Elliott two-state burst loss, order-independent per occurrence.
//!
//! The classic Gilbert–Elliott channel is a two-state Markov chain — a
//! *Good* state with a low loss probability and a *Bad* state with a high
//! one — whose sojourn times produce the correlated loss bursts real
//! metropolitan plants exhibit (the i.i.d. [`sb_sim::LossModel`] cannot).
//!
//! A Markov chain is inherently sequential, but the
//! [`LossProcess`] contract demands a **pure function
//! of `(channel, occurrence)`**: deterministic and independent of query
//! order, so parallel replays stay byte-identical. We get both via a
//! monotone *coupling-from-the-past* construction: each occurrence owns a
//! seeded uniform triple `(v, u, w)`, the transition into occurrence `t`
//! consumes `u_t`, and because the update rule is monotone, any step with
//! `u < min(a, 1−b)` forces Bad and any with `u ≥ max(a, 1−b)` forces
//! Good *regardless of the prior state*. Walking back from the queried
//! occurrence to the nearest such coalescing step (or to occurrence 0,
//! which starts from Good) pins the state exactly; a capped lookback
//! falls back to the stationary distribution (drawn from `w`). The loss
//! draw itself uses `v` — the **first** uniform in the stream, which is
//! the same draw [`sb_sim::LossModel`] makes, so a Gilbert–Elliott channel
//! with equal state loss probabilities degenerates *bitwise* to the
//! Bernoulli model with the same seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use sb_core::error::{Result, SchemeError};
use sb_sim::LossProcess;

/// Per-channel stream mixing constant (identical to `sb_sim::faults`, so
/// the degenerate case matches the Bernoulli model bitwise).
const CHANNEL_MIX: u64 = 0x9E37_79B9_7F4A_7C15;
/// Per-occurrence stream mixing constant (identical to `sb_sim::faults`).
const OCCURRENCE_MIX: u64 = 0xD1B5_4A32_D192_ED03;

/// How many steps the coupling walks back before giving up and drawing
/// the state from the stationary distribution. Coalescence happens with
/// probability `min(a, 1−b) + 1 − max(a, 1−b)` per step, so for any
/// non-degenerate chain the fallback is astronomically rare.
const LOOKBACK_CAP: u64 = 4096;

/// Channel state of the two-state chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Low-loss state.
    Good,
    /// High-loss (burst) state.
    Bad,
}

/// A Gilbert–Elliott two-state burst-loss process.
///
/// Construct with [`GilbertElliott::new`] (validating every probability
/// once) or the [`GilbertElliott::burst`] convenience. Implements
/// [`LossProcess`], so [`sb_sim::apply_losses`] repairs sessions under it
/// exactly as under the Bernoulli [`sb_sim::LossModel`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Transition probability Good → Bad per occurrence.
    p_good_to_bad: f64,
    /// Transition probability Bad → Good per occurrence.
    p_bad_to_good: f64,
    /// Loss probability while Good.
    p_loss_good: f64,
    /// Loss probability while Bad.
    p_loss_bad: f64,
    /// RNG seed for reproducibility.
    seed: u64,
}

impl GilbertElliott {
    /// A Gilbert–Elliott process with explicit transition and loss
    /// probabilities.
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] unless both transition
    /// probabilities lie strictly inside `(0, 1)` (an absorbing chain has
    /// no bursts to model) and both loss probabilities lie in `[0, 1]`.
    pub fn new(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        p_loss_good: f64,
        p_loss_bad: f64,
        seed: u64,
    ) -> Result<Self> {
        let open_unit = |p: f64| p > 0.0 && p < 1.0;
        if !open_unit(p_good_to_bad) || !open_unit(p_bad_to_good) {
            return Err(SchemeError::InvalidConfig {
                what: "Gilbert-Elliott transition probabilities must be within (0, 1)",
            });
        }
        let closed_unit = |p: f64| (0.0..=1.0).contains(&p);
        if !closed_unit(p_loss_good) || !closed_unit(p_loss_bad) {
            return Err(SchemeError::InvalidConfig {
                what: "Gilbert-Elliott loss probabilities must be within [0, 1]",
            });
        }
        Ok(Self {
            p_good_to_bad,
            p_bad_to_good,
            p_loss_good,
            p_loss_bad,
            seed,
        })
    }

    /// A bursty channel described operationally: bursts last
    /// `mean_burst_len` occurrences on average, separated by good spells
    /// of `mean_gap_len` occurrences, and drop each occurrence inside a
    /// burst with probability `loss_in_bad` (good spells are lossless).
    ///
    /// # Errors
    /// [`SchemeError::InvalidConfig`] unless both mean lengths exceed 1
    /// occurrence and `loss_in_bad ∈ [0, 1]`.
    pub fn burst(
        mean_burst_len: f64,
        mean_gap_len: f64,
        loss_in_bad: f64,
        seed: u64,
    ) -> Result<Self> {
        let ok = mean_burst_len.is_finite()
            && mean_burst_len > 1.0
            && mean_gap_len.is_finite()
            && mean_gap_len > 1.0;
        if !ok {
            return Err(SchemeError::InvalidConfig {
                what: "Gilbert-Elliott mean burst and gap lengths must exceed one occurrence",
            });
        }
        Self::new(
            1.0 / mean_gap_len,
            1.0 / mean_burst_len,
            0.0,
            loss_in_bad,
            seed,
        )
    }

    /// Stationary probability of the Bad state, `a / (a + b)`.
    #[must_use]
    pub fn stationary_bad(&self) -> f64 {
        self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
    }

    /// Long-run mean loss rate under the stationary distribution.
    #[must_use]
    pub fn mean_loss(&self) -> f64 {
        let pi_bad = self.stationary_bad();
        (1.0 - pi_bad) * self.p_loss_good + pi_bad * self.p_loss_bad
    }

    /// Mean burst (Bad-sojourn) length in occurrences, `1 / b`.
    #[must_use]
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.p_bad_to_good
    }

    /// The RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seeded uniform triple owned by `(channel, occ)`: loss draw
    /// `v`, transition draw `u`, stationary-fallback draw `w`. `v` comes
    /// first so the equal-loss-probability case reproduces
    /// [`sb_sim::LossModel`]'s stream bitwise.
    fn uniforms(&self, channel: usize, occ: u64) -> (f64, f64, f64) {
        let mut rng = SmallRng::seed_from_u64(
            self.seed
                ^ (channel as u64).wrapping_mul(CHANNEL_MIX)
                ^ occ.wrapping_mul(OCCURRENCE_MIX),
        );
        (rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>())
    }

    /// Monotone transition update: the state *entered at* a step whose
    /// transition uniform is `u`, given the state before it.
    fn step(&self, prev: State, u: f64) -> State {
        match prev {
            State::Good => {
                if u < self.p_good_to_bad {
                    State::Bad
                } else {
                    State::Good
                }
            }
            State::Bad => {
                if u < 1.0 - self.p_bad_to_good {
                    State::Bad
                } else {
                    State::Good
                }
            }
        }
    }

    /// The chain state at occurrence `occ`, computed order-independently
    /// by coupling from the past (see the module docs).
    fn state_at(&self, channel: usize, occ: u64) -> State {
        let coalesce_bad = self.p_good_to_bad.min(1.0 - self.p_bad_to_good);
        let coalesce_good = self.p_good_to_bad.max(1.0 - self.p_bad_to_good);

        // Walk back to the nearest step whose transition determines the
        // state it enters regardless of history.
        let mut anchor = occ;
        let mut state = loop {
            let (_, u, w) = self.uniforms(channel, anchor);
            if u < coalesce_bad {
                break State::Bad;
            }
            if u >= coalesce_good {
                break State::Good;
            }
            if anchor == 0 {
                // The chain starts Good before occurrence 0.
                break self.step(State::Good, u);
            }
            if occ - anchor >= LOOKBACK_CAP {
                // No coalescence inside the window (astronomically rare
                // for any non-degenerate chain): draw this step's state
                // from the stationary distribution instead.
                break if w < self.stationary_bad() {
                    State::Bad
                } else {
                    State::Good
                };
            }
            anchor -= 1;
        };

        // Roll forward from the anchor to the queried occurrence.
        while anchor < occ {
            anchor += 1;
            let (_, u, _) = self.uniforms(channel, anchor);
            state = self.step(state, u);
        }
        state
    }

    /// `true` if occurrence `occ` on `channel` is lost (inherent mirror
    /// of the [`LossProcess`] impl).
    #[must_use]
    pub fn is_lost(&self, channel: usize, occ: u64) -> bool {
        let (v, _, _) = self.uniforms(channel, occ);
        let p = match self.state_at(channel, occ) {
            State::Good => self.p_loss_good,
            State::Bad => self.p_loss_bad,
        };
        v < p
    }
}

impl LossProcess for GilbertElliott {
    fn is_lost(&self, channel: usize, occ: u64) -> bool {
        GilbertElliott::is_lost(self, channel, occ)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sim::LossModel;

    #[test]
    fn construction_validates_probabilities() {
        assert!(GilbertElliott::new(0.0, 0.5, 0.0, 1.0, 0).is_err());
        assert!(GilbertElliott::new(0.5, 1.0, 0.0, 1.0, 0).is_err());
        assert!(GilbertElliott::new(0.5, 0.5, -0.1, 1.0, 0).is_err());
        assert!(GilbertElliott::new(0.5, 0.5, 0.0, 1.1, 0).is_err());
        assert!(GilbertElliott::new(0.1, 0.5, 0.0, 0.9, 0).is_ok());
        assert!(GilbertElliott::burst(1.0, 8.0, 0.9, 0).is_err());
        assert!(GilbertElliott::burst(4.0, 16.0, 0.9, 0).is_ok());
    }

    #[test]
    fn evaluation_is_deterministic_and_order_independent() {
        let ge = GilbertElliott::new(0.05, 0.3, 0.01, 0.8, 9).unwrap();
        // Query in forward order…
        let forward: Vec<bool> = (0..500).map(|o| ge.is_lost(2, o)).collect();
        // …then backwards and scattered: identical answers.
        for occ in (0..500).rev() {
            assert_eq!(ge.is_lost(2, occ), forward[occ as usize]);
        }
        for occ in [401, 3, 77, 499, 0, 250] {
            assert_eq!(ge.is_lost(2, occ), forward[occ as usize]);
        }
    }

    #[test]
    fn equal_state_loss_probabilities_degenerate_to_bernoulli_bitwise() {
        // With p_loss identical in both states the chain state is
        // irrelevant and the loss draw is the same first uniform the
        // Bernoulli model consumes — the two agree occurrence for
        // occurrence, not just in rate.
        let p = 0.22;
        let ge = GilbertElliott::new(0.1, 0.4, p, p, 77).unwrap();
        let bern = LossModel::new(p, 77).unwrap();
        for ch in 0..4 {
            for occ in 0..400 {
                assert_eq!(
                    ge.is_lost(ch, occ),
                    bern.is_lost(ch, occ),
                    "ch {ch} occ {occ}"
                );
            }
        }
    }

    #[test]
    fn long_run_rate_matches_the_stationary_mean() {
        let ge = GilbertElliott::new(0.05, 0.25, 0.01, 0.7, 4).unwrap();
        let n = 20_000u64;
        let lost = (0..n).filter(|&o| ge.is_lost(0, o)).count();
        let rate = lost as f64 / n as f64;
        let expect = ge.mean_loss();
        assert!(
            (rate - expect).abs() < 0.02,
            "observed {rate}, stationary mean {expect}"
        );
    }

    #[test]
    fn losses_are_burstier_than_bernoulli_at_the_same_rate() {
        // Conditional loss probability P(lost_{t+1} | lost_t) should
        // noticeably exceed the marginal rate for a bursty chain.
        let ge = GilbertElliott::burst(10.0, 90.0, 0.9, 5).unwrap();
        let n = 40_000u64;
        let seq: Vec<bool> = (0..n).map(|o| ge.is_lost(0, o)).collect();
        let marginal = seq.iter().filter(|&&l| l).count() as f64 / n as f64;
        let (mut after_loss, mut loss_after_loss) = (0usize, 0usize);
        for w in seq.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    loss_after_loss += 1;
                }
            }
        }
        let conditional = loss_after_loss as f64 / after_loss as f64;
        assert!(
            conditional > 2.0 * marginal,
            "conditional {conditional} vs marginal {marginal}: not bursty"
        );
    }
}
