//! Crash-recovery shard supervisor with deterministic chaos injection.
//!
//! The scale-out executor (`sb_sim::shard`) runs every shard exactly
//! once and assumes it completes. This module drops that assumption:
//! each shard becomes a **restartable unit** that checkpoints its full
//! execution state every `checkpoint_every` served sessions
//! (`sb_sim::checkpoint`), and the [`Supervisor`] restarts killed
//! shards from their latest intact checkpoint on a bounded-exponential
//! [`Backoff`] schedule.
//!
//! Crashes are injected, not suffered: a [`CrashScript`] names, ahead
//! of time, exactly which shard dies when (`kill:1@tick:500`,
//! `kill:0@ckpt:2`) and which checkpoint is silently corrupted on the
//! way to stable storage (`corrupt:1@ckpt:1`, exercising the checksum
//! rejection and the fall-back to the previous checkpoint). Because the
//! script, the checkpoint cadence, and the backoff schedule are all
//! deterministic — delays are *modeled*, summed into
//! [`RecoveryStats::recovery_delay`], never slept — a killed-and-resumed
//! run is **bitwise identical** to an uninterrupted one, for every shard
//! count × thread count × agenda backend. That invariant is this
//! module's whole point, and `tests/recovery_supervisor.rs` plus
//! `scripts/verify.sh` pin it.
//!
//! When a shard exhausts its restart budget the run degrades instead of
//! dying: [`Recovered::Partial`] carries the merged outcome of the
//! surviving shards plus an explicit [`MissingShard`] marker per lost
//! one — never a panic, never a silently smaller result.

use vod_units::Minutes;

use sb_sim::policy::PolicyError;
use sb_sim::{
    merge_shard_runs, parallel_map, plan_shards, AgendaKind, Probe, Request, RunOutcome,
    ShardCrash, ShardRun, ShardSlice, SystemSim, Verdict,
};

use crate::backoff::Backoff;

/// Pool/merge label supervised runs report errors under.
const LABEL: &str = "recovery";

/// What fires a scripted crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTrigger {
    /// Kill the shard just before it processes the first event at or
    /// after this engine tick.
    AtTick(u64),
    /// Kill the shard immediately after it writes checkpoint number `k`
    /// (1-based: the k-th checkpoint of the shard's timeline).
    AtCheckpoint(u64),
    /// Corrupt checkpoint number `k` in the supervisor's store (a bit
    /// flip on the way to stable storage). Not a crash by itself — pair
    /// it with a later kill to exercise the checksum rejection and the
    /// fall-back to the previous checkpoint.
    CorruptCheckpoint(u64),
}

/// One scripted fault: a trigger aimed at a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The shard this fault targets.
    pub shard: usize,
    /// When (and what) fires.
    pub trigger: CrashTrigger,
}

/// A deterministic schedule of shard crashes and checkpoint corruptions.
///
/// Each event fires **once** per run, across restart attempts: a shard
/// killed at tick 500 and resumed does not die at tick 500 again.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashScript {
    events: Vec<CrashEvent>,
}

impl CrashScript {
    /// The empty script: no chaos, plain supervised execution.
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A script firing exactly these events.
    #[must_use]
    pub fn new(events: Vec<CrashEvent>) -> Self {
        Self { events }
    }

    /// The scripted events.
    #[must_use]
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// Whether the script injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// A seeded pseudo-random script: `kills` kill-at-checkpoint events
    /// spread over `shards` shards by a splitmix64 stream — the same
    /// `(seed, shards, kills)` always yields the same script.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn seeded(seed: u64, shards: usize, kills: usize) -> Self {
        assert!(shards > 0, "no zero-shard systems");
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let events = (0..kills)
            .map(|_| {
                let h = next();
                CrashEvent {
                    shard: (h % shards as u64) as usize,
                    trigger: CrashTrigger::AtCheckpoint(1 + (h >> 32) % 3),
                }
            })
            .collect();
        Self { events }
    }

    /// Parse a `;`-separated chaos spec, e.g.
    /// `kill:1@tick:500;kill:0@ckpt:2;corrupt:1@ckpt:1`.
    ///
    /// Grammar per item: `kill:<shard>@tick:<t>`, `kill:<shard>@ckpt:<k>`,
    /// or `corrupt:<shard>@ckpt:<k>`. Whitespace around items is
    /// ignored; an empty spec is the empty script.
    ///
    /// # Errors
    /// [`RecoveryError::BadSpec`] naming the offending item.
    pub fn parse(spec: &str) -> Result<Self, RecoveryError> {
        let bad = |item: &str, what: &str| RecoveryError::BadSpec {
            item: item.to_string(),
            what: what.to_string(),
        };
        let mut events = Vec::new();
        for item in spec.split(';') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let Some((head, tail)) = item.split_once('@') else {
                return Err(bad(item, "expected '<op>:<shard>@<trigger>:<n>'"));
            };
            let Some((op, shard)) = head.split_once(':') else {
                return Err(bad(item, "expected '<op>:<shard>' before the '@'"));
            };
            let Ok(shard) = shard.trim().parse::<usize>() else {
                return Err(bad(item, "shard must be a non-negative integer"));
            };
            let Some((tkind, tval)) = tail.split_once(':') else {
                return Err(bad(item, "expected '<trigger>:<n>' after the '@'"));
            };
            let Ok(n) = tval.trim().parse::<u64>() else {
                return Err(bad(item, "trigger value must be a non-negative integer"));
            };
            let trigger = match (op.trim(), tkind.trim()) {
                ("kill", "tick") => CrashTrigger::AtTick(n),
                ("kill", "ckpt") => CrashTrigger::AtCheckpoint(n),
                ("corrupt", "ckpt") => CrashTrigger::CorruptCheckpoint(n),
                ("corrupt", "tick") => {
                    return Err(bad(item, "corruption targets checkpoints, not ticks"));
                }
                _ => {
                    return Err(bad(
                        item,
                        "unknown op/trigger (kill@tick, kill@ckpt, corrupt@ckpt)",
                    ))
                }
            };
            events.push(CrashEvent { shard, trigger });
        }
        Ok(Self { events })
    }

    /// Reject events aimed at shards the run does not have.
    ///
    /// # Errors
    /// [`RecoveryError::UnknownShard`] for the first out-of-range target.
    pub fn validate(&self, shards: usize) -> Result<(), RecoveryError> {
        for ev in &self.events {
            if ev.shard >= shards {
                return Err(RecoveryError::UnknownShard {
                    shard: ev.shard,
                    shards,
                });
            }
        }
        Ok(())
    }
}

/// Why a supervised run could not be set up or finished.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryError {
    /// `checkpoint_every` was zero — the supervisor cannot restart a
    /// shard that never checkpoints on a cadence of zero.
    ZeroCadence,
    /// The chaos script targets a shard the run does not have.
    UnknownShard {
        /// The scripted target.
        shard: usize,
        /// The run's shard count.
        shards: usize,
    },
    /// A chaos spec item failed to parse.
    BadSpec {
        /// The offending item.
        item: String,
        /// What was wrong with it.
        what: String,
    },
    /// The simulation itself failed deterministically (e.g. a request
    /// for an unknown video) — restarts cannot help.
    Sim(PolicyError),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::ZeroCadence => write!(
                f,
                "checkpoint cadence is 0 sessions; the supervisor needs a cadence of at least 1"
            ),
            RecoveryError::UnknownShard { shard, shards } => write!(
                f,
                "chaos script targets shard {shard}, but the run has only {shards} shard(s)"
            ),
            RecoveryError::BadSpec { item, what } => {
                write!(f, "bad chaos spec item {item:?}: {what}")
            }
            RecoveryError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// The run shape a supervised execution shares with `RunConfig`: the
/// supervisor needs the borrowing slots (`sink`, `recorder`) gone but
/// everything that decides *bytes* kept.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec<'a> {
    /// Shard count (≥ 1).
    pub shards: usize,
    /// Worker threads for the shard pool (0 = one per core).
    pub threads: usize,
    /// Seed for the catalog-to-shard hash.
    pub seed: u64,
    /// Event-store backend for every engine of the run.
    pub agenda: AgendaKind,
    /// Optional per-video owning-shard table.
    pub partition: Option<&'a [usize]>,
}

impl Default for RunSpec<'_> {
    fn default() -> Self {
        Self {
            shards: 1,
            threads: 1,
            seed: 0,
            agenda: AgendaKind::Heap,
            partition: None,
        }
    }
}

/// Bookkeeping of everything the supervisor did, summed over shards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryStats {
    /// Scripted kills that actually fired.
    pub crashes_injected: u64,
    /// Restarts that resumed from an intact checkpoint.
    pub restores: u64,
    /// Checkpoints rejected by the checksum on restore.
    pub corrupt_rejected: u64,
    /// Sessions re-executed because they post-dated the restored
    /// checkpoint (the cost of the cadence).
    pub replayed_sessions: u64,
    /// Checkpoints written across all shards and attempts.
    pub checkpoints_taken: u64,
    /// Total *modeled* backoff delay across all restarts — the schedule
    /// is consulted and summed, never slept, so supervised runs stay
    /// deterministic and fast.
    pub recovery_delay: Minutes,
}

impl Default for RecoveryStats {
    fn default() -> Self {
        Self {
            crashes_injected: 0,
            restores: 0,
            corrupt_rejected: 0,
            replayed_sessions: 0,
            checkpoints_taken: 0,
            recovery_delay: Minutes(0.0),
        }
    }
}

impl RecoveryStats {
    fn absorb(&mut self, other: &RecoveryStats) {
        self.crashes_injected += other.crashes_injected;
        self.restores += other.restores;
        self.corrupt_rejected += other.corrupt_rejected;
        self.replayed_sessions += other.replayed_sessions;
        self.checkpoints_taken += other.checkpoints_taken;
        self.recovery_delay = Minutes(self.recovery_delay.value() + other.recovery_delay.value());
    }
}

/// A shard that exhausted its restart budget: the explicit marker a
/// degraded run carries instead of silently shrinking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingShard {
    /// The lost shard.
    pub shard: usize,
    /// Restart attempts consumed (the backoff's full budget).
    pub attempts: u32,
    /// The last crash, rendered.
    pub last_error: String,
}

/// A degraded supervised run: every surviving shard merged, every lost
/// one named.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialRun {
    /// The canonical merge over the shards that completed.
    pub outcome: RunOutcome,
    /// One marker per lost shard, in shard order.
    pub missing: Vec<MissingShard>,
    /// What recovery cost, summed over all shards.
    pub stats: RecoveryStats,
}

/// What a supervised run produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Recovered {
    /// Every shard completed; `outcome` is bitwise identical to an
    /// uninterrupted `SystemSim::execute` of the same configuration.
    Complete {
        /// The merged run outcome.
        outcome: RunOutcome,
        /// What recovery cost.
        stats: RecoveryStats,
    },
    /// At least one shard exhausted its restart budget.
    Partial(PartialRun),
}

impl Recovered {
    /// The recovery bookkeeping, whichever way the run ended.
    #[must_use]
    pub fn stats(&self) -> &RecoveryStats {
        match self {
            Recovered::Complete { stats, .. } => stats,
            Recovered::Partial(p) => &p.stats,
        }
    }

    /// The merged outcome (over all shards, or the survivors).
    #[must_use]
    pub fn outcome(&self) -> &RunOutcome {
        match self {
            Recovered::Complete { outcome, .. } => outcome,
            Recovered::Partial(p) => &p.outcome,
        }
    }
}

/// Per-shard result of the supervised attempt loop.
enum ShardVerdict {
    Done(ShardRun, RecoveryStats),
    Lost(MissingShard, RecoveryStats),
    Fatal(PolicyError),
}

/// Runs shards as restartable units: checkpoint on a cadence, kill on
/// script, restore from the latest intact checkpoint, retry on a
/// bounded-exponential [`Backoff`], and degrade explicitly when the
/// budget runs out.
#[derive(Debug, Clone, Copy)]
pub struct Supervisor {
    backoff: Backoff,
    checkpoint_every: u64,
}

impl Supervisor {
    /// A supervisor checkpointing every `checkpoint_every` served
    /// sessions and restarting on `backoff`.
    ///
    /// # Errors
    /// [`RecoveryError::ZeroCadence`] for `checkpoint_every == 0`.
    pub fn new(backoff: Backoff, checkpoint_every: u64) -> Result<Self, RecoveryError> {
        if checkpoint_every == 0 {
            return Err(RecoveryError::ZeroCadence);
        }
        Ok(Self {
            backoff,
            checkpoint_every,
        })
    }

    /// The checkpoint cadence, in served sessions.
    #[must_use]
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// Execute `requests` against `sim` under supervision.
    ///
    /// Partitions exactly like `SystemSim::execute` (same
    /// `plan_shards`), runs each shard through the kill/checkpoint/
    /// restore attempt loop on the deterministic pool, and merges with
    /// the same ordered replay — so with every shard completing, the
    /// outcome is **bitwise identical** to an uninterrupted `execute`
    /// of the same configuration, whatever the chaos script did along
    /// the way.
    ///
    /// # Errors
    /// [`RecoveryError::UnknownShard`] if `chaos` targets a shard the
    /// run does not have; [`RecoveryError::Sim`] for deterministic
    /// simulation or merge failures (restarts cannot help those).
    pub fn run(
        &self,
        sim: &SystemSim<'_>,
        requests: &[Request],
        spec: &RunSpec<'_>,
        chaos: &CrashScript,
    ) -> Result<Recovered, RecoveryError> {
        chaos.validate(spec.shards)?;
        let slices = plan_shards(requests, spec.shards, spec.seed, spec.partition);
        let script: Vec<Vec<CrashTrigger>> = (0..spec.shards)
            .map(|s| {
                chaos
                    .events()
                    .iter()
                    .filter(|ev| ev.shard == s)
                    .map(|ev| ev.trigger)
                    .collect()
            })
            .collect();

        let work: Vec<(usize, &ShardSlice)> = slices.iter().enumerate().collect();
        let verdicts: Vec<ShardVerdict> =
            parallel_map(spec.threads, LABEL, &work, |_, &(s, slice)| {
                self.run_one_shard(sim, s, slice, spec.agenda, &script[s])
            });

        let mut stats = RecoveryStats::default();
        let mut survivors: Vec<(usize, ShardRun)> = Vec::new();
        let mut missing: Vec<MissingShard> = Vec::new();
        for (s, verdict) in verdicts.into_iter().enumerate() {
            match verdict {
                ShardVerdict::Done(run, st) => {
                    stats.absorb(&st);
                    survivors.push((s, run));
                }
                ShardVerdict::Lost(m, st) => {
                    stats.absorb(&st);
                    missing.push(m);
                }
                ShardVerdict::Fatal(e) => return Err(RecoveryError::Sim(e)),
            }
        }

        let outcome = merge_shard_runs(survivors, LABEL).map_err(RecoveryError::Sim)?;
        if missing.is_empty() {
            Ok(Recovered::Complete { outcome, stats })
        } else {
            Ok(Recovered::Partial(PartialRun {
                outcome,
                missing,
                stats,
            }))
        }
    }

    /// One shard's full supervised lifetime: the attempt loop.
    fn run_one_shard(
        &self,
        sim: &SystemSim<'_>,
        shard: usize,
        slice: &ShardSlice,
        agenda: AgendaKind,
        triggers: &[CrashTrigger],
    ) -> ShardVerdict {
        let mut stats = RecoveryStats::default();
        // Each trigger fires once across the shard's whole lifetime.
        let mut fired = vec![false; triggers.len()];
        // The supervisor's checkpoint store: the last two checkpoints as
        // `(checkpoint number, sessions at capture, bytes)`. Two, not
        // one, so a corrupted latest still leaves a fall-back.
        let mut store: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        // Sessions the shard had served when it was last killed; drives
        // the replayed-sessions accounting on the next launch.
        let mut killed_at_sessions: Option<u64> = None;
        let mut attempts: u32 = 0;

        loop {
            let resume_sessions = store.last().map_or(0, |&(_, sessions, _)| sessions);
            let resume: Option<Vec<u8>> = store.last().map(|(_, _, bytes)| bytes.clone());
            let mut probe = |p: Probe<'_>| -> Verdict {
                match p {
                    Probe::Event { tick } => {
                        for (i, trig) in triggers.iter().enumerate() {
                            if !fired[i] {
                                if let CrashTrigger::AtTick(t) = *trig {
                                    if tick >= t {
                                        fired[i] = true;
                                        return Verdict::Kill;
                                    }
                                }
                            }
                        }
                        Verdict::Continue
                    }
                    Probe::Checkpoint { index, encoded } => {
                        let mut bytes = encoded.to_vec();
                        let mut verdict = Verdict::Continue;
                        for (i, trig) in triggers.iter().enumerate() {
                            if fired[i] {
                                continue;
                            }
                            match *trig {
                                CrashTrigger::CorruptCheckpoint(k) if k == index => {
                                    fired[i] = true;
                                    let pos = bytes.len() / 2;
                                    bytes[pos] ^= 0xFF;
                                }
                                CrashTrigger::AtCheckpoint(k) if k == index => {
                                    fired[i] = true;
                                    verdict = Verdict::Kill;
                                }
                                _ => {}
                            }
                        }
                        store.push((index, index * self.checkpoint_every, bytes));
                        if store.len() > 2 {
                            store.remove(0);
                        }
                        verdict
                    }
                }
            };
            let result = sim.run_shard(
                slice,
                agenda,
                self.checkpoint_every,
                resume.as_deref(),
                &mut probe,
            );

            // Any outcome but a checksum rejection means the attempt
            // actually ran from `resume_sessions`: settle the replay
            // accounting for the preceding kill.
            if !matches!(result, Err(ShardCrash::Corrupt(_))) {
                if let Some(at_kill) = killed_at_sessions.take() {
                    stats.replayed_sessions += at_kill.saturating_sub(resume_sessions);
                    if resume.is_some() {
                        stats.restores += 1;
                    }
                }
            }

            match result {
                Ok(run) => {
                    stats.checkpoints_taken += run.checkpoints_taken();
                    return ShardVerdict::Done(run, stats);
                }
                Err(ShardCrash::Corrupt(_)) => {
                    // The latest checkpoint failed its checksum before
                    // anything ran: drop it and fall back to the
                    // previous one (or a fresh start). No backoff — the
                    // shard never came up.
                    stats.corrupt_rejected += 1;
                    store.pop();
                }
                Err(ShardCrash::Killed(k)) => {
                    stats.crashes_injected += 1;
                    stats.checkpoints_taken += k.checkpoints_taken;
                    killed_at_sessions = Some(k.sessions_done);
                    match self.backoff.delay(attempts) {
                        Some(delay) => {
                            attempts += 1;
                            stats.recovery_delay =
                                Minutes(stats.recovery_delay.value() + delay.value());
                        }
                        None => {
                            return ShardVerdict::Lost(
                                MissingShard {
                                    shard,
                                    attempts,
                                    last_error: ShardCrash::Killed(k).to_string(),
                                },
                                stats,
                            );
                        }
                    }
                }
                Err(ShardCrash::Policy(e)) => return ShardVerdict::Fatal(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_documented_grammar() {
        let script =
            CrashScript::parse(" kill:1@tick:500 ; kill:0@ckpt:2 ; corrupt:1@ckpt:1 ;").unwrap();
        assert_eq!(
            script.events(),
            &[
                CrashEvent {
                    shard: 1,
                    trigger: CrashTrigger::AtTick(500)
                },
                CrashEvent {
                    shard: 0,
                    trigger: CrashTrigger::AtCheckpoint(2)
                },
                CrashEvent {
                    shard: 1,
                    trigger: CrashTrigger::CorruptCheckpoint(1)
                },
            ]
        );
        assert!(CrashScript::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_items_with_the_item_named() {
        for bad in [
            "kill:1",
            "kill@tick:5",
            "kill:x@tick:5",
            "kill:1@tick:x",
            "corrupt:1@tick:5",
            "explode:1@tick:5",
            "kill:1@epoch:5",
        ] {
            let err = CrashScript::parse(bad).unwrap_err();
            match err {
                RecoveryError::BadSpec { item, .. } => assert_eq!(item, bad),
                other => panic!("expected BadSpec for {bad:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn validate_rejects_out_of_range_targets() {
        let script = CrashScript::parse("kill:3@tick:5").unwrap();
        assert_eq!(script.validate(4), Ok(()));
        assert_eq!(
            script.validate(2),
            Err(RecoveryError::UnknownShard {
                shard: 3,
                shards: 2
            })
        );
    }

    #[test]
    fn seeded_scripts_are_deterministic_and_in_range() {
        let a = CrashScript::seeded(42, 4, 8);
        let b = CrashScript::seeded(42, 4, 8);
        assert_eq!(a, b);
        assert!(a.events().iter().all(|ev| ev.shard < 4));
        assert!(a.validate(4).is_ok());
        let c = CrashScript::seeded(43, 4, 8);
        assert_ne!(a, c, "a different seed should shuffle the script");
    }

    #[test]
    fn supervisor_rejects_a_zero_cadence() {
        let backoff = Backoff::fixed(Minutes(1.0)).unwrap();
        assert!(matches!(
            Supervisor::new(backoff, 0),
            Err(RecoveryError::ZeroCadence)
        ));
        assert!(Supervisor::new(backoff, 25).is_ok());
    }
}
