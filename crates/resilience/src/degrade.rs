//! Graceful degradation: what a client does when a repair misses its
//! deadline.
//!
//! [`sb_sim::apply_losses`] always **stalls**: the player freezes for the
//! full lateness and every later deadline shifts back. That is one policy
//! among several a set-top box could adopt; [`replay`] generalizes the
//! same repair loop over [`Degradation`]:
//!
//! - [`Degradation::Stall`] — freeze for the full lateness; bit-for-bit
//!   the behaviour of [`sb_sim::apply_losses`] (pinned by test).
//! - [`Degradation::SkipSegment`] — never freeze: a reception that
//!   cannot make its deadline has its content skipped instead, playback
//!   continues on time, and the skipped display minutes are accounted.
//! - [`Degradation::QualityDrop`] — fall back to a half-rate rendition of
//!   the late reception. Modelled coarsely: halving the rate requirement
//!   lets playback resume after half the slip, so the player stalls for
//!   `lateness / 2` and renders `lateness / 2` display minutes degraded.
//!   (The full-quality first-byte deadline is binding for any reception
//!   rate ≥ display rate, so a literal data-requirement halving would
//!   never help; the half-split is the documented simplification.)
//!
//! Every path records through [`sb_metrics`] families
//! (`degrade_stall_minutes`, `degrade_skipped_minutes`,
//! `degrade_degraded_minutes`, `degrade_truncated`) so studies can
//! compare policies without re-deriving the accounting.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::plan::ChannelPlan;
use sb_metrics::Recorder;
use sb_sim::faults::{deadline_order, occurrence_index, MAX_RETRIES};
use sb_sim::{LossProcess, SessionTrace, Stall, StallReport};

/// What a client does with a reception that misses its deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Degradation {
    /// Freeze playback for the full lateness (the classic behaviour).
    Stall,
    /// Skip the late content; playback never freezes.
    SkipSegment,
    /// Drop to a half-rate rendition: stall half the lateness, render the
    /// other half degraded.
    QualityDrop,
}

impl Degradation {
    /// Stable lowercase label, used for metric labels and CLI flags.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Degradation::Stall => "stall",
            Degradation::SkipSegment => "skip",
            Degradation::QualityDrop => "quality",
        }
    }

    /// All policies, in presentation order.
    #[must_use]
    pub fn all() -> [Degradation; 3] {
        [
            Degradation::Stall,
            Degradation::SkipSegment,
            Degradation::QualityDrop,
        ]
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Degradation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "stall" => Ok(Degradation::Stall),
            "skip" => Ok(Degradation::SkipSegment),
            "quality" => Ok(Degradation::QualityDrop),
            other => Err(format!(
                "unknown degradation policy `{other}` (expected stall, skip, or quality)"
            )),
        }
    }
}

/// The outcome of replaying a session under losses with a degradation
/// policy — [`StallReport`] plus the skip/quality ledgers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradedReport {
    /// The repaired trace (receptions slipped to surviving occurrences).
    pub trace: SessionTrace,
    /// Stalls in playback order (empty under `SkipSegment`).
    pub stalls: Vec<Stall>,
    /// `(reception index, display minutes skipped)` under `SkipSegment`.
    pub skipped: Vec<(usize, Minutes)>,
    /// `(reception index, display minutes degraded)` under `QualityDrop`.
    pub degraded: Vec<(usize, Minutes)>,
    /// Receptions the repair gave up on after [`MAX_RETRIES`].
    pub truncated: Vec<usize>,
}

impl DegradedReport {
    /// Total frozen time.
    #[must_use]
    pub fn total_stall(&self) -> Minutes {
        Minutes(self.stalls.iter().map(|s| s.duration.value()).sum())
    }

    /// Total display minutes skipped.
    #[must_use]
    pub fn skipped_minutes(&self) -> Minutes {
        Minutes(self.skipped.iter().map(|(_, m)| m.value()).sum())
    }

    /// Total display minutes rendered degraded.
    #[must_use]
    pub fn degraded_minutes(&self) -> Minutes {
        Minutes(self.degraded.iter().map(|(_, m)| m.value()).sum())
    }
}

/// Replay `trace` under `losses` with degradation `policy`, recording the
/// outcome through `rec`.
///
/// The repair loop is the one in [`sb_sim::apply_losses`] — receptions
/// slip whole periods to surviving occurrences, deadlines are checked in
/// playback order against the shift accumulated so far — but lateness is
/// resolved per `policy` instead of always stalling. With
/// [`Degradation::Stall`] the result equals [`sb_sim::apply_losses`]
/// field for field.
pub fn replay<L: LossProcess + ?Sized>(
    plan: &ChannelPlan,
    trace: &SessionTrace,
    losses: &L,
    policy: Degradation,
    rec: &mut dyn Recorder,
) -> DegradedReport {
    let mut out = trace.clone();
    let mut stalls = Vec::new();
    let mut skipped = Vec::new();
    let mut degraded = Vec::new();
    let mut truncated = Vec::new();
    // Accumulated playback shift from stalls so far.
    let mut shift = 0.0f64;
    // Display minutes per Mbit of content.
    let per_mbit = 1.0 / (trace.display_rate.value() * 60.0);

    for i in deadline_order(trace) {
        let r = out.receptions[i];
        let ch = &plan.channels[r.channel];
        let period = ch.period().value();
        let offset_minutes = r.content_offset.value() / (r.rate.value() * 60.0);
        let mut occ = occurrence_index(plan, r.channel, r.start, offset_minutes);
        let mut start = r.start.value();
        let mut retries = 0;
        while losses.is_lost(r.channel, occ) && retries < MAX_RETRIES {
            occ += 1;
            start += period;
            retries += 1;
        }
        if retries >= MAX_RETRIES {
            truncated.push(i);
            rec.incr("degrade_truncated", &[("policy", policy.label())], 1);
        }
        out.receptions[i].start = Minutes(start);

        let required = trace.required_start(i).value() + shift;
        let lateness = start - required;
        if lateness <= 1e-9 {
            continue;
        }
        match policy {
            Degradation::Stall => {
                shift += lateness;
                stalls.push(Stall {
                    segment: r.segment,
                    reception: i,
                    duration: Minutes(lateness),
                });
                rec.observe(
                    "degrade_stall_minutes",
                    &[("policy", policy.label())],
                    lateness,
                );
            }
            Degradation::SkipSegment => {
                // Playback rolls on; the late content is simply dropped.
                let skip = r.size.value() * per_mbit;
                skipped.push((i, Minutes(skip)));
                rec.observe(
                    "degrade_skipped_minutes",
                    &[("policy", policy.label())],
                    skip,
                );
            }
            Degradation::QualityDrop => {
                // Half-rate rendition: half the slip becomes a stall, the
                // other half plays degraded.
                let pause = lateness / 2.0;
                shift += pause;
                stalls.push(Stall {
                    segment: r.segment,
                    reception: i,
                    duration: Minutes(pause),
                });
                degraded.push((i, Minutes(pause)));
                rec.observe(
                    "degrade_stall_minutes",
                    &[("policy", policy.label())],
                    pause,
                );
                rec.observe(
                    "degrade_degraded_minutes",
                    &[("policy", policy.label())],
                    pause,
                );
            }
        }
    }
    DegradedReport {
        trace: out,
        stalls,
        skipped,
        degraded,
        truncated,
    }
}

/// Convert a [`DegradedReport`] produced under [`Degradation::Stall`]
/// into the equivalent [`StallReport`] (they are the same data).
#[must_use]
pub fn as_stall_report(report: &DegradedReport) -> StallReport {
    StallReport {
        trace: report.trace.clone(),
        stalls: report.stalls.clone(),
        truncated: report.truncated.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_core::config::SystemConfig;
    use sb_core::plan::VideoId;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::series::Width;
    use sb_core::Skyscraper;
    use sb_metrics::{NullRecorder, Registry};
    use sb_sim::{apply_losses, jitter_free_with_stalls, ClientPolicy, LossModel};
    use vod_units::Mbps;

    fn setup() -> (ChannelPlan, SessionTrace) {
        let cfg = SystemConfig::paper_defaults(Mbps(150.0));
        let plan = Skyscraper::with_width(Width::Capped(12))
            .plan(&cfg)
            .unwrap();
        let trace = sb_sim::schedule_client(
            &plan,
            VideoId(0),
            Minutes(3.3),
            cfg.display_rate,
            ClientPolicy::LatestFeasible,
        )
        .unwrap()
        .trace();
        (plan, trace)
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in Degradation::all() {
            assert_eq!(p.label().parse::<Degradation>().unwrap(), p);
            assert_eq!(p.to_string(), p.label());
        }
        assert!("nonsense".parse::<Degradation>().is_err());
    }

    #[test]
    fn stall_policy_matches_apply_losses_exactly() {
        let (plan, trace) = setup();
        for seed in 0..10 {
            let losses = LossModel::new(0.3, seed).unwrap();
            let classic = apply_losses(&plan, &trace, &losses);
            let r = replay(
                &plan,
                &trace,
                &losses,
                Degradation::Stall,
                &mut NullRecorder,
            );
            assert_eq!(as_stall_report(&r), classic, "seed {seed}");
            assert!(r.skipped.is_empty());
            assert!(r.degraded.is_empty());
        }
    }

    #[test]
    fn skip_policy_never_stalls_and_accounts_skipped_content() {
        let (plan, trace) = setup();
        let mut any_skip = false;
        for seed in 0..10 {
            let losses = LossModel::new(0.3, seed).unwrap();
            let r = replay(
                &plan,
                &trace,
                &losses,
                Degradation::SkipSegment,
                &mut NullRecorder,
            );
            assert!(r.stalls.is_empty(), "skip policy must never freeze");
            let classic = apply_losses(&plan, &trace, &losses);
            // Never freezing means later deadlines don't relax, so every
            // reception the classic policy stalls for is skipped — and
            // possibly more.
            assert!(r.skipped.len() >= classic.stalls.len(), "seed {seed}");
            any_skip |= !r.skipped.is_empty();
            for (_, m) in &r.skipped {
                assert!(m.value() > 0.0);
            }
        }
        assert!(any_skip, "30% loss over 10 seeds must skip at least once");
    }

    #[test]
    fn quality_drop_halves_the_stall_and_ledgers_the_rest() {
        let (plan, trace) = setup();
        for seed in 0..10 {
            let losses = LossModel::new(0.3, seed).unwrap();
            let q = replay(
                &plan,
                &trace,
                &losses,
                Degradation::QualityDrop,
                &mut NullRecorder,
            );
            // Each stall is matched by an equal degraded allotment.
            assert_eq!(q.stalls.len(), q.degraded.len());
            for (s, (rec_idx, m)) in q.stalls.iter().zip(&q.degraded) {
                assert_eq!(s.reception, *rec_idx);
                assert!((s.duration.value() - m.value()).abs() < 1e-12);
            }
            // Halving each pause halves the relief later deadlines get,
            // so latenesses grow relative to the classic timeline: total
            // freeze lands between half the classic stall and all of it.
            let classic = apply_losses(&plan, &trace, &losses).total_stall().value();
            let quality = q.total_stall().value();
            assert!(quality <= classic + 1e-9, "seed {seed}");
            assert!(quality >= classic / 2.0 - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn replay_records_metric_families() {
        let (plan, trace) = setup();
        let losses = LossModel::new(0.4, 3).unwrap();
        let mut reg = Registry::new();
        let stall = replay(&plan, &trace, &losses, Degradation::Stall, &mut reg);
        let skip = replay(&plan, &trace, &losses, Degradation::SkipSegment, &mut reg);
        let s = reg.snapshot();
        if !stall.stalls.is_empty() {
            let h = s
                .histogram("degrade_stall_minutes", "policy=stall")
                .unwrap();
            assert_eq!(h.count as usize, stall.stalls.len());
            assert!((h.sum - stall.total_stall().value()).abs() < 1e-9);
        }
        if !skip.skipped.is_empty() {
            let h = s
                .histogram("degrade_skipped_minutes", "policy=skip")
                .unwrap();
            assert_eq!(h.count as usize, skip.skipped.len());
        }
    }

    #[test]
    fn stall_replay_remains_starvation_free() {
        let (plan, trace) = setup();
        for seed in 0..10 {
            let losses = LossModel::new(0.35, seed).unwrap();
            let r = replay(
                &plan,
                &trace,
                &losses,
                Degradation::Stall,
                &mut NullRecorder,
            );
            assert!(jitter_free_with_stalls(&as_stall_report(&r), 1e-6));
        }
    }
}
