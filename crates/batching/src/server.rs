//! The scheduled-multicast channel-pool simulation.
//!
//! A pool of `channels` server streams serves a catalog of videos. Viewer
//! requests queue per video; whenever a channel is (or becomes) free and
//! somebody is waiting, the [`BatchPolicy`] picks a queue and the whole
//! batch is served by one multicast stream, which occupies the channel for
//! the video's full length. Viewers renege when their patience runs out
//! before service starts — the behaviour §1 says bounded-latency broadcast
//! improves.

use sb_metrics::{NullRecorder, Recorder};
use sb_sim::MinQueue;
use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_workload::{Catalog, WorkloadRequest};

use crate::policy::{BatchPolicy, Pending};

/// Per-request outcome of a batching run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ServiceOutcome {
    /// Served at the given start time (wait = start − arrival).
    Served {
        /// When the multicast stream carrying this viewer began.
        at: Minutes,
    },
    /// Gave up waiting at the given time.
    Reneged {
        /// When the viewer deserted.
        at: Minutes,
    },
}

/// Aggregate statistics of one batching run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceReport {
    /// Requests that were served.
    pub served: usize,
    /// Requests that reneged.
    pub reneged: usize,
    /// Mean wait of served requests.
    pub mean_wait: Minutes,
    /// Worst wait of served requests.
    pub worst_wait: Minutes,
    /// Number of multicast streams started.
    pub streams: usize,
    /// Mean batch size (served requests per stream).
    pub mean_batch_size: f64,
    /// Per-request outcomes, in input order.
    pub outcomes: Vec<ServiceOutcome>,
}

impl ServiceReport {
    /// Fraction of requests that reneged.
    #[must_use]
    pub fn renege_rate(&self) -> f64 {
        let total = self.served + self.reneged;
        if total == 0 {
            0.0
        } else {
            self.reneged as f64 / total as f64
        }
    }
}

/// The channel-pool server.
#[derive(Debug, Clone)]
pub struct BatchingServer {
    /// Number of concurrent multicast streams the pool supports.
    pub channels: usize,
    /// The batch-selection policy.
    pub policy: BatchPolicy,
}

/// Wrapper giving finite f64 completion times a total order, so they can
/// ride in the shared [`MinQueue`] (the same min-heap idiom the engine's
/// heap agenda uses).
#[derive(PartialEq)]
struct T(f64);
impl Eq for T {}
impl PartialOrd for T {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for T {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite times")
    }
}

impl BatchingServer {
    /// A pool with the given size and policy.
    ///
    /// # Panics
    /// Panics if `channels == 0`.
    #[must_use]
    pub fn new(channels: usize, policy: BatchPolicy) -> Self {
        assert!(channels > 0, "a server needs at least one channel");
        Self { channels, policy }
    }

    /// Run the pool over a request stream (`video` indexes `catalog`).
    ///
    /// Requests must be sorted by arrival time (as produced by
    /// `sb_workload::PoissonArrivals::generate`).
    ///
    /// # Panics
    /// Panics if a request names a video outside the catalog or the stream
    /// is unsorted.
    #[must_use]
    pub fn run(&self, catalog: &Catalog, requests: &[WorkloadRequest]) -> ServiceReport {
        self.run_recorded(catalog, requests, &mut NullRecorder)
    }

    /// [`BatchingServer::run`], additionally streaming per-video service
    /// and defection series into `rec`:
    ///
    /// * `batch_served_total{video}` / `batch_reneged_total{video}` —
    ///   outcomes (counters);
    /// * `batch_wait_minutes{video}` — waits of served viewers
    ///   (histogram);
    /// * `pool_streams_total` — multicast streams started (counter);
    /// * `pool_peak_busy_channels` — channel-pool high-water mark (gauge).
    ///
    /// The returned report is identical to [`BatchingServer::run`]'s: the
    /// recorder observes the run, it never steers it.
    ///
    /// # Panics
    /// As [`BatchingServer::run`].
    #[must_use]
    pub fn run_recorded(
        &self,
        catalog: &Catalog,
        requests: &[WorkloadRequest],
        rec: &mut dyn Recorder,
    ) -> ServiceReport {
        for w in requests.windows(2) {
            assert!(w[0].at <= w[1].at, "request stream must be sorted");
        }
        let n_videos = catalog.len();
        // Per-video queues of (arrival, patience deadline, request index).
        let mut queues: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); n_videos];
        let mut outcomes: Vec<Option<ServiceOutcome>> = vec![None; requests.len()];
        // Completion times of busy channels.
        let mut busy: MinQueue<T> = MinQueue::new();
        let mut free = self.channels;
        let mut streams = 0usize;
        let mut served = 0usize;
        let mut batch_sum = 0usize;
        let mut wait_sum = 0.0f64;
        let mut worst_wait = 0.0f64;

        let mut dispatch = |now: f64,
                            queues: &mut Vec<Vec<(f64, f64, usize)>>,
                            free: &mut usize,
                            busy: &mut MinQueue<T>,
                            outcomes: &mut Vec<Option<ServiceOutcome>>| {
            loop {
                if *free == 0 {
                    return;
                }
                // Purge reneged viewers before selecting.
                for q in queues.iter_mut() {
                    q.retain(|&(_, deadline, idx)| {
                        if deadline < now {
                            outcomes[idx] = Some(ServiceOutcome::Reneged {
                                at: Minutes(deadline),
                            });
                            false
                        } else {
                            true
                        }
                    });
                }
                let view: Vec<Vec<Pending>> = queues
                    .iter()
                    .map(|q| {
                        q.iter()
                            .map(|&(a, _, _)| Pending {
                                arrival: Minutes(a),
                            })
                            .collect()
                    })
                    .collect();
                let Some(v) = self.policy.choose(&view) else {
                    return;
                };
                // Serve the whole batch for video v.
                let batch = std::mem::take(&mut queues[v]);
                streams += 1;
                batch_sum += batch.len();
                for (arrival, _, idx) in batch {
                    let wait = now - arrival;
                    wait_sum += wait;
                    worst_wait = worst_wait.max(wait);
                    served += 1;
                    outcomes[idx] = Some(ServiceOutcome::Served { at: Minutes(now) });
                }
                *free -= 1;
                let dur = catalog.get(v).expect("video in catalog").length.value();
                busy.push(T(now + dur));
            }
        };

        let mut i = 0usize;
        let mut peak_busy = 0usize;
        loop {
            let next_arrival = requests.get(i).map(|r| r.at.value());
            let next_completion = busy.peek().map(|&T(t)| t);
            match (next_arrival, next_completion) {
                (None, None) => break,
                (Some(a), c) if c.is_none_or(|c| a <= c) => {
                    let r = &requests[i];
                    assert!(r.video < n_videos, "request for unknown video {}", r.video);
                    queues[r.video].push((a, a + r.patience.value(), i));
                    i += 1;
                    dispatch(a, &mut queues, &mut free, &mut busy, &mut outcomes);
                }
                (_, Some(c)) => {
                    busy.pop();
                    free += 1;
                    dispatch(c, &mut queues, &mut free, &mut busy, &mut outcomes);
                }
                (Some(_), None) => {
                    unreachable!("arrival-first guard admits every no-completion case")
                }
            }
            peak_busy = peak_busy.max(self.channels - free);
        }

        // Whoever is still queued at the end reneges at their deadline
        // (the pool never got to them).
        for q in &queues {
            for &(_, deadline, idx) in q {
                outcomes[idx] = Some(ServiceOutcome::Reneged {
                    at: Minutes(deadline),
                });
            }
        }

        let outcomes: Vec<ServiceOutcome> = outcomes
            .into_iter()
            .map(|o| o.expect("every request resolved"))
            .collect();
        for (r, o) in requests.iter().zip(&outcomes) {
            let video = r.video.to_string();
            let vl: &[(&str, &str)] = &[("video", &video)];
            match o {
                ServiceOutcome::Served { at } => {
                    rec.incr("batch_served_total", vl, 1);
                    rec.observe("batch_wait_minutes", vl, at.value() - r.at.value());
                }
                ServiceOutcome::Reneged { .. } => rec.incr("batch_reneged_total", vl, 1),
            }
        }
        rec.incr("pool_streams_total", &[], streams as u64);
        rec.gauge_max("pool_peak_busy_channels", &[], peak_busy as f64);
        let reneged = outcomes
            .iter()
            .filter(|o| matches!(o, ServiceOutcome::Reneged { .. }))
            .count();
        ServiceReport {
            served,
            reneged,
            mean_wait: Minutes(if served > 0 {
                wait_sum / served as f64
            } else {
                0.0
            }),
            worst_wait: Minutes(worst_wait),
            streams,
            mean_batch_size: if streams > 0 {
                batch_sum as f64 / streams as f64
            } else {
                0.0
            },
            outcomes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use sb_workload::{Patience, PoissonArrivals, ZipfPopularity};

    fn req(at: f64, video: usize, patience: f64) -> WorkloadRequest {
        WorkloadRequest {
            at: Minutes(at),
            video,
            patience: Minutes(patience),
        }
    }

    #[test]
    fn single_request_served_immediately() {
        let catalog = Catalog::paper_defaults(3);
        let server = BatchingServer::new(2, BatchPolicy::Fcfs);
        let report = server.run(&catalog, &[req(1.0, 0, f64::INFINITY)]);
        assert_eq!(report.served, 1);
        assert_eq!(report.reneged, 0);
        assert_eq!(report.streams, 1);
        assert_eq!(report.mean_wait, Minutes(0.0));
        assert_eq!(
            report.outcomes[0],
            ServiceOutcome::Served { at: Minutes(1.0) }
        );
    }

    #[test]
    fn batching_shares_one_stream() {
        // Both channels busy with filler, then 5 requests for video 2
        // accumulate and are served by a single stream.
        let catalog = Catalog::paper_defaults(3);
        let server = BatchingServer::new(1, BatchPolicy::Fcfs);
        let mut reqs = vec![req(0.0, 0, f64::INFINITY)];
        for i in 0..5 {
            reqs.push(req(1.0 + i as f64, 2, f64::INFINITY));
        }
        let report = server.run(&catalog, &reqs);
        assert_eq!(report.served, 6);
        assert_eq!(report.streams, 2);
        // The batch of 5 starts when the filler finishes at t = 120.
        for o in &report.outcomes[1..] {
            assert_eq!(*o, ServiceOutcome::Served { at: Minutes(120.0) });
        }
        assert!((report.mean_batch_size - 3.0).abs() < 1e-12);
    }

    #[test]
    fn impatient_viewers_renege() {
        let catalog = Catalog::paper_defaults(2);
        let server = BatchingServer::new(1, BatchPolicy::Fcfs);
        let reqs = vec![
            req(0.0, 0, f64::INFINITY), // occupies the only channel to 120
            req(1.0, 1, 5.0),           // deserts at 6.0
            req(2.0, 1, 500.0),         // served at 120
        ];
        let report = server.run(&catalog, &reqs);
        assert_eq!(report.served, 2);
        assert_eq!(report.reneged, 1);
        assert_eq!(
            report.outcomes[1],
            ServiceOutcome::Reneged { at: Minutes(6.0) }
        );
        assert_eq!(
            report.outcomes[2],
            ServiceOutcome::Served { at: Minutes(120.0) }
        );
        assert!((report.renege_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recorded_run_matches_bare_run_and_fills_registry() {
        let catalog = Catalog::paper_defaults(10);
        let z = ZipfPopularity::paper(10);
        let reqs = PoissonArrivals::new(1.0, 7)
            .with_patience(Patience::Fixed(Minutes(30.0)))
            .generate(&z, Minutes(600.0));
        let server = BatchingServer::new(4, BatchPolicy::Mql);
        let bare = server.run(&catalog, &reqs);
        let mut reg = sb_metrics::Registry::new();
        let recorded = server.run_recorded(&catalog, &reqs, &mut reg);
        assert_eq!(bare, recorded, "recording must not steer the run");
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_total("batch_served_total") as usize,
            bare.served
        );
        assert_eq!(
            snap.counter_total("batch_reneged_total") as usize,
            bare.reneged
        );
        assert_eq!(
            snap.counter("pool_streams_total", "").unwrap() as usize,
            bare.streams
        );
        let h = snap.histogram("batch_wait_minutes", "video=0").unwrap();
        assert!(h.count > 0 && h.sum <= bare.worst_wait.value() * h.count as f64);
    }

    #[test]
    fn mql_prefers_big_batches_fcfs_prefers_old() {
        let catalog = Catalog::paper_defaults(3);
        // One channel busy until t=120; queues: video 1 has 1 old request,
        // video 2 has 3 newer ones.
        let reqs = vec![
            req(0.0, 0, f64::INFINITY),
            req(1.0, 1, f64::INFINITY),
            req(2.0, 2, f64::INFINITY),
            req(3.0, 2, f64::INFINITY),
            req(4.0, 2, f64::INFINITY),
        ];
        let fcfs = BatchingServer::new(1, BatchPolicy::Fcfs).run(&catalog, &reqs);
        let mql = BatchingServer::new(1, BatchPolicy::Mql).run(&catalog, &reqs);
        // FCFS serves video 1 first (oldest head), MQL serves video 2 first.
        assert_eq!(
            fcfs.outcomes[1],
            ServiceOutcome::Served { at: Minutes(120.0) }
        );
        assert_eq!(
            mql.outcomes[2],
            ServiceOutcome::Served { at: Minutes(120.0) }
        );
        assert_eq!(
            mql.outcomes[1],
            ServiceOutcome::Served { at: Minutes(240.0) }
        );
    }

    #[test]
    fn throughput_mql_beats_or_ties_fcfs_under_load() {
        // Classic batching result: under overload with reneging, MQL
        // serves at least as many viewers as FCFS.
        let catalog = Catalog::paper_defaults(40);
        let z = ZipfPopularity::paper(40);
        let reqs = PoissonArrivals::new(2.0, 42)
            .with_patience(Patience::Exponential(Minutes(10.0)))
            .generate(&z, Minutes(1200.0));
        let fcfs = BatchingServer::new(8, BatchPolicy::Fcfs).run(&catalog, &reqs);
        let mql = BatchingServer::new(8, BatchPolicy::Mql).run(&catalog, &reqs);
        assert!(
            mql.served as f64 >= fcfs.served as f64 * 0.98,
            "MQL {} vs FCFS {}",
            mql.served,
            fcfs.served
        );
        // Sanity: the load is heavy enough that reneging actually occurs.
        assert!(fcfs.reneged > 0 && mql.reneged > 0);
    }

    #[test]
    fn all_resolved_and_conserved() {
        let catalog = Catalog::paper_defaults(10);
        let z = ZipfPopularity::paper(10);
        let reqs = PoissonArrivals::new(1.0, 7)
            .with_patience(Patience::Fixed(Minutes(30.0)))
            .generate(&z, Minutes(600.0));
        let report = BatchingServer::new(4, BatchPolicy::Mql).run(&catalog, &reqs);
        assert_eq!(report.served + report.reneged, reqs.len());
        assert_eq!(report.outcomes.len(), reqs.len());
        // Served waits never exceed the fixed patience.
        for (r, o) in reqs.iter().zip(&report.outcomes) {
            if let ServiceOutcome::Served { at } = o {
                assert!(at.value() - r.at.value() <= 30.0 + 1e-9);
            }
        }
        assert!(report.worst_wait.value() <= 30.0 + 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Conservation and ordering invariants over random workloads.
        #[test]
        fn conservation_over_random_workloads(
            channels in 1usize..12,
            rate in 0.2f64..4.0,
            seed in 0u64..500,
            patience in 2.0f64..60.0,
        ) {
            let catalog = Catalog::paper_defaults(12);
            let z = ZipfPopularity::paper(12);
            let reqs = PoissonArrivals::new(rate, seed)
                .with_patience(Patience::Fixed(Minutes(patience)))
                .generate(&z, Minutes(400.0));
            for policy in [BatchPolicy::Fcfs, BatchPolicy::Mql] {
                let report = BatchingServer::new(channels, policy).run(&catalog, &reqs);
                prop_assert_eq!(report.served + report.reneged, reqs.len());
                prop_assert_eq!(report.outcomes.len(), reqs.len());
                prop_assert!(report.worst_wait.value() <= patience + 1e-9);
                // Streams never exceed what served batches could need.
                prop_assert!(report.streams <= report.served.max(1));
                // Outcomes are causally consistent with arrivals.
                for (r, o) in reqs.iter().zip(&report.outcomes) {
                    match o {
                        ServiceOutcome::Served { at } => prop_assert!(*at >= r.at),
                        ServiceOutcome::Reneged { at } => {
                            prop_assert!((at.value() - (r.at.value() + patience)).abs() < 1e-9)
                        }
                    }
                }
            }
        }

        /// More channels never serve fewer viewers (same stream, policy).
        #[test]
        fn monotone_in_channel_count(seed in 0u64..200) {
            let catalog = Catalog::paper_defaults(15);
            let z = ZipfPopularity::paper(15);
            let reqs = PoissonArrivals::new(1.5, seed)
                .with_patience(Patience::Fixed(Minutes(15.0)))
                .generate(&z, Minutes(300.0));
            let few = BatchingServer::new(2, BatchPolicy::Mql).run(&catalog, &reqs);
            let many = BatchingServer::new(8, BatchPolicy::Mql).run(&catalog, &reqs);
            prop_assert!(many.served >= few.served);
        }
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_requests_rejected() {
        let catalog = Catalog::paper_defaults(2);
        let server = BatchingServer::new(1, BatchPolicy::Fcfs);
        let _ = server.run(&catalog, &[req(5.0, 0, 1.0), req(1.0, 1, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        let _ = BatchingServer::new(0, BatchPolicy::Fcfs);
    }
}
