//! Batch-selection policies.
//!
//! When a server channel frees up, the scheduler must pick *which video's
//! queue* to serve with a single multicast stream. §1 names Maximum Queue
//! Length (MQL) as the throughput-maximizing example; FCFS is the fairness
//! baseline the batching literature compares it to.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

/// A pending (non-reneged) request in some video's queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pending {
    /// Arrival time of the request.
    pub arrival: Minutes,
}

/// How a freed channel picks its next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Serve the video whose oldest pending request has waited longest.
    /// Fair (bounded unfairness), but a popular title's queue drains no
    /// faster than an unpopular one's.
    Fcfs,
    /// Dan et al.'s Maximum Queue Length: serve the video with the most
    /// pending requests. Maximizes throughput; starves cold titles under
    /// load.
    Mql,
}

impl BatchPolicy {
    /// Choose a queue index among `queues` (a slice of per-video pending
    /// lists, each sorted by arrival). Returns `None` if all are empty.
    /// Ties break toward the lower video index, deterministically.
    #[must_use]
    pub fn choose(&self, queues: &[Vec<Pending>]) -> Option<usize> {
        match self {
            BatchPolicy::Fcfs => queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .min_by(|(ai, a), (bi, b)| {
                    let (ha, hb) = (a[0].arrival, b[0].arrival);
                    ha.partial_cmp(&hb)
                        .expect("finite arrivals")
                        .then(ai.cmp(bi))
                })
                .map(|(i, _)| i),
            BatchPolicy::Mql => queues
                .iter()
                .enumerate()
                .filter(|(_, q)| !q.is_empty())
                .max_by(|(ai, a), (bi, b)| {
                    a.len().cmp(&b.len()).then(bi.cmp(ai)) // prefer lower index on ties
                })
                .map(|(i, _)| i),
        }
    }
}

impl core::fmt::Display for BatchPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BatchPolicy::Fcfs => write!(f, "FCFS"),
            BatchPolicy::Mql => write!(f, "MQL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(arrivals: &[f64]) -> Vec<Pending> {
        arrivals
            .iter()
            .map(|&a| Pending {
                arrival: Minutes(a),
            })
            .collect()
    }

    #[test]
    fn fcfs_picks_oldest_head() {
        let queues = vec![q(&[5.0, 6.0]), q(&[2.0]), q(&[3.0, 3.5, 4.0])];
        assert_eq!(BatchPolicy::Fcfs.choose(&queues), Some(1));
    }

    #[test]
    fn mql_picks_longest_queue() {
        let queues = vec![q(&[5.0, 6.0]), q(&[2.0]), q(&[3.0, 3.5, 4.0])];
        assert_eq!(BatchPolicy::Mql.choose(&queues), Some(2));
    }

    #[test]
    fn empty_queues_yield_none() {
        let queues: Vec<Vec<Pending>> = vec![vec![], vec![]];
        assert_eq!(BatchPolicy::Fcfs.choose(&queues), None);
        assert_eq!(BatchPolicy::Mql.choose(&queues), None);
    }

    #[test]
    fn ties_break_deterministically_low_index() {
        let queues = vec![q(&[1.0]), q(&[1.0])];
        assert_eq!(BatchPolicy::Fcfs.choose(&queues), Some(0));
        let queues = vec![vec![], q(&[9.0]), q(&[1.0])];
        // Equal lengths: MQL prefers the lower index.
        assert_eq!(BatchPolicy::Mql.choose(&queues), Some(1));
    }
}
