//! # Scheduled multicast (batching) for the unpopular videos
//!
//! §1 of the paper: "We assume that some existing scheduled multicast
//! scheme is used to handle the less popular videos." This crate *is* that
//! scheme — built, not assumed — so the repository can run the full hybrid
//! server the paper describes (§1: "a fraction of the server channels is
//! reserved and preallocated for periodic broadcast of the popular videos.
//! The remaining channels are used to serve the rest of the videos using
//! some scheduled multicast technique").
//!
//! * [`policy`] — batch-selection policies: FCFS and Dan et al.'s
//!   **Maximum Queue Length** (MQL), the §1 example ("selects the batch
//!   with the most number of pending requests to serve first. The
//!   objective … is to maximize the server throughput").
//! * [`server`] — an event-driven channel-pool simulation with reneging
//!   viewers.
//! * [`hybrid`] — the §1 hybrid: split the server bandwidth between a
//!   periodic-broadcast scheme for the top-`M` titles and a batching pool
//!   for the tail.

#![forbid(unsafe_code)]

pub mod hybrid;
pub mod policy;
pub mod server;

pub use hybrid::{HybridConfig, HybridReport};
pub use policy::BatchPolicy;
pub use server::{BatchingServer, ServiceOutcome, ServiceReport};
