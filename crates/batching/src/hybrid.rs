//! The §1 hybrid server: periodic broadcast for the head of the catalog,
//! scheduled multicast for the tail.
//!
//! "It was shown in [7, 8] that a hybrid of the two techniques offered the
//! best performance. In this approach, a fraction of the server channels
//! is reserved and preallocated for periodic broadcast of the popular
//! videos. The remaining channels are used to serve the rest of the videos
//! using some scheduled multicast technique."
//!
//! [`HybridConfig::run`] wires the pieces together: the top `m` titles are
//! served by a Skyscraper plan (bounded worst-case latency, load-
//! independent), the tail by a [`BatchingServer`] pool sized with whatever
//! bandwidth is left.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::Result;
use sb_core::plan::VideoId;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_workload::{Catalog, WorkloadRequest};

use crate::policy::BatchPolicy;
use crate::server::{BatchingServer, ServiceReport};

/// Configuration of the hybrid server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    /// Total server network-I/O bandwidth.
    pub total_bandwidth: Mbps,
    /// How many of the most popular titles get periodic broadcast.
    pub popular: usize,
    /// Skyscraper width for the broadcast half.
    pub width: Width,
    /// Batch policy for the multicast half.
    pub policy: BatchPolicy,
    /// Fraction of bandwidth reserved for the broadcast half, in `(0, 1)`.
    pub broadcast_fraction: f64,
}

/// What came out of a hybrid run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridReport {
    /// Worst-case startup latency guaranteed to the popular titles
    /// (= the SB access latency `D₁`).
    pub broadcast_worst_latency: Minutes,
    /// Number of broadcast requests (all served, by construction).
    pub broadcast_requests: usize,
    /// Broadcast requests that would have reneged anyway (patience below
    /// the worst-case wait — §1: the latency *guarantee* is what curbs
    /// reneging).
    pub broadcast_impatient: usize,
    /// Channels (display-rate streams) used by the broadcast half.
    pub broadcast_channels: usize,
    /// Channels given to the batching pool.
    pub multicast_channels: usize,
    /// The batching half's statistics.
    pub multicast: ServiceReport,
}

impl HybridConfig {
    /// Run the hybrid over a request stream against `catalog`.
    ///
    /// Returns an error if the broadcast fraction cannot sustain at least
    /// one SB channel per popular video, or leaves the pool empty.
    pub fn run(&self, catalog: &Catalog, requests: &[WorkloadRequest]) -> Result<HybridReport> {
        assert!(
            (0.0..1.0).contains(&self.broadcast_fraction) && self.broadcast_fraction > 0.0,
            "broadcast fraction must be in (0, 1)"
        );
        let m = self.popular.min(catalog.len());
        let display_rate = catalog.get(0).expect("non-empty catalog").display_rate;
        let video_length = catalog.get(0).expect("non-empty catalog").length;

        // Broadcast half: an SB system over the m hot titles.
        let sb_cfg = SystemConfig {
            server_bandwidth: Mbps(self.total_bandwidth.value() * self.broadcast_fraction),
            num_videos: m,
            video_length,
            display_rate,
        };
        let scheme = Skyscraper::with_width(self.width);
        let metrics = scheme.metrics(&sb_cfg)?;
        let k = scheme.channels_per_video(&sb_cfg)?;
        let broadcast_channels = k * m;

        // Multicast half: whatever bandwidth is left over, in display-rate
        // channel units.
        let leftover =
            self.total_bandwidth.value() - broadcast_channels as f64 * display_rate.value();
        let pool = (leftover / display_rate.value()).floor() as usize;
        if pool == 0 {
            return Err(sb_core::error::SchemeError::InsufficientBandwidth {
                channels_per_video: 0,
                required: 1,
            });
        }

        // Split the request stream.
        let mut broadcast_requests = 0usize;
        let mut broadcast_impatient = 0usize;
        let mut cold_requests: Vec<WorkloadRequest> = Vec::new();
        for r in requests {
            if r.video < m {
                broadcast_requests += 1;
                if r.patience < metrics.access_latency {
                    broadcast_impatient += 1;
                }
            } else {
                // Re-index the tail for the batching catalog.
                cold_requests.push(WorkloadRequest {
                    at: r.at,
                    video: r.video - m,
                    patience: r.patience,
                });
            }
        }
        let cold_catalog = Catalog::paper_defaults(catalog.len() - m);
        let multicast = BatchingServer::new(pool, self.policy).run(&cold_catalog, &cold_requests);

        Ok(HybridReport {
            broadcast_worst_latency: metrics.access_latency,
            broadcast_requests,
            broadcast_impatient,
            broadcast_channels,
            multicast_channels: pool,
            multicast,
        })
    }

    /// The popular-video plan of the broadcast half, for driving simulated
    /// clients against it.
    pub fn broadcast_plan(&self, catalog: &Catalog) -> Result<sb_core::plan::ChannelPlan> {
        let m = self.popular.min(catalog.len());
        let v0 = catalog.get(0).expect("non-empty catalog");
        let sb_cfg = SystemConfig {
            server_bandwidth: Mbps(self.total_bandwidth.value() * self.broadcast_fraction),
            num_videos: m,
            video_length: v0.length,
            display_rate: v0.display_rate,
        };
        Skyscraper::with_width(self.width).plan(&sb_cfg)
    }
}

/// Map a catalog rank to the broadcast plan's [`VideoId`] (identity for
/// hot titles; tail titles are not in the plan).
#[must_use]
pub fn broadcast_video_id(rank: usize, popular: usize) -> Option<VideoId> {
    (rank < popular).then_some(VideoId(rank))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_workload::{Patience, PoissonArrivals, ZipfPopularity};

    fn workload(n_titles: usize, rate: f64, horizon: f64, seed: u64) -> Vec<WorkloadRequest> {
        PoissonArrivals::new(rate, seed)
            .with_patience(Patience::Exponential(Minutes(8.0)))
            .generate(&ZipfPopularity::paper(n_titles), Minutes(horizon))
    }

    fn config() -> HybridConfig {
        HybridConfig {
            total_bandwidth: Mbps(600.0),
            popular: 10,
            width: Width::Capped(52),
            policy: BatchPolicy::Mql,
            broadcast_fraction: 0.5,
        }
    }

    #[test]
    fn hybrid_accounting_adds_up() {
        let catalog = Catalog::paper_defaults(60);
        let reqs = workload(60, 3.0, 600.0, 9);
        let report = config().run(&catalog, &reqs).unwrap();
        assert_eq!(
            report.broadcast_requests + report.multicast.served + report.multicast.reneged,
            reqs.len()
        );
        // Bandwidth split: broadcast channels + pool ≤ total / b.
        assert!(
            report.broadcast_channels + report.multicast_channels <= 400,
            "{} + {}",
            report.broadcast_channels,
            report.multicast_channels
        );
        // 300 Mb/s for 10 videos → K = 20 → 200 broadcast channels
        // (= 300 Mb/s); the remaining 300 Mb/s funds a 200-channel pool.
        assert_eq!(report.broadcast_channels, 200);
        assert_eq!(report.multicast_channels, 200);
    }

    #[test]
    fn popular_titles_get_guaranteed_latency() {
        let catalog = Catalog::paper_defaults(60);
        let reqs = workload(60, 3.0, 600.0, 10);
        let report = config().run(&catalog, &reqs).unwrap();
        // SB at 300 Mb/s, W=52: sub-minute worst-case latency, far better
        // than what the batching tail experiences under the same load.
        assert!(report.broadcast_worst_latency.value() < 0.5);
        // The broadcast guarantee is load-independent; the batching tail's
        // *worst* wait under the same stream is strictly worse.
        assert!(report.multicast.worst_wait.value() > report.broadcast_worst_latency.value());
        // And almost no broadcast viewer is impatient enough to renege.
        let impatient_rate =
            report.broadcast_impatient as f64 / report.broadcast_requests.max(1) as f64;
        assert!(impatient_rate < 0.05, "impatient rate {impatient_rate}");
    }

    #[test]
    fn majority_of_demand_lands_on_broadcast() {
        // §1's Zipf argument: the 10 hot titles of a 60-title catalog draw
        // most of the requests.
        let catalog = Catalog::paper_defaults(60);
        let reqs = workload(60, 3.0, 600.0, 11);
        let report = config().run(&catalog, &reqs).unwrap();
        let frac = report.broadcast_requests as f64 / reqs.len() as f64;
        assert!(frac > 0.45, "broadcast share {frac:.3}");
    }

    #[test]
    fn starving_the_pool_is_an_error() {
        let catalog = Catalog::paper_defaults(20);
        let mut cfg = config();
        // 150.85 Mb/s for broadcast → K=10 → 100 channels = 150 Mb/s;
        // the leftover 1 Mb/s cannot fund even one display-rate channel.
        cfg.total_bandwidth = Mbps(151.0);
        cfg.broadcast_fraction = 0.999;
        let r = cfg.run(&catalog, &workload(20, 1.0, 100.0, 1));
        assert!(r.is_err());
    }
}
