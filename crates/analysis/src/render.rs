//! Plain-text and JSON rendering of figures and tables.
//!
//! The paper's artifacts are regenerated as fixed-width text (one row per
//! bandwidth, one column per curve) so `cargo run -p sb-bench --bin figN`
//! prints something directly comparable with the paper's plots, plus JSON
//! for downstream plotting.

use std::fmt::Write as _;

use crate::figures::Figure;
use crate::tables::{EvaluatedRow, FormulaRow};

/// Render a figure as a fixed-width table: x in the first column, one
/// column per series, `-` where a series has no point.
#[must_use]
pub fn render_figure(fig: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {} [{}]", fig.title, fig.id);
    let _ = writeln!(out, "# x = {}, y = {}", fig.x_label, fig.y_label);

    // Collect the x grid (union over series).
    let mut xs: Vec<f64> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().map(|&(x, _)| x))
        .collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let width = 12usize;
    let _ = write!(out, "{:>8}", "B");
    for s in &fig.series {
        let _ = write!(out, "{:>width$}", truncate(&s.label, width - 1));
    }
    let _ = writeln!(out);
    for &x in &xs {
        let _ = write!(out, "{x:>8.0}");
        for s in &fig.series {
            match s
                .points
                .iter()
                .find(|(px, _)| (*px - x).abs() < 1e-9)
                .map(|&(_, y)| y)
            {
                Some(y) => {
                    let _ = write!(out, "{y:>width$.4}");
                }
                None => {
                    let _ = write!(out, "{:>width$}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s.chars().take(n).collect()
    }
}

/// Render Table 1's formula box.
#[must_use]
pub fn render_formulas(rows: &[FormulaRow]) -> String {
    let mut out = String::new();
    for r in rows {
        let _ = writeln!(out, "{}:", r.scheme);
        let _ = writeln!(out, "  I/O bandwidth : {}", r.io_bandwidth);
        let _ = writeln!(out, "  access latency: {}", r.access_latency);
        let _ = writeln!(out, "  buffer space  : {}", r.buffer_space);
    }
    out
}

/// Render the numeric table evaluations.
#[must_use]
pub fn render_evaluations(rows: &[EvaluatedRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:<12} {:>4} {:>4} {:>7} {:>10} {:>12} {:>12}",
        "B", "scheme", "K", "P", "alpha", "IO(Mb/s)", "latency(min)", "buffer(MB)"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>6.0} {:<12} {:>4} {:>4} {:>7} {:>10.2} {:>12.4} {:>12.1}",
            r.bandwidth,
            r.scheme,
            r.k,
            r.p.map_or("-".to_string(), |p| p.to_string()),
            r.alpha.map_or("-".to_string(), |a| format!("{a:.3}")),
            r.io_mbps,
            r.latency_min,
            r.buffer_mbytes,
        );
    }
    out
}

/// Serialize any serde value as pretty JSON.
///
/// # Panics
/// Panics if serialization fails (plain data types here never do).
#[must_use]
pub fn to_json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("figure data serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::Series;

    fn toy_figure() -> Figure {
        Figure {
            id: "t".into(),
            title: "toy".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![
                Series {
                    label: "a".into(),
                    points: vec![(1.0, 2.0), (2.0, 3.0)],
                },
                Series {
                    label: "b".into(),
                    points: vec![(2.0, 9.0)],
                },
            ],
        }
    }

    #[test]
    fn figure_renders_grid_with_gaps() {
        let txt = render_figure(&toy_figure());
        assert!(txt.contains("# toy [t]"));
        // x=1 row has a value for `a` and a dash for `b`.
        let row1 = txt
            .lines()
            .find(|l| l.trim_start().starts_with('1'))
            .unwrap();
        assert!(row1.contains("2.0000"));
        assert!(row1.contains('-'));
        let row2 = txt
            .lines()
            .find(|l| l.trim_start().starts_with('2'))
            .unwrap();
        assert!(row2.contains("9.0000"));
    }

    #[test]
    fn json_roundtrip() {
        let fig = toy_figure();
        let json = to_json(&fig);
        let back: Figure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, fig);
    }

    #[test]
    fn formula_and_eval_render() {
        let f = render_formulas(&crate::tables::table1_formulas());
        assert!(f.contains("60*b*D1*(W-1)"));
        let rows =
            crate::tables::evaluate_tables(&[crate::lineup::SchemeId::Sb(Some(52))], &[300.0]);
        let t = render_evaluations(&rows);
        assert!(t.contains("SB:W=52"));
        assert!(t.contains("300"));
    }
}
