//! The crash-recovery study: what a checkpoint cadence costs and buys.
//!
//! The supervisor (`sb_resilience::recovery`) makes one promise — a
//! killed-and-resumed run is bitwise identical to an uninterrupted one —
//! and charges one price: replayed sessions. A shard killed between
//! checkpoints re-executes everything since the last one, so the cadence
//! sets the trade: checkpoint often and pay serialization every few
//! sessions, or rarely and re-run long stretches after every crash.
//!
//! This study drives one deterministic arrival grid through the
//! [`Supervisor`] under one seeded [`CrashScript`] at every cadence in
//! the grid and reports, per cadence: checkpoints written, sessions
//! replayed, restores, corruption rejections, and the *modeled* recovery
//! delay (the backoff schedule summed, never slept). Every cell also
//! re-verifies the flagship invariant — `identical` is the byte
//! comparison of the supervised outcome against a plain
//! [`SystemSim::execute`] of the same configuration, and the study
//! panics if it ever reads `false` (a determinism violation, not a
//! configuration problem).
//!
//! Cells run in parallel on the [`Runner`]; results are assembled in
//! grid order, so `BENCH_recovery.json` is byte-identical for every
//! `--threads` and `--agenda` choice.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::{Result, SchemeError};
use sb_core::plan::VideoId;
use sb_resilience::{Backoff, CrashScript, Recovered, RunSpec, Supervisor};
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::{RunConfig, RunOutcome, SessionSummary};
use sb_workload::{GridArrivals, Patience};

use crate::lineup::SchemeId;
use crate::runner::Runner;

/// Parameters of the recovery study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Server bandwidth the plan is built against.
    pub bandwidth: Mbps,
    /// The scheme under supervision (SB at the flagship width).
    pub scheme: SchemeId,
    /// Sessions in the arrival grid.
    pub sessions: usize,
    /// Arrivals are spread over `[0, horizon)`.
    pub horizon: Minutes,
    /// Videos the requests cycle through (clamped to the catalog).
    pub videos: usize,
    /// Seed for the arrival grid, the shard hash, and the chaos script.
    pub seed: u64,
    /// Shard count of every supervised run.
    pub shards: usize,
    /// Kill events the seeded chaos script injects per cell.
    pub kills: usize,
    /// Checkpoint cadences measured, in report order (sessions between
    /// checkpoints; every entry must be ≥ 1).
    pub cadence_grid: Vec<u64>,
    /// Base delay of the restart backoff schedule.
    pub backoff_base: Minutes,
    /// Multiplier of the restart backoff schedule.
    pub backoff_factor: f64,
    /// Restart budget per shard.
    pub max_restarts: u32,
}

impl RecoveryConfig {
    /// The full study: tens of thousands of sessions over four shards,
    /// six seeded kills, cadences from eager to lazy.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            bandwidth: Mbps(320.0),
            scheme: SchemeId::Sb(Some(52)),
            sessions: 40_000,
            horizon: Minutes(2_000.0),
            videos: 10,
            seed: 17,
            shards: 4,
            kills: 6,
            cadence_grid: vec![10, 50, 250, 1_000],
            backoff_base: Minutes(1.0),
            backoff_factor: 2.0,
            max_restarts: 8,
        }
    }

    /// A tiny grid for smoke tests and CI: same shape, thousands of
    /// sessions instead of tens of thousands.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            sessions: 2_000,
            horizon: Minutes(200.0),
            cadence_grid: vec![10, 50, 200],
            ..Self::paper_defaults()
        }
    }
}

/// One cadence's cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryRow {
    /// Sessions between checkpoints in this cell.
    pub cadence: u64,
    /// Checkpoints written across all shards and attempts.
    pub checkpoints: u64,
    /// Scripted kills that fired.
    pub crashes_injected: u64,
    /// Restarts that resumed from an intact checkpoint.
    pub restores: u64,
    /// Checkpoints rejected by their checksum on restore.
    pub corrupt_rejected: u64,
    /// Sessions re-executed because they post-dated the restored
    /// checkpoint — the cost of the cadence.
    pub replayed_sessions: u64,
    /// Modeled backoff delay summed over every restart.
    pub recovery_delay: Minutes,
    /// Whether every shard completed inside the restart budget.
    pub complete: bool,
    /// The flagship invariant, re-verified: supervised bytes equal an
    /// uninterrupted `execute` of the same configuration.
    pub identical: bool,
}

/// The whole study. Byte-identical for every thread count and agenda
/// backend (the determinism gate in `scripts/verify.sh` diffs it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The configuration that produced this report.
    pub config: RecoveryConfig,
    /// One row per grid cadence, in grid order.
    pub rows: Vec<RecoveryRow>,
    /// The population summary of the uninterrupted baseline (and, by the
    /// `identical` invariant, of every complete supervised cell).
    pub fold: SessionSummary,
}

fn grid_requests(cfg: &RecoveryConfig, videos: usize) -> Vec<Request> {
    GridArrivals {
        sessions: cfg.sessions,
        horizon: cfg.horizon,
        titles: videos,
        patience: Patience::Infinite,
        seed: cfg.seed,
    }
    .generate()
    .into_iter()
    .map(|w| Request {
        at: w.at,
        video: VideoId(w.video),
    })
    .collect()
}

fn outcome_bytes(o: &RunOutcome) -> String {
    serde_json::to_string(&(&o.summary, &o.fold, &o.snapshot)).expect("outcomes serialize")
}

/// Run the study: one uninterrupted baseline, then one supervised cell
/// per grid cadence (cells in parallel on `runner`), every cell under
/// the same seeded chaos script.
///
/// # Errors
/// Returns the scheme's planning error when `config.bandwidth` cannot
/// sustain the scheme, and [`SchemeError::InvalidConfig`] for a
/// non-positive backoff or a zero cadence in the grid.
///
/// # Panics
/// Panics if any complete supervised cell diverges from the baseline
/// bytes — a determinism violation in the supervisor, never a
/// configuration problem.
pub fn recovery_study(cfg: &RecoveryConfig, runner: &Runner) -> Result<RecoveryReport> {
    let backoff = Backoff::new(cfg.backoff_base, cfg.backoff_factor, cfg.max_restarts)?;
    if cfg.cadence_grid.contains(&0) {
        return Err(SchemeError::InvalidConfig {
            what: "recovery cadence grid contains 0 (a checkpoint cadence must be ≥ 1 session)",
        });
    }
    let sys = SystemConfig::paper_defaults(cfg.bandwidth);
    let plan = cfg.scheme.build().plan(&sys)?;
    let videos = cfg.videos.min(plan.num_videos().max(1));
    let requests = grid_requests(cfg, videos);
    let chaos = CrashScript::seeded(cfg.seed, cfg.shards, cfg.kills);

    let sim = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible);
    let baseline = sim
        .execute(
            RunConfig::new(&requests)
                .shards(cfg.shards)
                .seed(cfg.seed)
                .agenda(runner.agenda()),
        )
        .expect("the grid run has no faults to reject");
    let baseline_bytes = outcome_bytes(&baseline);

    let rows = runner.timed_map("recovery-cadence", &cfg.cadence_grid, |&cadence| {
        let supervisor =
            Supervisor::new(backoff, cadence).expect("zero cadences were rejected above");
        let sim = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible);
        let spec = RunSpec {
            shards: cfg.shards,
            threads: 1, // the runner parallelizes across cells
            seed: cfg.seed,
            agenda: runner.agenda(),
            partition: None,
        };
        let recovered = supervisor
            .run(&sim, &requests, &spec, &chaos)
            .expect("the seeded script targets only existing shards");
        let stats = *recovered.stats();
        let complete = matches!(recovered, Recovered::Complete { .. });
        let identical = complete && outcome_bytes(recovered.outcome()) == baseline_bytes;
        assert!(
            identical || !complete,
            "cadence {cadence}: a complete supervised run diverged from the \
             uninterrupted baseline — supervisor determinism is broken",
        );
        RecoveryRow {
            cadence,
            checkpoints: stats.checkpoints_taken,
            crashes_injected: stats.crashes_injected,
            restores: stats.restores,
            corrupt_rejected: stats.corrupt_rejected,
            replayed_sessions: stats.replayed_sessions,
            recovery_delay: stats.recovery_delay,
            complete,
            identical,
        }
    });

    Ok(RecoveryReport {
        config: cfg.clone(),
        rows,
        fold: baseline.fold,
    })
}

/// Plain-text rendering of a [`RecoveryReport`] for the CLI.
#[must_use]
pub fn render_recovery(report: &RecoveryReport) -> String {
    let cfg = &report.config;
    let mut out = String::new();
    out.push_str(&format!(
        "recovery study: {} at {} Mb/s, {} sessions on {} shard(s), {} seeded kill(s)\n",
        cfg.scheme.label(),
        cfg.bandwidth.value(),
        cfg.sessions,
        cfg.shards,
        cfg.kills,
    ));
    out.push_str(
        "cadence  checkpoints  crashes  restores  corrupt  replayed  delay(min)  identical\n",
    );
    for r in &report.rows {
        out.push_str(&format!(
            "{:<8} {:>11} {:>8} {:>9} {:>8} {:>9} {:>11.1}  {}\n",
            r.cadence,
            r.checkpoints,
            r.crashes_injected,
            r.restores,
            r.corrupt_rejected,
            r.replayed_sessions,
            r.recovery_delay.value(),
            if r.identical {
                "yes"
            } else if r.complete {
                "NO"
            } else {
                "partial"
            },
        ));
    }
    out.push_str(&format!(
        "baseline: {} sessions, mean latency {:.4} min\n",
        report.fold.sessions,
        report.fold.mean_latency.value(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_trades_checkpoints_for_replay() {
        let report =
            recovery_study(&RecoveryConfig::smoke(), &Runner::serial()).expect("smoke study runs");
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.fold.sessions, 2_000);
        for r in &report.rows {
            assert!(r.complete, "cadence {}: shards within budget", r.cadence);
            assert!(r.identical, "cadence {}: the flagship invariant", r.cadence);
            assert!(r.crashes_injected > 0, "the seeded script fires");
            assert!(r.checkpoints > 0);
        }
        // The trade the study exists to show: an eager cadence writes
        // more checkpoints and replays fewer sessions than a lazy one.
        let eager = &report.rows[0];
        let lazy = report.rows.last().unwrap();
        assert!(eager.checkpoints > lazy.checkpoints);
        assert!(eager.replayed_sessions <= lazy.replayed_sessions);
        let txt = render_recovery(&report);
        assert!(txt.contains("recovery study"));
        assert!(txt.contains("identical"));
    }

    #[test]
    fn report_is_invariant_to_threads_and_agenda() {
        let cfg = RecoveryConfig::smoke();
        let base = recovery_study(&cfg, &Runner::serial()).unwrap();
        for threads in [2usize, 4] {
            let runner = Runner::new(threads).with_agenda(sb_sim::AgendaKind::Wheel);
            let r = recovery_study(&cfg, &runner).unwrap();
            assert_eq!(r, base, "threads {threads} under the wheel agenda");
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                serde_json::to_string(&base).unwrap()
            );
        }
    }

    #[test]
    fn zero_cadence_is_a_typed_error() {
        let cfg = RecoveryConfig {
            cadence_grid: vec![10, 0],
            ..RecoveryConfig::smoke()
        };
        let err = recovery_study(&cfg, &Runner::serial()).unwrap_err();
        assert!(matches!(err, SchemeError::InvalidConfig { .. }));
        assert!(err.to_string().contains("cadence"));
    }
}
