//! The automated Pareto frontier across the scheme zoo.
//!
//! §5 argues SB's latency × client-I/O × buffer trade-off against its
//! baselines in prose; this module makes the argument executable. Every
//! scheme in the landscape — SB expanded over *all* candidate widths at
//! each operating point, the pyramids, staggered, FB, HB (delayed fix),
//! CTIFB and AQHB — is evaluated over a shared bandwidth × catalog grid,
//! twice per cell:
//!
//! * **analytically** — the Table-1 closed forms
//!   (latency, client I/O, buffer), and
//! * **empirically** — each scheme's plan executed under its own client
//!   model through [`sb_sim::system::SystemSim`], folded by the streaming
//!   [`sb_sim::sink::SessionSummary`] (worst latency, peak buffer,
//!   max concurrent streams).
//!
//! Pareto dominance is then computed in both spaces: a point is *on the
//! frontier* when no other scheme in the same cell is at least as good on
//! all three axes and strictly better on one. The paper's §6 claim —
//! "\[SB\] offers low access latency, requires small I/O bandwidth and
//! little storage space" — becomes the pinned assertion that SB widths
//! survive on the frontier at the paper's operating points while PPB
//! never does.
//!
//! The original (buggy) HB point is excluded by default — its `D/N`
//! latency claim was refuted by Pâris, Carter & Long, so advertising it
//! would put an infeasible point on the frontier. An explicit
//! [`FrontierConfig::include_buggy_hb`] opt-in adds it, and the simulated
//! axes then show the refutation: its sessions stall.
//!
//! ## Determinism
//!
//! The report is a pure function of [`FrontierConfig`]: arrivals come
//! from a splitmix-scrambled phase of the seed, every per-cell simulation
//! runs through [`sb_sim::run::RunConfig`] (whose outcome is byte-
//! identical across shard, thread and agenda choices, re-asserted here by
//! a proptest over random grids), and the runner's `timed_map` reassembles
//! parallel cells in index order. Timings go only to the manifest —
//! `BENCH_frontier.json` is byte-identical across
//! `--shards × --threads × --agenda`.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::scheme::BroadcastScheme;
use sb_core::series::Width;
use sb_core::Skyscraper;
use sb_pyramid::{AdaptiveQuasiHarmonic, HarmonicBroadcasting};
use sb_sim::trace::{ClientModel, CycleRecordingClient, PausingClient, RecordingClient};
use sb_sim::{AgendaKind, ClientPolicy, Request, RunConfig, SessionTrace, SystemSim, TraceSink};

use crate::lineup::SchemeId;
use crate::runner::Runner;

/// The frontier study's grid and workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierConfig {
    /// Server bandwidths to study, Mb/s.
    pub bandwidths: Vec<f64>,
    /// Catalog sizes `M` to study.
    pub catalogs: Vec<usize>,
    /// Simulated arrivals per cell.
    pub sessions: usize,
    /// Arrival horizon, minutes.
    pub horizon: Minutes,
    /// Workload seed (phase-scrambles the arrival grid).
    pub seed: u64,
    /// Include the original (refuted) HB point — see the module docs.
    pub include_buggy_hb: bool,
}

impl FrontierConfig {
    /// The full study: the paper's spotlight bandwidths at the paper's
    /// catalog and a doubled one.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            bandwidths: vec![200.0, 320.0, 450.0, 600.0],
            catalogs: vec![10, 20],
            sessions: 48,
            horizon: Minutes(30.0),
            seed: 0,
            include_buggy_hb: false,
        }
    }

    /// A single-cell smoke grid for CI.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            bandwidths: vec![320.0],
            catalogs: vec![10],
            sessions: 16,
            horizon: Minutes(12.0),
            seed: 0,
            include_buggy_hb: false,
        }
    }
}

/// One scheme at one grid cell: closed forms, simulated counterparts, and
/// frontier membership in both spaces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Scheme label.
    pub scheme: String,
    /// Analytic access latency, minutes.
    pub latency: f64,
    /// Analytic client I/O bandwidth, Mb/s.
    pub io_mbps: f64,
    /// Analytic client buffer, MBytes.
    pub buffer_mb: f64,
    /// Worst simulated startup latency, minutes.
    pub sim_worst_latency: f64,
    /// Worst simulated peak buffer, MBytes.
    pub sim_peak_buffer_mb: f64,
    /// Largest simulated number of concurrent reception streams.
    pub sim_max_streams: usize,
    /// Every simulated session met every playback deadline. `false` only
    /// for infeasible points, i.e. the opt-in buggy HB.
    pub sim_jitter_free: bool,
    /// On the Pareto frontier of the analytic
    /// latency × I/O × buffer space.
    pub on_frontier_analytic: bool,
    /// On the Pareto frontier of the simulated
    /// latency × streams × buffer space.
    pub on_frontier_sim: bool,
}

/// All feasible schemes at one bandwidth × catalog cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierCell {
    /// Server bandwidth `B`, Mb/s.
    pub bandwidth: f64,
    /// Catalog size `M`.
    pub num_videos: usize,
    /// Per-scheme points (infeasible schemes absent).
    pub points: Vec<FrontierPoint>,
}

/// The deterministic frontier artifact (`BENCH_frontier.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierReport {
    /// The grid and workload that produced the report.
    pub config: FrontierConfig,
    /// One cell per bandwidth × catalog pair, bandwidth-major.
    pub cells: Vec<FrontierCell>,
}

impl FrontierReport {
    /// The cell at `(bandwidth, num_videos)`, if in the grid.
    #[must_use]
    pub fn cell(&self, bandwidth: f64, num_videos: usize) -> Option<&FrontierCell> {
        self.cells
            .iter()
            .find(|c| c.bandwidth == bandwidth && c.num_videos == num_videos)
    }
}

/// The non-SB landscape ids swept in every cell (SB is expanded over its
/// per-cell candidate widths instead of the fixed paper widths).
fn baseline_ids() -> Vec<SchemeId> {
    vec![
        SchemeId::PbA,
        SchemeId::PbB,
        SchemeId::PpbA,
        SchemeId::PpbB,
        SchemeId::Staggered,
        SchemeId::Fast,
        SchemeId::Harmonic,
        SchemeId::Ctifb,
        SchemeId::Aqhb,
    ]
}

/// The client model that matches each scheme's reception discipline.
/// Feasibility must already have been established (`metrics(cfg)` Ok).
fn model_for(id: SchemeId, cfg: &SystemConfig) -> Box<dyn ClientModel> {
    match id {
        SchemeId::PbA | SchemeId::PbB => Box::new(ClientPolicy::PbEarliest),
        SchemeId::PpbA | SchemeId::PpbB => Box::new(PausingClient),
        SchemeId::Harmonic => Box::new(RecordingClient {
            playback_delay: HarmonicBroadcasting::delayed()
                .slot(cfg)
                .expect("feasibility established by metrics()"),
        }),
        SchemeId::Aqhb => Box::new(RecordingClient {
            playback_delay: AdaptiveQuasiHarmonic
                .slot(cfg)
                .expect("feasibility established by metrics()"),
        }),
        SchemeId::Ctifb => Box::new(CycleRecordingClient),
        _ => Box::new(ClientPolicy::LatestFeasible),
    }
}

/// The deterministic arrival grid: `sessions` arrivals uniform over the
/// horizon, phase-shifted by a splitmix scramble of the seed (seed 0
/// reproduces the legacy crosscheck phase), round-robin over the catalog.
fn arrivals(cfg: &FrontierConfig, num_videos: usize) -> Vec<Request> {
    let phase = if cfg.seed == 0 {
        0.31
    } else {
        let mut x = cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..cfg.sessions)
        .map(|i| Request {
            at: Minutes(cfg.horizon.value() * (i as f64 + phase) / cfg.sessions as f64),
            video: VideoId(i % num_videos),
        })
        .collect()
}

/// Evaluate one scheme in one cell: closed forms plus a simulated pass of
/// the cell's arrival stream under the scheme's own client model. `None`
/// where the scheme is infeasible.
fn evaluate_scheme(
    label: String,
    scheme: &dyn BroadcastScheme,
    model: &dyn ClientModel,
    sys: &SystemConfig,
    reqs: &[Request],
    shards: usize,
    agenda: AgendaKind,
) -> Option<FrontierPoint> {
    let metrics = scheme.metrics(sys).ok()?;
    let plan = scheme.plan(sys).ok()?;
    let sim = SystemSim::new(&plan, sys.display_rate, model);
    let mut probe = JitterProbe { ok: true };
    let out = sim
        .execute(
            RunConfig::new(reqs)
                .shards(shards)
                .threads(1)
                .agenda(agenda)
                .sink(&mut probe),
        )
        .expect("every catalog title is requested against its own plan");
    Some(FrontierPoint {
        scheme: label,
        latency: metrics.access_latency.value(),
        io_mbps: metrics.client_io_bandwidth.value(),
        buffer_mb: metrics.buffer_mbytes().value(),
        sim_worst_latency: out.fold.worst_latency.value(),
        sim_peak_buffer_mb: out.fold.worst_buffer.value() / 8.0,
        sim_max_streams: out.fold.max_streams,
        sim_jitter_free: probe.ok,
        on_frontier_analytic: false,
        on_frontier_sim: false,
    })
}

/// A sink that only checks deadlines: `true` while every folded session
/// plays back jitter-free.
struct JitterProbe {
    ok: bool,
}

impl TraceSink for JitterProbe {
    fn accept(&mut self, trace: &SessionTrace) {
        self.ok &= trace.is_jitter_free(1e-9);
    }
}

/// `true` when `q` Pareto-dominates `p` in a three-axis space: at least
/// as good everywhere (within tolerance), strictly better somewhere.
fn dominates3(q: &[f64; 3], p: &[f64; 3]) -> bool {
    q.iter().zip(p).all(|(a, b)| *a <= b + 1e-9) && q.iter().zip(p).any(|(a, b)| *a < b - 1e-9)
}

/// Mark both frontiers within one cell.
fn mark_frontiers(points: &mut [FrontierPoint]) {
    let analytic: Vec<[f64; 3]> = points
        .iter()
        .map(|p| [p.latency, p.io_mbps, p.buffer_mb])
        .collect();
    let sim: Vec<[f64; 3]> = points
        .iter()
        .map(|p| {
            [
                p.sim_worst_latency,
                p.sim_max_streams as f64,
                p.sim_peak_buffer_mb,
            ]
        })
        .collect();
    for i in 0..points.len() {
        points[i].on_frontier_analytic = !analytic
            .iter()
            .enumerate()
            .any(|(j, q)| j != i && dominates3(q, &analytic[i]));
        // A point that missed deadlines is infeasible: its simulated
        // numbers are not achievable, so it never makes the sim frontier.
        points[i].on_frontier_sim = points[i].sim_jitter_free
            && !sim
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates3(q, &sim[i]));
    }
}

/// Build one bandwidth × catalog cell.
fn build_cell(
    cfg: &FrontierConfig,
    bandwidth: f64,
    num_videos: usize,
    shards: usize,
    agenda: AgendaKind,
) -> FrontierCell {
    let mut sys = SystemConfig::paper_defaults(Mbps(bandwidth));
    sys.num_videos = num_videos;
    let reqs = arrivals(cfg, num_videos);
    let mut points = Vec::new();
    let k = (sys.channels_ratio().floor() as usize).min(sb_core::series::MAX_SEGMENTS);
    for w in sb_core::width::candidate_widths(k) {
        let scheme = Skyscraper::with_width(Width::Capped(w));
        let model = ClientPolicy::LatestFeasible;
        if let Some(p) = evaluate_scheme(
            format!("SB:W={w}"),
            &scheme,
            &model,
            &sys,
            &reqs,
            shards,
            agenda,
        ) {
            points.push(p);
        }
    }
    for id in baseline_ids() {
        let scheme = id.build();
        if scheme.metrics(&sys).is_err() {
            continue;
        }
        let model = model_for(id, &sys);
        if let Some(p) = evaluate_scheme(id.label(), &*scheme, &*model, &sys, &reqs, shards, agenda)
        {
            points.push(p);
        }
    }
    if cfg.include_buggy_hb {
        let scheme = HarmonicBroadcasting::original();
        let model = RecordingClient::default();
        if let Some(p) = evaluate_scheme(
            "HB".to_string(),
            &scheme,
            &model,
            &sys,
            &reqs,
            shards,
            agenda,
        ) {
            points.push(p);
        }
    }
    mark_frontiers(&mut points);
    FrontierCell {
        bandwidth,
        num_videos,
        points,
    }
}

/// Run the frontier study over the whole grid. Cells run in parallel on
/// `runner` (reassembled in grid order); each cell's simulation uses
/// `shards` shards and the runner's agenda backend. The report is
/// byte-identical for every `(shards, threads, agenda)` choice.
#[must_use]
pub fn frontier_report(cfg: &FrontierConfig, shards: usize, runner: &Runner) -> FrontierReport {
    let grid: Vec<(f64, usize)> = cfg
        .bandwidths
        .iter()
        .flat_map(|&b| cfg.catalogs.iter().map(move |&m| (b, m)))
        .collect();
    let agenda = runner.agenda();
    let cells = runner.timed_map("frontier", &grid, |&(b, m)| {
        build_cell(cfg, b, m, shards, agenda)
    });
    FrontierReport {
        config: cfg.clone(),
        cells,
    }
}

/// Plain-text rendering: one table per cell, frontier membership marked
/// `A` (analytic), `S` (simulated) or `AS`.
#[must_use]
pub fn render_frontier(report: &FrontierReport) -> String {
    let mut out = String::new();
    out.push_str("Pareto frontier: latency x client I/O x buffer\n");
    out.push_str("(frontier column: A = analytic space, S = simulated space)\n");
    for cell in &report.cells {
        out.push_str(&format!(
            "\nB = {} Mb/s, M = {} videos\n",
            cell.bandwidth, cell.num_videos
        ));
        out.push_str(&format!(
            "{:<12} {:>9} {:>8} {:>9} {:>9} {:>9} {:>7} {:>8}\n",
            "scheme", "lat(min)", "io(Mbps)", "buf(MB)", "simLat", "simBuf", "streams", "frontier"
        ));
        for p in &cell.points {
            let marker = match (p.on_frontier_analytic, p.on_frontier_sim) {
                (true, true) => "AS",
                (true, false) => "A",
                (false, true) => "S",
                (false, false) => "-",
            };
            out.push_str(&format!(
                "{:<12} {:>9.3} {:>8.2} {:>9.1} {:>9.3} {:>9.1} {:>7} {:>8}\n",
                p.scheme,
                p.latency,
                p.io_mbps,
                p.buffer_mb,
                p.sim_worst_latency,
                p.sim_peak_buffer_mb,
                p.sim_max_streams,
                marker
            ));
        }
        let survivors: Vec<&str> = cell
            .points
            .iter()
            .filter(|p| p.on_frontier_analytic)
            .map(|p| p.scheme.as_str())
            .collect();
        out.push_str(&format!("analytic frontier: {}\n", survivors.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn smoke_report(shards: usize, threads: usize, agenda: AgendaKind) -> FrontierReport {
        let runner = Runner::new(threads)
            .with_progress(false)
            .with_agenda(agenda);
        frontier_report(&FrontierConfig::smoke(), shards, &runner)
    }

    #[test]
    fn sb_on_the_frontier_at_the_paper_operating_point() {
        // §6's claim, as Pareto membership at B = 320, M = 10: at least
        // one SB width survives on both frontiers, and PPB never does.
        let report = smoke_report(1, 1, AgendaKind::Heap);
        let cell = report.cell(320.0, 10).unwrap();
        assert!(
            cell.points
                .iter()
                .any(|p| p.scheme.starts_with("SB:W=") && p.on_frontier_analytic),
            "no SB width on the analytic frontier"
        );
        assert!(
            cell.points
                .iter()
                .any(|p| p.scheme.starts_with("SB:W=") && p.on_frontier_sim),
            "no SB width on the simulated frontier"
        );
        for p in cell.points.iter().filter(|p| p.scheme.starts_with("PPB")) {
            assert!(!p.on_frontier_analytic, "{} on the frontier", p.scheme);
        }
        // The zoo is complete: both successors are present and feasible.
        for scheme in ["CTIFB", "AQHB", "FB", "HB:delayed", "STAG"] {
            assert!(
                cell.points.iter().any(|p| p.scheme == scheme),
                "{scheme} missing"
            );
        }
    }

    #[test]
    fn simulation_respects_the_closed_forms() {
        // The newly pinned schemes: simulated latency never exceeds the
        // analytic promise, and the phase-invariant buffer profiles land
        // exactly on their closed forms.
        let report = smoke_report(1, 1, AgendaKind::Heap);
        let cell = report.cell(320.0, 10).unwrap();
        for scheme in ["CTIFB", "AQHB", "FB", "STAG"] {
            let p = cell.points.iter().find(|p| p.scheme == scheme).unwrap();
            assert!(
                p.sim_worst_latency <= p.latency + 1e-6,
                "{scheme}: sim latency {} vs analytic {}",
                p.sim_worst_latency,
                p.latency
            );
            assert!(
                p.sim_peak_buffer_mb <= p.buffer_mb + 1e-6,
                "{scheme}: sim buffer {} vs analytic {}",
                p.sim_peak_buffer_mb,
                p.buffer_mb
            );
            assert!(p.sim_jitter_free, "{scheme} missed a deadline");
        }
        let ctifb = cell.points.iter().find(|p| p.scheme == "CTIFB").unwrap();
        assert!(
            (ctifb.sim_peak_buffer_mb - ctifb.buffer_mb).abs() < 1e-6 * ctifb.buffer_mb,
            "CTIFB sim peak {} must equal analytic {}",
            ctifb.sim_peak_buffer_mb,
            ctifb.buffer_mb
        );
    }

    #[test]
    fn buggy_hb_only_on_opt_in_and_visibly_infeasible() {
        let mut cfg = FrontierConfig::smoke();
        let runner = Runner::serial();
        let without = frontier_report(&cfg, 1, &runner);
        assert!(without.cells[0].points.iter().all(|p| p.scheme != "HB"));
        cfg.include_buggy_hb = true;
        let with = frontier_report(&cfg, 1, &runner);
        let hb = with.cells[0]
            .points
            .iter()
            .find(|p| p.scheme == "HB")
            .unwrap();
        // The refutation shows up in the simulated axes: some session
        // misses a playback deadline under the D/N latency claim.
        assert!(!hb.sim_jitter_free, "buggy HB should miss deadlines");
    }

    proptest! {
        // Two cases: each runs the full grid three times (once per knob
        // combination), and the heavy-K cells dominate the suite's
        // wall-clock; the verify.sh 6-way CLI diff covers the same
        // invariant at the paper grid.
        #![proptest_config(ProptestConfig::with_cases(2))]

        // The frontier artifact is byte-identical across shard, thread and
        // agenda knobs, for random grids — the CLI's 6-way diff gate, as a
        // property.
        #[test]
        fn report_is_invariant_to_knobs_over_random_grids(
            bw_mask in 1u8..8,
            cat_mask in 1u8..8,
            sessions in 4usize..10,
            seed in 0u64..1_000,
        ) {
            let all = [150.0, 320.0, 500.0];
            let bandwidths: Vec<f64> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| bw_mask & (1 << i) != 0)
                .map(|(_, &b)| b)
                .collect();
            let catalogs: Vec<usize> = [5usize, 10, 16]
                .iter()
                .enumerate()
                .filter(|(i, _)| cat_mask & (1 << i) != 0)
                .map(|(_, &m)| m)
                .collect();
            let cfg = FrontierConfig {
                bandwidths,
                catalogs,
                sessions,
                horizon: Minutes(10.0),
                seed,
                include_buggy_hb: false,
            };
            let base = serde_json::to_string(&frontier_report(
                &cfg, 1, &Runner::new(1).with_progress(false).with_agenda(AgendaKind::Heap),
            )).unwrap();
            for (shards, threads, agenda) in
                [(2usize, 2usize, AgendaKind::Wheel), (3, 2, AgendaKind::Heap)]
            {
                let other = serde_json::to_string(&frontier_report(
                    &cfg, shards,
                    &Runner::new(threads).with_progress(false).with_agenda(agenda),
                )).unwrap();
                prop_assert_eq!(&base, &other, "knobs ({}, {}, {:?})", shards, threads, agenda);
            }
        }
    }
}
