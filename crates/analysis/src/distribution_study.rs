//! The distributed-tier study: catalog placement, cross-server routing
//! and peer-assisted delivery, priced against the Viennot et al. bound.
//!
//! Viennot et al., *Scalable Distributed Video-on-Demand* (PAPERS.md),
//! bounds the server bandwidth a distributed VoD system needs once
//! clients contribute upload capacity: in the scalable regime the
//! servers only have to *inject* each title once, everything else can
//! travel client-to-client. The sharded core plus the metro scenario
//! pack simulate exactly that regime, so this study measures how close
//! practical placement policies get:
//!
//! 1. Each preset's scenario stream runs through the broadcast
//!    simulator **once**, region-sharded (`shards = regions` with the
//!    scenario's owning-shard table), lifting every session into a
//!    [`SessionRecord`] — the placement never changes the broadcast
//!    schedule, only who pays for it.
//! 2. Every [`PlacementPolicy`] × peer-assist combination is then priced
//!    by the pure [`route_catalog`] accounting pass: standing broadcast
//!    per hosting server, shared backbone relays for remote fetches
//!    (per-link capacity, whole-session rejection), and — with peer
//!    assist on — head-only server broadcast with trailing segments
//!    served peer-to-peer out of per-region uplink budgets.
//! 3. Savings are reported against the naive fully-replicated metro
//!    (`servers × Σ full(t)`) next to the source-once bound
//!    (`Σ display(t)`), so every cell carries both "what we saved" and
//!    "how far from the theoretical floor we stopped".
//!
//! Determinism contract, like every study here: the report and snapshot
//! are byte-identical for every `--shards × --threads × --agenda`. The
//! record pass fixes its own shard count (the region count); a flagship
//! pass re-runs the first preset at the caller's knobs and asserts the
//! lifted records are identical bytes.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::Result;
use sb_core::plan::VideoId;
use sb_metrics::Snapshot;
use sb_sim::distribution::{route_catalog, DistributionConfig, RouteOutcome, SessionRecord};
use sb_sim::system::{Request, SystemSim};
use sb_sim::trace::ClientModel;
use sb_sim::{RunConfig, TraceSink};
use sb_workload::placement::{Placement, PlacementPolicy};
use sb_workload::{MetroScenario, ScenarioPreset, ScenarioWorkload};

use crate::lineup::SchemeId;
use crate::runner::Runner;
use crate::scenario_study::model_for;

/// Parameters of the distribution study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionStudyConfig {
    /// The geometry presets measured, in report order.
    pub presets: Vec<ScenarioPreset>,
    /// The broadcast scheme whose reception schedule is priced.
    pub scheme: SchemeId,
    /// Placement policies in report order.
    pub policies: Vec<PlacementPolicy>,
    /// Broadcast bandwidth per catalog title, Mb/s (the scenario-study
    /// sizing convention).
    pub per_video_mbps: f64,
    /// Metro-wide arrival rate, requests per minute.
    pub rate: f64,
    /// Workload horizon.
    pub horizon: Minutes,
    /// Mean exponential viewer patience.
    pub mean_patience: Minutes,
    /// Capacity of each directed metro backbone link, Mb/s.
    pub backbone_mbps: f64,
    /// First trailing segment index (peer-assist hands segments
    /// `>= tail_from` to peers).
    pub tail_from: usize,
    /// Fraction of a region's access-class downlink its peers may spend
    /// uploading.
    pub uplink_fraction: f64,
    /// Seed for geometry, demand and arrival draws.
    pub seed: u64,
}

impl DistributionStudyConfig {
    /// The full metro grid: all three presets, SB at the flagship
    /// width, all four placement policies over a 600-minute evening.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            presets: vec![
                ScenarioPreset::Urban,
                ScenarioPreset::Rural,
                ScenarioPreset::Remote,
            ],
            scheme: SchemeId::Sb(Some(52)),
            policies: PlacementPolicy::all(),
            per_video_mbps: 30.0,
            rate: 6.0,
            horizon: Minutes(600.0),
            mean_patience: Minutes(45.0),
            backbone_mbps: 120.0,
            tail_from: 2,
            uplink_fraction: 0.5,
            seed: 17,
        }
    }

    /// The same shape at smoke scale for CI.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            rate: 4.0,
            horizon: Minutes(240.0),
            ..Self::paper_defaults()
        }
    }
}

/// One placement × peer-assist price tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCell {
    /// Placement policy label (`full` / `partitioned` / `hothead` /
    /// `proportional`).
    pub policy: String,
    /// Whether peers served trailing segments.
    pub peer_assist: bool,
    /// Titles stored per server under this placement.
    pub storage: Vec<usize>,
    /// The raw routing outcome.
    pub outcome: RouteOutcome,
    /// Total server bandwidth (standing broadcast + peak fallback),
    /// Mb/s.
    pub server_mbps: f64,
    /// Server bandwidth plus peak backbone, Mb/s.
    pub footprint_mbps: f64,
    /// Server-bandwidth savings vs the naive fully-replicated metro
    /// (`1 − server/naive`).
    pub savings_vs_naive: f64,
    /// Footprint savings vs the naive metro (`1 − footprint/naive`).
    pub footprint_savings: f64,
    /// How many multiples of the source-once bound the servers spend
    /// (`server / bound`; 1.0 would meet Viennot's floor).
    pub bound_multiple: f64,
}

/// Everything measured for one preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionPreset {
    /// Preset label.
    pub preset: String,
    /// Catalog size.
    pub titles: usize,
    /// Region (and server) count: one server shard per region.
    pub servers: usize,
    /// Sessions offered to every cell.
    pub sessions: usize,
    /// The naive fully-replicated broadcast metro, Mb/s.
    pub naive_mbps: f64,
    /// The source-once bound, Mb/s.
    pub bound_mbps: f64,
    /// Savings the bound itself promises (`1 − bound/naive`).
    pub bound_savings: f64,
    /// One cell per policy × peer-assist, policies outer, peer-off
    /// first.
    pub cells: Vec<PolicyCell>,
}

/// The whole study. Byte-identical for every `--shards`, `--threads`
/// and `--agenda` the invocation used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistributionReport {
    /// The configuration that produced this report.
    pub config: DistributionStudyConfig,
    /// One report per preset, in config order.
    pub presets: Vec<DistributionPreset>,
    /// Sessions in the flagship pass (the first preset's record run).
    pub total_sessions: usize,
    /// Events fired in the flagship pass, summed across its shards.
    pub total_events_fired: u64,
}

/// Streaming record lift: zips the trace stream (global engine order)
/// against the request metadata by cursor, exactly like the scenario
/// study's defection fold.
struct RecordFold<'a> {
    /// `(title, region)` per request, in slice order.
    meta: &'a [(usize, usize)],
    cursor: usize,
    records: Vec<SessionRecord>,
}

impl TraceSink for RecordFold<'_> {
    fn accept(&mut self, trace: &sb_sim::trace::SessionTrace) {
        let (title, region) = self.meta[self.cursor];
        self.cursor += 1;
        self.records
            .push(SessionRecord::from_trace(trace, title, region));
    }
}

/// Run one preset's scenario stream through the simulator and lift the
/// session records, at the given shard/thread/agenda knobs.
fn lift_records(
    cfg: &DistributionStudyConfig,
    scenario: &MetroScenario,
    knobs: (usize, usize, sb_sim::AgendaKind),
) -> Result<(Vec<SessionRecord>, usize, u64, Snapshot)> {
    let (shards, threads, agenda) = knobs;
    let titles = scenario.titles();
    let sys = SystemConfig {
        num_videos: titles,
        ..SystemConfig::paper_defaults(Mbps(cfg.per_video_mbps * titles as f64))
    };
    let plan = cfg.scheme.build().plan(&sys)?;
    let reqs = ScenarioWorkload {
        rate_per_minute: cfg.rate,
        horizon: cfg.horizon,
        mean_patience: cfg.mean_patience,
        diurnal: false,
        flash: None,
        seed: cfg.seed,
    }
    .generate(scenario);
    let meta: Vec<(usize, usize)> = reqs.iter().map(|r| (r.video, r.region)).collect();
    let sim_reqs: Vec<Request> = reqs
        .iter()
        .map(|r| Request {
            at: r.at,
            video: VideoId(r.video),
        })
        .collect();
    let map = scenario.shard_map(shards);
    let mut fold = RecordFold {
        meta: &meta,
        cursor: 0,
        records: Vec::with_capacity(sim_reqs.len()),
    };
    let model: Box<dyn ClientModel> = model_for(cfg.scheme);
    let sim = SystemSim::new(&plan, sys.display_rate, &*model);
    let out = sim
        .execute(
            RunConfig::new(&sim_reqs)
                .shards(shards)
                .threads(threads)
                .agenda(agenda)
                .partition(&map)
                .sink(&mut fold),
        )
        .expect("the scenario stream names only catalog titles");
    Ok((
        fold.records,
        out.fold.sessions,
        out.stats.fired,
        out.snapshot,
    ))
}

/// Price every policy × peer-assist combination over one preset's
/// records.
fn preset_cells(
    cfg: &DistributionStudyConfig,
    scenario: &MetroScenario,
    records: &[SessionRecord],
) -> DistributionPreset {
    let servers = scenario.regions.len();
    let uplinks: Vec<f64> = scenario
        .regions
        .iter()
        .map(|r| r.access.downlink().value() * cfg.uplink_fraction)
        .collect();
    let mut cells = Vec::with_capacity(cfg.policies.len() * 2);
    let mut naive = 0.0f64;
    let mut bound = 0.0f64;
    for &policy in &cfg.policies {
        let placement = Placement::build(policy, scenario, servers);
        for peer_assist in [false, true] {
            let dist = DistributionConfig {
                backbone_mbps: cfg.backbone_mbps,
                peer_assist,
                tail_from: cfg.tail_from,
                peer_uplink_mbps: uplinks.clone(),
            };
            let outcome = route_catalog(&dist, &placement, records);
            assert!(
                outcome.conservation_holds(),
                "peer-upload conservation violated: {} peer + {} server != {} consumed \
                 ({policy:?}, peer_assist {peer_assist})",
                outcome.peer_windows,
                outcome.server_windows(),
                outcome.consumed_windows,
            );
            naive = servers as f64 * outcome.sum_full_mbps;
            bound = outcome.bound_mbps;
            let server = outcome.server_mbps();
            let footprint = outcome.footprint_mbps();
            cells.push(PolicyCell {
                policy: policy.name().to_string(),
                peer_assist,
                storage: placement.storage_per_server(),
                server_mbps: server,
                footprint_mbps: footprint,
                savings_vs_naive: 1.0 - server / naive,
                footprint_savings: 1.0 - footprint / naive,
                bound_multiple: server / bound,
                outcome,
            });
        }
    }
    DistributionPreset {
        preset: scenario.config.preset.name().to_string(),
        titles: scenario.titles(),
        servers,
        sessions: records.len(),
        naive_mbps: naive,
        bound_mbps: bound,
        bound_savings: 1.0 - bound / naive,
        cells,
    }
}

/// Run the study. Presets run in parallel on `runner`; each record pass
/// fixes its shard count to the region count, and a flagship pass
/// re-lifts the first preset's records at `flagship_shards` with the
/// runner's thread pool and agenda, asserting identical bytes.
///
/// # Errors
/// Returns a planning error when `per_video_mbps` cannot sustain the
/// scheme.
///
/// # Panics
/// Panics when the flagship pass lifts different records than its
/// region-sharded cell (a `sim::shard` determinism violation) or when a
/// cell breaks the peer-upload conservation invariant.
pub fn distribution_study(
    cfg: &DistributionStudyConfig,
    flagship_shards: usize,
    runner: &Runner,
) -> Result<(DistributionReport, Snapshot)> {
    let mut scenarios = Vec::with_capacity(cfg.presets.len());
    for (pi, &preset) in cfg.presets.iter().enumerate() {
        let scenario = MetroScenario::generate(&preset.config(cfg.seed ^ (pi as u64) << 32));
        // Validate the plan once per preset before the parallel pass.
        let sys = SystemConfig {
            num_videos: scenario.titles(),
            ..SystemConfig::paper_defaults(Mbps(cfg.per_video_mbps * scenario.titles() as f64))
        };
        cfg.scheme.build().plan(&sys)?;
        scenarios.push(scenario);
    }

    let cells: Vec<(DistributionPreset, Vec<SessionRecord>)> =
        runner.timed_map("distribution-presets", &scenarios, |scenario| {
            let regions = scenario.regions.len();
            let (records, _, _, _) = lift_records(cfg, scenario, (regions, 1, runner.agenda()))
                .expect("plans validated before the parallel pass");
            let preset = preset_cells(cfg, scenario, &records);
            (preset, records)
        });

    // Flagship pass: the first preset again, at the caller's knobs. The
    // lifted records — not just an aggregate — must match bytes.
    let (flag_records, flag_sessions, flag_fired, snapshot) = lift_records(
        cfg,
        &scenarios[0],
        (flagship_shards, runner.threads(), runner.agenda()),
    )?;
    assert_eq!(
        cells[0].1, flag_records,
        "the flagship pass lifted different session records than its region-sharded \
         cell — sim::shard determinism is broken",
    );

    let report = DistributionReport {
        config: cfg.clone(),
        presets: cells.into_iter().map(|(p, _)| p).collect(),
        total_sessions: flag_sessions,
        total_events_fired: flag_fired,
    };
    Ok((report, snapshot))
}

/// Plain-text rendering of a [`DistributionReport`] for the CLI.
#[must_use]
pub fn render_distribution(report: &DistributionReport) -> String {
    let cfg = &report.config;
    let mut out = String::new();
    out.push_str(&format!(
        "distribution study: rate {}/min over {} min, backbone {} Mb/s per link, \
         tail from segment {}, uplink fraction {}\n",
        cfg.rate,
        cfg.horizon.value(),
        cfg.backbone_mbps,
        cfg.tail_from,
        cfg.uplink_fraction,
    ));
    for p in &report.presets {
        out.push_str(&format!(
            "\npreset {} ({} titles, {} servers, {} sessions): naive {:.1} Mb/s, \
             source-once bound {:.1} Mb/s ({:.1}% savings at the floor)\n",
            p.preset,
            p.titles,
            p.servers,
            p.sessions,
            p.naive_mbps,
            p.bound_mbps,
            p.bound_savings * 100.0,
        ));
        out.push_str(
            "placement     peers  server   footprint  savings  backbone  rejected  peer-share\n",
        );
        for c in &p.cells {
            let peer_share = if c.outcome.consumed_windows > 0 {
                c.outcome.peer_windows as f64 / c.outcome.consumed_windows as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<13} {:<6} {:>7.1} {:>9.1} {:>7.1}% {:>8.1} {:>9} {:>10.3}\n",
                c.policy,
                if c.peer_assist { "on" } else { "off" },
                c.server_mbps,
                c.footprint_mbps,
                c.savings_vs_naive * 100.0,
                c.outcome.backbone_peak_mbps,
                c.outcome.rejected,
                peer_share,
            ));
        }
    }
    out.push_str(&format!(
        "flagship: {} sessions, {} events fired\n",
        report.total_sessions, report.total_events_fired,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sb_sim::AgendaKind;

    /// Unit-test scale: the record pass is the expensive part in debug
    /// builds, so tests shrink the stream; `smoke()` stays the
    /// release-build CI configuration.
    fn tiny() -> DistributionStudyConfig {
        DistributionStudyConfig {
            rate: 1.5,
            horizon: Minutes(120.0),
            ..DistributionStudyConfig::paper_defaults()
        }
    }

    #[test]
    fn study_prices_every_policy_and_conserves_bandwidth() {
        let cfg = tiny();
        let (report, snap) = distribution_study(&cfg, 2, &Runner::serial()).expect("study runs");
        assert_eq!(report.presets.len(), 3);
        for p in &report.presets {
            assert_eq!(p.cells.len(), cfg.policies.len() * 2);
            assert!(p.sessions > 0);
            for c in &p.cells {
                assert!(c.outcome.conservation_holds());
                assert!(c.server_mbps > 0.0);
                assert!(c.footprint_mbps >= c.server_mbps);
                // Nobody beats the source-once floor.
                assert!(c.bound_multiple >= 1.0, "{} {}", c.policy, c.bound_multiple);
            }
            // Full replication without peers IS the naive metro.
            let full = &p.cells[0];
            assert_eq!(full.policy, "full");
            assert!(!full.peer_assist);
            assert!(full.savings_vs_naive.abs() < 1e-9);
            assert_eq!(full.outcome.remote_fetches, 0);
        }
        assert!(snap.counter_total("engine_events_total") > 0);
        let txt = render_distribution(&report);
        assert!(txt.contains("preset urban"));
        assert!(txt.contains("source-once bound"));
    }

    #[test]
    fn peer_assisted_hot_head_strictly_beats_full_partitioning() {
        // The acceptance pin: on the metro scenario pack, replicating
        // the hot head and letting peers carry trailing segments costs
        // strictly less server bandwidth *and* metro footprint than
        // partitioning every title.
        let cfg = tiny();
        let (report, _) = distribution_study(&cfg, 1, &Runner::serial()).unwrap();
        for p in &report.presets {
            let find = |policy: &str, peers: bool| {
                p.cells
                    .iter()
                    .find(|c| c.policy == policy && c.peer_assist == peers)
                    .expect("cell present")
            };
            let hothead_peer = find("hothead", true);
            let partitioned = find("partitioned", false);
            assert!(
                hothead_peer.server_mbps < partitioned.server_mbps,
                "preset {}: hothead+peer server {} vs partitioned {}",
                p.preset,
                hothead_peer.server_mbps,
                partitioned.server_mbps,
            );
            assert!(
                hothead_peer.footprint_mbps < partitioned.footprint_mbps,
                "preset {}: hothead+peer footprint {} vs partitioned {}",
                p.preset,
                hothead_peer.footprint_mbps,
                partitioned.footprint_mbps,
            );
        }
    }

    #[test]
    fn report_is_invariant_to_flagship_knobs() {
        let cfg = DistributionStudyConfig {
            presets: vec![ScenarioPreset::Urban],
            ..tiny()
        };
        let (base, base_snap) = distribution_study(&cfg, 1, &Runner::serial()).unwrap();
        for (shards, threads, agenda) in [(2, 4, AgendaKind::Heap), (4, 2, AgendaKind::Wheel)] {
            let (r, s) =
                distribution_study(&cfg, shards, &Runner::new(threads).with_agenda(agenda))
                    .unwrap();
            assert_eq!(r, base, "flagship shards {shards}, threads {threads}");
            assert_eq!(s, base_snap);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                serde_json::to_string(&base).unwrap()
            );
        }
    }
}
