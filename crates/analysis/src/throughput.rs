//! Throughput benchmark of the streaming simulation core.
//!
//! Two halves, both deterministic:
//!
//! * **System half** — for every scheme in the lineup, a fixed arrival
//!   grid is driven through [`SystemSim`] on the streaming
//!   ([`sb_sim::StreamingFold`]) path, and the engine's lifetime
//!   [`EngineStats`] are captured: events scheduled / fired /
//!   cancelled, the agenda's high-water mark, and how many compactions
//!   the lazy-cancellation purge performed. Rates are reported per
//!   *simulated* minute, so the cells are byte-identical across thread
//!   counts and machines.
//! * **Churn half** — a pure engine stress: a ring of live events is
//!   rolled through tens of thousands of cancellations, pinning the
//!   compaction invariant that the agenda stays within `2 × live +
//!   compaction floor` no matter how many events die. This is the
//!   regression harness for the unbounded-agenda bug the compaction
//!   fix removed.
//!
//! Wall-clock throughput (sessions/sec, events/sec) is inherently
//! machine- and thread-dependent, so it never enters the report: the
//! binaries time the study themselves and print wall rates to stderr,
//! keeping `BENCH_throughput.json` diffable across `--threads` counts
//! (the determinism gate `scripts/verify.sh` enforces).

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes, Ticks};

use sb_core::config::SystemConfig;
use sb_core::error::Result;
use sb_core::plan::VideoId;
use sb_metrics::Snapshot;
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::trace::{ClientModel, PausingClient, RecordingClient};
use sb_sim::{AgendaKind, Engine, EngineStats, RunConfig, SessionSummary};

use crate::lineup::SchemeId;
use crate::runner::Runner;

/// Parameters of the throughput study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputConfig {
    /// Server bandwidth the plans are built against.
    pub bandwidth: Mbps,
    /// Schemes under study; infeasible (scheme, bandwidth) cells are
    /// skipped, not errors.
    pub schemes: Vec<SchemeId>,
    /// Arrival-grid size per cell.
    pub sessions: usize,
    /// Arrivals are spread over `[0, horizon)`.
    pub horizon: Minutes,
    /// Videos the requests cycle through (must not exceed the catalog).
    pub videos: usize,
    /// Arrival-phase seed (same splitmix scramble as the crosscheck).
    pub seed: u64,
    /// Live-event ring size of the churn half.
    pub churn_live: usize,
    /// Cancellations the churn half performs (the issue floor is 10⁴).
    pub churn_cancels: u64,
}

impl ThroughputConfig {
    /// The default grid: the paper lineup's simulable schemes at the
    /// flagship bandwidth, and a churn half well past the 10⁴-cancel
    /// regression floor.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            bandwidth: Mbps(320.0),
            schemes: vec![
                SchemeId::Sb(Some(52)),
                SchemeId::PbA,
                SchemeId::PpbA,
                SchemeId::Staggered,
            ],
            sessions: 300,
            horizon: Minutes(200.0),
            videos: 10,
            seed: 17,
            churn_live: 128,
            churn_cancels: 40_000,
        }
    }

    /// A tiny grid for smoke tests and CI: two schemes, few sessions,
    /// churn still past the 10⁴ floor.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            schemes: vec![SchemeId::Sb(Some(52)), SchemeId::Staggered],
            sessions: 60,
            horizon: Minutes(90.0),
            churn_cancels: 12_000,
            ..Self::paper_defaults()
        }
    }
}

/// One scheme's cell: streaming-path population statistics plus the
/// engine's agenda accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputCell {
    /// Scheme label.
    pub scheme: String,
    /// Sessions driven through the simulator.
    pub sessions: usize,
    /// The engine's lifetime agenda counters for this run.
    pub engine: EngineStats,
    /// Simulated span the rates below are normalized by: the arrival
    /// horizon plus one video length (every session has finished by
    /// then).
    pub sim_minutes: f64,
    /// Sessions served per simulated minute.
    pub sessions_per_sim_minute: f64,
    /// Engine events fired per simulated minute.
    pub events_per_sim_minute: f64,
    /// The streaming fold's population summary.
    pub summary: SessionSummary,
}

/// The churn half's outcome: the compaction invariant, measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnReport {
    /// Live events kept in flight throughout.
    pub live_target: usize,
    /// Cancellations performed.
    pub cancellations: u64,
    /// The engine's lifetime counters after the drain.
    pub engine: EngineStats,
    /// The bound the agenda must stay within: `2 × live_target +
    /// compaction floor` (see `sb_sim::engine`).
    pub agenda_bound: u64,
}

impl ChurnReport {
    /// Did the agenda stay within its bound? (Also pinned by tests; the
    /// field lets the JSON artifact carry its own verdict.)
    #[must_use]
    pub fn bounded(&self) -> bool {
        self.engine.peak_agenda <= self.agenda_bound
    }
}

/// The whole study: per-scheme cells plus the engine churn stress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// The configuration that produced this report.
    pub config: ThroughputConfig,
    /// One cell per feasible scheme, in config order.
    pub cells: Vec<ThroughputCell>,
    /// The churn half.
    pub churn: ChurnReport,
    /// Sessions across all cells.
    pub total_sessions: usize,
    /// Engine events fired across all cells (excluding the churn half).
    pub total_events_fired: u64,
}

/// The client model each scheme's receivers follow (the same mapping the
/// fault study uses).
fn model_for(id: SchemeId) -> Box<dyn ClientModel> {
    match id {
        SchemeId::PbA | SchemeId::PbB => Box::new(ClientPolicy::PbEarliest),
        SchemeId::PpbA | SchemeId::PpbB => Box::new(PausingClient),
        SchemeId::Harmonic => Box::new(RecordingClient::default()),
        _ => Box::new(ClientPolicy::LatestFeasible),
    }
}

/// Deterministic arrival-phase fraction in `(0, 1)` from a seed
/// (splitmix-style scramble; the same rule the crosscheck uses).
fn phase_of(seed: u64) -> f64 {
    if seed == 0 {
        return 0.31;
    }
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn run_cell(
    cfg: &ThroughputConfig,
    id: SchemeId,
    agenda: AgendaKind,
) -> Option<(ThroughputCell, Snapshot)> {
    let sys = SystemConfig::paper_defaults(cfg.bandwidth);
    let plan = id.build().plan(&sys).ok()?;
    let videos = cfg.videos.min(plan.num_videos().max(1));
    let phase = phase_of(cfg.seed);
    let requests: Vec<Request> = (0..cfg.sessions)
        .map(|i| Request {
            at: Minutes(cfg.horizon.value() * (i as f64 + phase) / cfg.sessions as f64),
            video: VideoId(i % videos),
        })
        .collect();

    let sim = SystemSim::new(&plan, sys.display_rate, model_for(id));
    let out = sim.execute(RunConfig::new(&requests).agenda(agenda)).ok()?;
    let summary = out.fold;
    let engine = out.stats;

    let sim_minutes = cfg.horizon.value() + sys.video_length.value();
    Some((
        ThroughputCell {
            scheme: id.label(),
            sessions: summary.sessions,
            engine,
            sim_minutes,
            sessions_per_sim_minute: summary.sessions as f64 / sim_minutes,
            events_per_sim_minute: engine.fired as f64 / sim_minutes,
            summary,
        },
        out.snapshot,
    ))
}

/// The churn half: keep `live_target` events in flight, cancel-and-
/// replace `cancellations` times, then drain. Deterministic; its
/// [`EngineStats`] land in the JSON artifact so the agenda bound is
/// visible outside the test suite.
#[must_use]
pub fn agenda_churn(live_target: usize, cancellations: u64) -> ChurnReport {
    agenda_churn_on(AgendaKind::Heap, live_target, cancellations)
}

/// [`agenda_churn`] on an explicit engine backend. The compaction purge
/// lives in the engine, above the agenda, so the bound holds — and the
/// serialized report is identical — for heap and wheel alike.
#[must_use]
pub fn agenda_churn_on(agenda: AgendaKind, live_target: usize, cancellations: u64) -> ChurnReport {
    // The compaction floor below which the engine never purges; keep in
    // sync with `sb_sim::engine::COMPACT_FLOOR` (the churn test there
    // pins the same bound).
    const COMPACT_FLOOR: u64 = 32;
    let mut eng: Engine<u64> = Engine::with_agenda(agenda);
    let far = 1_000_000_000u64;
    let mut ring: std::collections::VecDeque<_> = (0..live_target as u64)
        .map(|i| eng.schedule_at(Ticks(far + i), i))
        .collect();
    for i in 0..cancellations {
        if let Some(id) = ring.pop_front() {
            eng.cancel(id);
        }
        ring.push_back(eng.schedule_at(Ticks(far + live_target as u64 + i), i));
    }
    eng.run(|_, _, _| {});
    ChurnReport {
        live_target,
        cancellations,
        engine: eng.stats(),
        agenda_bound: 2 * live_target as u64 + COMPACT_FLOOR,
    }
}

/// Run the study. Cells run in parallel on `runner` and merge in grid
/// order, so report and snapshot are byte-identical for every thread
/// count.
///
/// # Errors
/// Currently infallible in practice (infeasible cells are skipped); the
/// `Result` mirrors the other studies so callers treat it uniformly.
pub fn throughput_study(
    cfg: &ThroughputConfig,
    runner: &Runner,
) -> Result<(ThroughputReport, Snapshot)> {
    let cells: Vec<Option<(ThroughputCell, Snapshot)>> =
        runner.timed_map("throughput-grid", &cfg.schemes, |&id| {
            run_cell(cfg, id, runner.agenda())
        });

    let churn = agenda_churn_on(runner.agenda(), cfg.churn_live, cfg.churn_cancels);

    let mut snapshot = Snapshot::default();
    let mut out = Vec::new();
    for cell in cells.into_iter().flatten() {
        snapshot.merge(&cell.1);
        out.push(cell.0);
    }
    let total_sessions = out.iter().map(|c| c.sessions).sum();
    let total_events_fired = out.iter().map(|c| c.engine.fired).sum();
    Ok((
        ThroughputReport {
            config: cfg.clone(),
            cells: out,
            churn,
            total_sessions,
            total_events_fired,
        },
        snapshot,
    ))
}

/// Plain-text rendering of a [`ThroughputReport`] for the CLI.
#[must_use]
pub fn render_throughput(report: &ThroughputReport) -> String {
    let cfg = &report.config;
    let mut out = String::new();
    out.push_str(&format!(
        "throughput study: {} Mb/s, {} sessions/cell over {} min, {} videos\n",
        cfg.bandwidth.value(),
        cfg.sessions,
        cfg.horizon.value(),
        cfg.videos,
    ));
    out.push_str(
        "scheme     sessions  scheduled     fired  cancelled  peak-agenda  compact  sess/sim-min\n",
    );
    for c in &report.cells {
        out.push_str(&format!(
            "{:<10} {:>8} {:>10} {:>9} {:>10} {:>12} {:>8} {:>13.4}\n",
            c.scheme,
            c.sessions,
            c.engine.scheduled,
            c.engine.fired,
            c.engine.cancelled,
            c.engine.peak_agenda,
            c.engine.compactions,
            c.sessions_per_sim_minute,
        ));
    }
    let ch = &report.churn;
    out.push_str(&format!(
        "\nagenda churn: {} live, {} cancellations -> peak agenda {} (bound {}, {}), \
         {} compactions\n",
        ch.live_target,
        ch.cancellations,
        ch.engine.peak_agenda,
        ch.agenda_bound,
        if ch.bounded() { "bounded" } else { "EXCEEDED" },
        ch.engine.compactions,
    ));
    out.push_str(&format!(
        "totals: {} sessions, {} events fired\n",
        report.total_sessions, report.total_events_fired,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_runs_and_is_conserved() {
        let (report, snap) = throughput_study(&ThroughputConfig::smoke(), &Runner::serial())
            .expect("smoke study runs");
        assert_eq!(report.cells.len(), 2);
        for c in &report.cells {
            assert_eq!(c.sessions, 60);
            // The engine's conservation law, visible from the outside:
            // every scheduled event either fired or was cancelled (the
            // drain leaves nothing pending).
            assert_eq!(c.engine.scheduled, c.engine.fired + c.engine.cancelled);
            assert!(c.sessions_per_sim_minute > 0.0);
            assert!(c.events_per_sim_minute > 0.0);
        }
        assert_eq!(report.total_sessions, 120);
        assert!(snap.counter_total("engine_events_total") > 0);
        let txt = render_throughput(&report);
        assert!(txt.contains("agenda churn"));
    }

    #[test]
    fn churn_half_stays_bounded_past_the_regression_floor() {
        let report = agenda_churn(128, 40_000);
        assert!(report.cancellations >= 10_000, "issue floor");
        assert_eq!(report.engine.cancelled, 40_000);
        assert!(
            report.bounded(),
            "peak agenda {} exceeded bound {}",
            report.engine.peak_agenda,
            report.agenda_bound
        );
        assert!(report.engine.compactions > 0, "the purge must have run");
        assert_eq!(
            report.engine.scheduled,
            report.engine.fired + report.engine.cancelled
        );
    }

    #[test]
    fn wheel_study_serializes_identically_to_heap() {
        // In-memory reports differ only in the non-serialized wheel
        // diagnostics, so byte identity is the contract to pin here.
        let cfg = ThroughputConfig::smoke();
        let (heap, h_snap) = throughput_study(&cfg, &Runner::serial()).unwrap();
        let wheel_runner = Runner::serial().with_agenda(AgendaKind::Wheel);
        let (wheel, w_snap) = throughput_study(&cfg, &wheel_runner).unwrap();
        assert_eq!(
            serde_json::to_string(&heap).unwrap(),
            serde_json::to_string(&wheel).unwrap()
        );
        assert_eq!(h_snap, w_snap);
        assert!(wheel.churn.bounded(), "compaction must bound the wheel too");
    }

    #[test]
    fn parallel_study_is_bit_identical_to_serial() {
        let cfg = ThroughputConfig::smoke();
        let (serial, s_snap) = throughput_study(&cfg, &Runner::serial()).unwrap();
        let (par, p_snap) = throughput_study(&cfg, &Runner::new(4)).unwrap();
        assert_eq!(serial, par);
        assert_eq!(s_snap, p_snap);
        assert_eq!(
            serde_json::to_string(&serial).unwrap(),
            serde_json::to_string(&par).unwrap()
        );
    }
}
