//! The bandwidth sweep underlying Figures 5–8.
//!
//! §5.1: "we varied the network-I/O bandwidth from 100 Mbits/sec to 600
//! Mbits/sec" — PB/PPB don't work below ≈90 Mb/s, and 600 is "large enough
//! to show the trends". Each sweep row evaluates every scheme in the
//! lineup at one bandwidth; schemes that are infeasible there (α ≤ 1 etc.)
//! simply have no entry, exactly like a missing point on the paper's
//! curves.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::scheme::SchemeMetrics;
use sb_pyramid::{PermutationPyramid, PyramidBroadcasting};

use crate::lineup::SchemeId;
use crate::runner::{run_sweep, Experiment, Runner};

/// Resolved design parameters, where the scheme has them (Figure 5's
/// subject matter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignParams {
    /// Fragments / channels per video.
    pub k: usize,
    /// PPB's replication degree.
    pub p: Option<usize>,
    /// The pyramids' geometric factor.
    pub alpha: Option<f64>,
}

/// One (scheme, bandwidth) evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemePoint {
    /// The scheme.
    pub id: SchemeId,
    /// Table-1 metrics.
    pub metrics: SchemeMetrics,
    /// Table-2 parameters.
    pub params: DesignParams,
}

/// All feasible schemes evaluated at one server bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Server bandwidth `B`.
    pub bandwidth: Mbps,
    /// Per-scheme results (infeasible schemes absent).
    pub points: Vec<SchemePoint>,
}

impl SweepRow {
    /// The entry for one scheme, if feasible at this bandwidth.
    #[must_use]
    pub fn get(&self, id: SchemeId) -> Option<&SchemePoint> {
        self.points.iter().find(|p| p.id == id)
    }
}

/// Evaluate one scheme at one configuration.
#[must_use]
pub fn evaluate(id: SchemeId, cfg: &SystemConfig) -> Option<SchemePoint> {
    let scheme = id.build();
    let metrics = scheme.metrics(cfg).ok()?;
    let params = match id {
        SchemeId::Sb(_) => DesignParams {
            k: (cfg.channels_ratio().floor() as usize).min(sb_core::series::MAX_SEGMENTS),
            p: None,
            alpha: None,
        },
        SchemeId::PbA | SchemeId::PbB => {
            let v = if id == SchemeId::PbA {
                PyramidBroadcasting::a()
            } else {
                PyramidBroadcasting::b()
            };
            let p = v.params(cfg).ok()?;
            DesignParams {
                k: p.k,
                p: None,
                alpha: Some(p.alpha),
            }
        }
        SchemeId::PpbA | SchemeId::PpbB => {
            let v = if id == SchemeId::PpbA {
                PermutationPyramid::a()
            } else {
                PermutationPyramid::b()
            };
            let p = v.params(cfg).ok()?;
            DesignParams {
                k: p.k,
                p: Some(p.p),
                alpha: Some(p.alpha),
            }
        }
        SchemeId::Staggered => DesignParams {
            k: cfg.channels_ratio().floor() as usize,
            p: None,
            alpha: None,
        },
        SchemeId::Fast => DesignParams {
            k: sb_pyramid::FastBroadcasting.channels_per_video(cfg).ok()?,
            p: None,
            alpha: None,
        },
        SchemeId::Harmonic => DesignParams {
            k: sb_pyramid::HarmonicBroadcasting::delayed()
                .slots(cfg)
                .ok()?,
            p: None,
            alpha: None,
        },
        SchemeId::Ctifb => DesignParams {
            k: sb_pyramid::Ctifb.channels_per_video(cfg).ok()?,
            p: None,
            alpha: None,
        },
        SchemeId::Aqhb => {
            // K = slots; P doubles as the subslot granularity m.
            let p = sb_pyramid::AdaptiveQuasiHarmonic.params(cfg).ok()?;
            DesignParams {
                k: p.n,
                p: Some(p.m),
                alpha: None,
            }
        }
    };
    Some(SchemePoint {
        id,
        metrics,
        params,
    })
}

/// Sweep the lineup across `[from, to]` in steps of `step` Mb/s, with the
/// paper's M/D/b defaults.
///
/// # Panics
/// Panics on a degenerate range or step.
#[deprecated(
    note = "pre-`execute(RunConfig)` serial helper — use `sweep_bandwidth_with` with an \
            explicit `Runner`, or build an `Experiment` and call `runner::run_sweep`"
)]
#[must_use]
pub fn sweep_bandwidth(ids: &[SchemeId], from: f64, to: f64, step: f64) -> Vec<SweepRow> {
    sweep_bandwidth_with(ids, from, to, step, &Runner::serial())
}

/// [`sweep_bandwidth`] on an explicit [`Runner`] — bandwidths evaluated in
/// parallel, output identical to the serial path.
///
/// # Panics
/// Panics on a degenerate range or step.
#[must_use]
pub fn sweep_bandwidth_with(
    ids: &[SchemeId],
    from: f64,
    to: f64,
    step: f64,
    runner: &Runner,
) -> Vec<SweepRow> {
    let exp = Experiment::over_range("sweep", ids.to_vec(), from, to, step);
    run_sweep(&exp, runner)
}

/// The paper's sweep: 100–600 Mb/s in 20 Mb/s steps.
#[deprecated(
    note = "pre-`execute(RunConfig)` serial helper — use `paper_sweep_with` with an \
            explicit `Runner`"
)]
#[must_use]
pub fn paper_sweep(ids: &[SchemeId]) -> Vec<SweepRow> {
    sweep_bandwidth_with(ids, 100.0, 600.0, 20.0, &Runner::serial())
}

/// [`paper_sweep`] on an explicit [`Runner`].
#[must_use]
pub fn paper_sweep_with(ids: &[SchemeId], runner: &Runner) -> Vec<SweepRow> {
    sweep_bandwidth_with(ids, 100.0, 600.0, 20.0, runner)
}

/// Find the smallest swept bandwidth at which `id` reaches an access
/// latency at or below `target` — the "where do curves cross a threshold"
/// readings §5.3 makes.
#[must_use]
pub fn latency_crossover(rows: &[SweepRow], id: SchemeId, target: Minutes) -> Option<Mbps> {
    rows.iter()
        .find(|r| {
            r.get(id)
                .is_some_and(|p| p.metrics.access_latency <= target)
        })
        .map(|r| r.bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineup::{extended_lineup, paper_lineup};

    #[test]
    fn sweep_covers_the_paper_range() {
        let rows = paper_sweep_with(&paper_lineup(), &Runner::serial());
        assert_eq!(rows.len(), 26); // 100, 120, …, 600
        assert!(rows[0].bandwidth.approx_eq(Mbps(100.0), 1e-9));
        assert!(rows[25].bandwidth.approx_eq(Mbps(600.0), 1e-9));
    }

    #[test]
    fn all_schemes_feasible_at_large_b() {
        let rows = paper_sweep_with(&extended_lineup(), &Runner::serial());
        let last = rows.last().unwrap();
        assert_eq!(last.points.len(), 10, "all 10 schemes at 600 Mb/s");
    }

    #[test]
    fn sb_feasible_across_entire_range() {
        let rows = paper_sweep_with(&paper_lineup(), &Runner::serial());
        for r in &rows {
            for w in crate::lineup::PAPER_WIDTHS {
                assert!(
                    r.get(SchemeId::Sb(Some(w))).is_some(),
                    "SB W={w} missing at {}",
                    r.bandwidth
                );
            }
        }
    }

    #[test]
    fn figure7_ppb_crossover_at_300() {
        // §5.3's reading of Figure 7: PPB needs ≥ 300 Mb/s for 0.5 min.
        let rows = paper_sweep_with(&paper_lineup(), &Runner::serial());
        let cross = latency_crossover(&rows, SchemeId::PpbA, Minutes(0.5)).unwrap();
        assert!(
            (cross.value() - 300.0).abs() <= 20.0,
            "PPB:a crosses 0.5 min at {cross}"
        );
        // PB crosses far earlier…
        let pb = latency_crossover(&rows, SchemeId::PbA, Minutes(0.5)).unwrap();
        assert!(pb.value() <= 240.0, "PB:a crosses at {pb}");
        // …and so does SB with a large width.
        let sb = latency_crossover(&rows, SchemeId::Sb(Some(1705)), Minutes(0.5)).unwrap();
        assert!(sb.value() <= 220.0, "SB W=1705 crosses at {sb}");
    }

    #[test]
    fn pb_k_grows_unbounded_ppb_k_capped() {
        // §2: "PPB … the access latency and storage requirement will
        // eventually improve only linearly as B increases. As a comparison,
        // the original PB scheme does not constrain the value of K."
        let rows = sweep_bandwidth_with(&paper_lineup(), 600.0, 3000.0, 300.0, &Runner::serial());
        let last = rows.last().unwrap();
        assert!(last.get(SchemeId::PbA).unwrap().params.k > 60);
        assert_eq!(last.get(SchemeId::PpbA).unwrap().params.k, 7);
    }

    #[test]
    fn params_match_table2_spot_checks() {
        let cfg = SystemConfig::paper_defaults(Mbps(320.0));
        let ppb_b = evaluate(SchemeId::PpbB, &cfg).unwrap();
        assert_eq!(ppb_b.params.k, 7);
        assert_eq!(ppb_b.params.p, Some(2));
        assert!((ppb_b.params.alpha.unwrap() - 1.0476).abs() < 0.01);
        let sb = evaluate(SchemeId::Sb(Some(52)), &cfg).unwrap();
        assert_eq!(sb.params.k, 21);
    }
}
