//! Analytic-vs-simulated cross-validation.
//!
//! Every number in the paper's figures comes from a closed form. For each
//! scheme we also *run* the plan against simulated clients and compare:
//! the empirical worst latency and peak buffer over an arrival-phase grid
//! must sit at (and never above) the analytic values. `EXPERIMENTS.md`'s
//! paper-vs-measured table is generated from these reports.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::plan::VideoId;
use sb_core::scheme::SchemeMetrics;
use sb_metrics::{NullRecorder, Recorder};
use sb_sim::policy::{schedule_client, ClientPolicy};

use crate::lineup::SchemeId;

/// Analytic vs empirical numbers for one (scheme, bandwidth) point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossCheck {
    /// Scheme label.
    pub scheme: String,
    /// Server bandwidth (Mb/s).
    pub bandwidth: f64,
    /// The closed-form metrics.
    pub analytic: SchemeMetrics,
    /// Worst observed startup latency (minutes).
    pub sim_worst_latency: f64,
    /// Worst observed peak buffer (Mbits).
    pub sim_peak_buffer: f64,
    /// Largest observed number of concurrent reception streams.
    pub sim_max_streams: usize,
    /// Arrival samples evaluated.
    pub samples: usize,
}

impl CrossCheck {
    /// Empirical latency / analytic latency (should be ≤ 1, near 1 on a
    /// fine grid).
    #[must_use]
    pub fn latency_ratio(&self) -> f64 {
        self.sim_worst_latency / self.analytic.access_latency.value()
    }

    /// Empirical buffer / analytic buffer.
    #[must_use]
    pub fn buffer_ratio(&self) -> f64 {
        if self.analytic.buffer_requirement.value() <= 0.0 {
            if self.sim_peak_buffer <= 1e-6 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.sim_peak_buffer / self.analytic.buffer_requirement.value()
        }
    }
}

/// The client policy each scheme's receivers follow.
#[must_use]
pub fn policy_for(id: SchemeId) -> ClientPolicy {
    match id {
        SchemeId::PbA | SchemeId::PbB => ClientPolicy::PbEarliest,
        _ => ClientPolicy::LatestFeasible,
    }
}

/// Run the cross-check for one scheme at one bandwidth, over `samples`
/// arrivals uniform in `[0, horizon)`.
///
/// Returns `None` where the scheme is infeasible.
#[deprecated(
    note = "pre-`execute(RunConfig)` helper — use `crosscheck_seeded` (seed 0 reproduces \
            this grid), or build an `Experiment` and call `runner::run_crosscheck`"
)]
#[must_use]
pub fn crosscheck(
    id: SchemeId,
    bandwidth: Mbps,
    horizon: Minutes,
    samples: usize,
) -> Option<CrossCheck> {
    crosscheck_seeded(id, bandwidth, horizon, samples, 0)
}

/// [`crosscheck`] with a seeded arrival-phase offset: the workload-seed
/// axis of [`crate::runner::Experiment`]. Seed 0 reproduces the legacy
/// fixed grid; any other seed shifts every arrival by a deterministic
/// fraction of the grid step, probing different broadcast phases.
#[must_use]
pub fn crosscheck_seeded(
    id: SchemeId,
    bandwidth: Mbps,
    horizon: Minutes,
    samples: usize,
    seed: u64,
) -> Option<CrossCheck> {
    crosscheck_seeded_recorded(id, bandwidth, horizon, samples, seed, &mut NullRecorder)
}

/// [`crosscheck_seeded`] recording per-sample series into `rec`:
///
/// * `crosscheck_latency_minutes{scheme, bandwidth}` — startup-latency
///   histogram over the arrival grid,
/// * `crosscheck_peak_buffer_mbits{scheme, bandwidth}` — high-water
///   gauge of the per-client peak buffer,
/// * `crosscheck_cells_total{feasible}` — cell feasibility counter.
///
/// The recording is observational: the returned [`CrossCheck`] is
/// byte-identical to the unrecorded path.
#[must_use]
pub fn crosscheck_seeded_recorded(
    id: SchemeId,
    bandwidth: Mbps,
    horizon: Minutes,
    samples: usize,
    seed: u64,
    rec: &mut dyn Recorder,
) -> Option<CrossCheck> {
    let cfg = SystemConfig::paper_defaults(bandwidth);
    let scheme = id.build();
    let (analytic, plan) = match (scheme.metrics(&cfg), scheme.plan(&cfg)) {
        (Ok(m), Ok(p)) => {
            rec.incr("crosscheck_cells_total", &[("feasible", "true")], 1);
            (m, p)
        }
        _ => {
            rec.incr("crosscheck_cells_total", &[("feasible", "false")], 1);
            return None;
        }
    };
    let policy = policy_for(id);
    let scheme_label = id.label();
    let bw_label = format!("{}", bandwidth.value());
    let cell = [
        ("scheme", scheme_label.as_str()),
        ("bandwidth", bw_label.as_str()),
    ];
    let phase = if seed == 0 {
        0.31
    } else {
        // splitmix-style scramble to a fraction in (0, 1)
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (x >> 11) as f64 / (1u64 << 53) as f64
    };

    let mut worst_latency = 0.0f64;
    let mut peak_buffer = 0.0f64;
    let mut max_streams = 0usize;
    for i in 0..samples {
        let arrival = Minutes(horizon.value() * (i as f64 + phase) / samples as f64);
        let s = schedule_client(&plan, VideoId(0), arrival, cfg.display_rate, policy)
            .expect("feasible plan serves every arrival");
        debug_assert!(s.jitter_violations(1e-6).is_empty());
        rec.observe(
            "crosscheck_latency_minutes",
            &cell,
            s.startup_latency().value(),
        );
        rec.gauge_max(
            "crosscheck_peak_buffer_mbits",
            &cell,
            s.peak_buffer().value(),
        );
        worst_latency = worst_latency.max(s.startup_latency().value());
        peak_buffer = peak_buffer.max(s.peak_buffer().value());
        max_streams = max_streams.max(s.max_concurrent_downloads());
    }
    Some(CrossCheck {
        scheme: scheme_label,
        bandwidth: bandwidth.value(),
        analytic,
        sim_worst_latency: worst_latency,
        sim_peak_buffer: peak_buffer,
        sim_max_streams: max_streams,
        samples,
    })
}

/// Cross-check the whole lineup at one bandwidth.
#[deprecated(
    note = "pre-`execute(RunConfig)` serial helper — use `crosscheck_lineup_with` with an \
            explicit `Runner`"
)]
#[must_use]
pub fn crosscheck_lineup(
    ids: &[SchemeId],
    bandwidth: Mbps,
    horizon: Minutes,
    samples: usize,
) -> Vec<CrossCheck> {
    crosscheck_lineup_with(
        ids,
        bandwidth,
        horizon,
        samples,
        &crate::runner::Runner::serial(),
    )
}

/// [`crosscheck_lineup`] on an explicit [`crate::runner::Runner`] —
/// schemes checked in parallel, output identical to the serial path.
#[must_use]
pub fn crosscheck_lineup_with(
    ids: &[SchemeId],
    bandwidth: Mbps,
    horizon: Minutes,
    samples: usize,
    runner: &crate::runner::Runner,
) -> Vec<CrossCheck> {
    runner
        .timed_map("crosscheck", ids, |&id| {
            crosscheck_seeded(id, bandwidth, horizon, samples, 0)
        })
        .into_iter()
        .flatten()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineup::{extended_lineup, SchemeId};

    #[test]
    fn lineup_crosschecks_at_320() {
        let checks = crosscheck_lineup_with(
            &extended_lineup(),
            Mbps(320.0),
            Minutes(12.0),
            60,
            &crate::runner::Runner::serial(),
        );
        assert_eq!(checks.len(), 10);
        for c in &checks {
            // Simulation must never exceed the analytic latency promise.
            assert!(
                c.latency_ratio() <= 1.0 + 1e-6,
                "{}: latency ratio {}",
                c.scheme,
                c.latency_ratio()
            );
            if c.scheme.starts_with("PPB") {
                // The paper's PPB buffer formula assumes the max-saving
                // client that retunes *mid-broadcast* — the very mechanism
                // §2 criticizes as "difficult to implement". Our clients
                // tune only at broadcast beginnings (like SB), and pay for
                // it: the measured buffer exceeds the Table-1 number by up
                // to ~2×. That gap IS the paper's point; assert it.
                let r = c.buffer_ratio();
                assert!(
                    (0.7..=2.5).contains(&r),
                    "{}: tune-at-start buffer ratio {} outside the expected band",
                    c.scheme,
                    r
                );
            } else {
                assert!(
                    c.buffer_ratio() <= 1.0 + 1e-6,
                    "{}: buffer ratio {}",
                    c.scheme,
                    c.buffer_ratio()
                );
            }
        }
        // …and the latency bound is tight for the fine-grained schemes.
        let sb = checks.iter().find(|c| c.scheme == "SB:W=52").unwrap();
        assert!(sb.latency_ratio() > 0.85, "{}", sb.latency_ratio());
        assert!(sb.sim_max_streams <= 2);
    }

    #[test]
    fn pb_buffer_nearly_attains_analytic() {
        let c = crosscheck_seeded(SchemeId::PbA, Mbps(300.0), Minutes(12.0), 200, 0).unwrap();
        assert!(
            c.buffer_ratio() > 0.85 && c.buffer_ratio() <= 1.0 + 1e-6,
            "ratio {}",
            c.buffer_ratio()
        );
    }

    #[test]
    fn infeasible_scheme_yields_none() {
        assert!(crosscheck_seeded(SchemeId::PpbB, Mbps(50.0), Minutes(5.0), 10, 0).is_none());
    }
}
