//! Shard scale-out study of the streaming simulation core.
//!
//! The metropolitan question behind `sim::shard`: what does partitioning
//! one big SB server into `S` shards buy, and what does it cost? This
//! study drives one deterministic million-session arrival grid
//! ([`GridArrivals`]) through [`SystemSim::execute`] at every shard
//! count in the grid and reports, per `S`:
//!
//! * **agenda footprint** — each shard's agenda high-water mark, and the
//!   largest anywhere (`max_shard_peak_agenda`). This is the per-server
//!   memory story: `S` servers each hold roughly `1/S` of the pending
//!   events.
//! * **simulated rates** — sessions and engine events per *simulated*
//!   second, normalized by the arrival horizon plus one video length.
//!   Sim-time rates are pure functions of the workload, so every cell is
//!   byte-identical across machines and thread counts.
//!
//! The population summary ([`SessionSummary`]) is *shard-invariant* by
//! the merge-as-ordered-replay construction (see `DESIGN.md` §11); the
//! study asserts all cells fold to identical bytes and stores the shared
//! summary once. A **flagship** pass then re-runs the same grid at a
//! caller-chosen shard count (the CLI's `--shards`) and contributes only
//! shard-invariant fields, so `BENCH_scale.json` is byte-identical
//! whatever `--shards` and `--threads` the invocation used. Wall-clock
//! rates are machine truth, not simulation truth: binaries print them to
//! stderr and keep them out of the artifact.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_core::config::SystemConfig;
use sb_core::error::Result;
use sb_core::plan::VideoId;
use sb_metrics::Snapshot;
use sb_sim::policy::ClientPolicy;
use sb_sim::system::{Request, SystemSim};
use sb_sim::{EngineStats, RunConfig, SessionSummary};
use sb_workload::{GridArrivals, Patience};

use crate::lineup::SchemeId;
use crate::runner::Runner;

/// Parameters of the scale-out study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Server bandwidth the plan is built against.
    pub bandwidth: Mbps,
    /// The scheme under scale-out (SB at the flagship width by default).
    pub scheme: SchemeId,
    /// Sessions in the arrival grid (the paper-scale default is ≥ 10⁶).
    pub sessions: usize,
    /// Arrivals are spread over `[0, horizon)`.
    pub horizon: Minutes,
    /// Videos the requests cycle through (must not exceed the catalog).
    pub videos: usize,
    /// Seed for the arrival-grid phase and the catalog-to-shard hash.
    pub seed: u64,
    /// Shard counts measured, in report order.
    pub shard_grid: Vec<usize>,
}

impl ScaleConfig {
    /// The paper-scale grid: ≥ 10⁶ sessions through the flagship SB
    /// width at `S ∈ {1, 2, 4, 8}`.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            bandwidth: Mbps(320.0),
            scheme: SchemeId::Sb(Some(52)),
            sessions: 1_100_000,
            horizon: Minutes(50_000.0),
            videos: 10,
            seed: 17,
            shard_grid: vec![1, 2, 4, 8],
        }
    }

    /// A tiny grid for smoke tests and CI: same shape, thousands of
    /// sessions instead of millions.
    #[must_use]
    pub fn smoke() -> Self {
        Self {
            sessions: 4_000,
            horizon: Minutes(400.0),
            ..Self::paper_defaults()
        }
    }
}

/// One shard count's cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleCell {
    /// Shard count of this cell.
    pub shards: usize,
    /// Engine statistics summed across the cell's shards
    /// (`peak_agenda` is the maximum anywhere).
    pub stats: EngineStats,
    /// Each shard's agenda high-water mark, in shard order.
    pub shard_peak_agenda: Vec<u64>,
    /// The largest per-shard agenda — the memory a single server needs.
    pub max_shard_peak_agenda: u64,
    /// Simulated span the rates below are normalized by, in seconds.
    pub sim_seconds: f64,
    /// Sessions served per simulated second.
    pub sessions_per_sim_second: f64,
    /// Engine events fired per simulated second (summed over shards).
    pub events_per_sim_second: f64,
}

/// The whole study. Every field is shard- and thread-invariant except
/// the per-cell agenda columns, which vary with the *cell's* shard count
/// (that variation is the measurement) but never with how the study was
/// invoked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// The configuration that produced this report.
    pub config: ScaleConfig,
    /// One cell per grid shard count, in grid order.
    pub cells: Vec<ScaleCell>,
    /// The population summary every cell folded to — identical across
    /// shard counts by construction, stored once.
    pub fold: SessionSummary,
    /// Sessions in the flagship pass (equals `config.sessions` when the
    /// plan covers every requested title).
    pub total_sessions: usize,
    /// Events fired in the flagship pass, summed across its shards
    /// (shard-invariant: each session fires the same events wherever it
    /// lives).
    pub total_events_fired: u64,
}

fn grid_requests(cfg: &ScaleConfig, videos: usize) -> Vec<Request> {
    GridArrivals {
        sessions: cfg.sessions,
        horizon: cfg.horizon,
        titles: videos,
        patience: Patience::Infinite,
        seed: cfg.seed,
    }
    .generate()
    .into_iter()
    .map(|w| Request {
        at: w.at,
        video: VideoId(w.video),
    })
    .collect()
}

/// Run the study: one cell per grid shard count (in parallel on
/// `runner`, serial inside each cell), then the flagship pass at
/// `flagship_shards` with the runner's full thread pool. The report and
/// snapshot are byte-identical for every `flagship_shards` and every
/// thread count.
///
/// # Errors
/// Returns the scheme's planning error when `config.bandwidth` cannot
/// sustain the scheme.
///
/// # Panics
/// Panics if any two shard counts fold to different population
/// summaries — a determinism violation in `sim::shard`, never a
/// configuration problem.
pub fn scale_study(
    cfg: &ScaleConfig,
    flagship_shards: usize,
    runner: &Runner,
) -> Result<(ScaleReport, Snapshot)> {
    let sys = SystemConfig::paper_defaults(cfg.bandwidth);
    let plan = cfg.scheme.build().plan(&sys)?;
    let videos = cfg.videos.min(plan.num_videos().max(1));
    let requests = grid_requests(cfg, videos);
    let sim_seconds = (cfg.horizon.value() + sys.video_length.value()) * 60.0;

    let cells: Vec<(ScaleCell, SessionSummary)> =
        runner.timed_map("scale-grid", &cfg.shard_grid, |&shards| {
            let sim = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible);
            let out = sim
                .execute(
                    RunConfig::new(&requests)
                        .shards(shards)
                        .seed(cfg.seed)
                        .agenda(runner.agenda()),
                )
                .expect("the grid run has no faults to reject");
            let max_peak = out.shard_peak_agenda.iter().copied().max().unwrap_or(0);
            (
                ScaleCell {
                    shards,
                    stats: out.stats,
                    max_shard_peak_agenda: max_peak,
                    shard_peak_agenda: out.shard_peak_agenda,
                    sim_seconds,
                    sessions_per_sim_second: out.fold.sessions as f64 / sim_seconds,
                    events_per_sim_second: out.stats.fired as f64 / sim_seconds,
                },
                out.fold,
            )
        });

    // The flagship pass: same workload, caller's shard count, full
    // thread pool. Only shard-invariant fields of it enter the report.
    let sim = SystemSim::new(&plan, sys.display_rate, ClientPolicy::LatestFeasible);
    let flagship = sim
        .execute(
            RunConfig::new(&requests)
                .shards(flagship_shards)
                .threads(runner.threads())
                .seed(cfg.seed)
                .agenda(runner.agenda()),
        )
        .expect("the flagship run has no faults to reject");

    let mut out = Vec::with_capacity(cells.len());
    let mut fold = flagship.fold.clone();
    for (cell, cell_fold) in cells {
        assert_eq!(
            serde_json::to_string(&cell_fold).expect("summaries serialize"),
            serde_json::to_string(&fold).expect("summaries serialize"),
            "shard count {} folded a different population than the flagship — \
             sim::shard determinism is broken",
            cell.shards,
        );
        fold = cell_fold;
        out.push(cell);
    }

    let report = ScaleReport {
        config: cfg.clone(),
        cells: out,
        total_sessions: fold.sessions,
        total_events_fired: flagship.stats.fired,
        fold,
    };
    Ok((report, flagship.snapshot))
}

/// Plain-text rendering of a [`ScaleReport`] for the CLI.
#[must_use]
pub fn render_scale(report: &ScaleReport) -> String {
    let cfg = &report.config;
    let mut out = String::new();
    out.push_str(&format!(
        "scale study: {} at {} Mb/s, {} sessions over {} min, {} videos\n",
        cfg.scheme.label(),
        cfg.bandwidth.value(),
        cfg.sessions,
        cfg.horizon.value(),
        cfg.videos,
    ));
    out.push_str(
        "shards  scheduled      fired  max-shard-agenda  per-shard-agenda       sess/sim-s\n",
    );
    for c in &report.cells {
        let per_shard = c
            .shard_peak_agenda
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&format!(
            "{:<7} {:>9} {:>10} {:>17} {:<22} {:>10.4}\n",
            c.shards,
            c.stats.scheduled,
            c.stats.fired,
            c.max_shard_peak_agenda,
            per_shard,
            c.sessions_per_sim_second,
        ));
    }
    out.push_str(&format!(
        "population: {} sessions, {} events fired, mean latency {:.4} min\n",
        report.total_sessions,
        report.total_events_fired,
        report.fold.mean_latency.value(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_scales_down_the_agenda() {
        let (report, snap) =
            scale_study(&ScaleConfig::smoke(), 2, &Runner::serial()).expect("smoke study runs");
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.total_sessions, 4_000);
        for c in &report.cells {
            assert_eq!(c.shard_peak_agenda.len(), c.shards);
            assert_eq!(
                c.max_shard_peak_agenda,
                c.shard_peak_agenda.iter().copied().max().unwrap()
            );
            // Conservation: every scheduled event fired or was cancelled.
            assert_eq!(c.stats.scheduled, c.stats.fired + c.stats.cancelled);
            assert!(c.sessions_per_sim_second > 0.0);
        }
        // Sharding shrinks the largest single agenda: 8 servers each
        // hold well under what the monolith held.
        let one = report.cells[0].max_shard_peak_agenda;
        let eight = report.cells[3].max_shard_peak_agenda;
        assert!(eight < one, "8-shard peak {eight} vs monolith {one}");
        assert!(snap.counter_total("engine_events_total") > 0);
        let txt = render_scale(&report);
        assert!(txt.contains("scale study"));
        assert!(txt.contains("sess/sim-s"));
    }

    #[test]
    fn report_is_invariant_to_flagship_shards_and_threads() {
        let cfg = ScaleConfig::smoke();
        let (base, base_snap) = scale_study(&cfg, 1, &Runner::serial()).unwrap();
        for (shards, threads) in [(2, 1), (4, 4), (8, 3)] {
            let (r, s) = scale_study(&cfg, shards, &Runner::new(threads)).unwrap();
            assert_eq!(r, base, "flagship shards {shards}, threads {threads}");
            assert_eq!(s, base_snap);
            assert_eq!(
                serde_json::to_string(&r).unwrap(),
                serde_json::to_string(&base).unwrap()
            );
        }
    }
}
