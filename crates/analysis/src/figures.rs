//! Regeneration of the paper's figures as structured data.
//!
//! Figures 5–8 are curves over server bandwidth; Figures 1–4 are the §4
//! buffer-transition diagrams, which we regenerate as worst-phase buffer
//! profiles from the exact slot-level client model.

use serde::{Deserialize, Serialize};
use vod_units::Minutes;

use sb_core::client::{sampled_worst_case_peak_buffer_units, ClientTimeline};
use sb_core::groups::{group_segments, transitions, GroupTransition};
use sb_core::series::Width;

use crate::lineup::SchemeId;
use crate::sweep::SweepRow;

/// One plotted curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points, x ascending.
    pub points: Vec<(f64, f64)>,
}

/// One figure's worth of data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Identifier, e.g. `"fig7"`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Look up a curve by label.
    #[must_use]
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

fn curve(
    rows: &[SweepRow],
    id: SchemeId,
    f: impl Fn(&crate::sweep::SchemePoint) -> Option<f64>,
) -> Series {
    Series {
        label: id.label(),
        points: rows
            .iter()
            .filter_map(|r| r.get(id).and_then(&f).map(|y| (r.bandwidth.value(), y)))
            .collect(),
    }
}

/// Figure 5(a): the values of K (and P for PPB) under different
/// network-I/O bandwidth.
#[must_use]
pub fn figure5a(rows: &[SweepRow]) -> Figure {
    let mut series = Vec::new();
    for id in [
        SchemeId::Sb(Some(52)),
        SchemeId::PbA,
        SchemeId::PbB,
        SchemeId::PpbA,
        SchemeId::PpbB,
    ] {
        let mut s = curve(rows, id, |p| Some(p.params.k as f64));
        s.label = format!("{} (K)", id.label());
        // SB's K is width-independent; label it plainly.
        if matches!(id, SchemeId::Sb(_)) {
            s.label = "SB (K)".to_string();
        }
        series.push(s);
    }
    for id in [SchemeId::PpbA, SchemeId::PpbB] {
        let mut s = curve(rows, id, |p| p.params.p.map(|p| p as f64));
        s.label = format!("{} (P)", id.label());
        series.push(s);
    }
    Figure {
        id: "fig5a".into(),
        title: "The values of K & P".into(),
        x_label: "Network-I/O bandwidth (Mb/s)".into(),
        y_label: "K / P".into(),
        series,
    }
}

/// Figure 5(b): the value of α under different network-I/O bandwidth.
#[must_use]
pub fn figure5b(rows: &[SweepRow]) -> Figure {
    let series = [SchemeId::PbA, SchemeId::PbB, SchemeId::PpbA, SchemeId::PpbB]
        .into_iter()
        .map(|id| curve(rows, id, |p| p.params.alpha))
        .collect();
    Figure {
        id: "fig5b".into(),
        title: "The value of alpha".into(),
        x_label: "Network-I/O bandwidth (Mb/s)".into(),
        y_label: "alpha".into(),
        series,
    }
}

/// Figure 6: client disk bandwidth requirement (MBytes/sec), with the
/// paper's reference lines at b, 4b, 5b and 50b.
#[must_use]
pub fn figure6(rows: &[SweepRow], ids: &[SchemeId]) -> Figure {
    let mut series: Vec<Series> = ids
        .iter()
        .map(|&id| curve(rows, id, |p| Some(p.metrics.io_mbytes_per_sec())))
        .collect();
    let b = 1.5 / 8.0; // display rate in MBytes/s
    for (label, mult) in [
        ("ref:b", 1.0),
        ("ref:4b", 4.0),
        ("ref:5b", 5.0),
        ("ref:50b", 50.0),
    ] {
        series.push(Series {
            label: label.into(),
            points: rows
                .iter()
                .map(|r| (r.bandwidth.value(), b * mult))
                .collect(),
        });
    }
    Figure {
        id: "fig6".into(),
        title: "Disk bandwidth requirement (MBytes/sec)".into(),
        x_label: "Network-I/O bandwidth (Mb/s)".into(),
        y_label: "MBytes/sec".into(),
        series,
    }
}

/// Figure 7: access latency (minutes).
#[must_use]
pub fn figure7(rows: &[SweepRow], ids: &[SchemeId]) -> Figure {
    Figure {
        id: "fig7".into(),
        title: "Access latency (minutes)".into(),
        x_label: "Network-I/O bandwidth (Mb/s)".into(),
        y_label: "minutes".into(),
        series: ids
            .iter()
            .map(|&id| curve(rows, id, |p| Some(p.metrics.access_latency.value())))
            .collect(),
    }
}

/// Figure 8: client storage requirement (MBytes).
#[must_use]
pub fn figure8(rows: &[SweepRow], ids: &[SchemeId]) -> Figure {
    Figure {
        id: "fig8".into(),
        title: "Storage requirement (MBytes)".into(),
        x_label: "Network-I/O bandwidth (Mb/s)".into(),
        y_label: "MBytes".into(),
        series: ids
            .iter()
            .map(|&id| curve(rows, id, |p| Some(p.metrics.buffer_mbytes().value())))
            .collect(),
    }
}

/// One §4 transition diagram, regenerated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionDemo {
    /// Which paper figure this corresponds to.
    pub figure: String,
    /// Human-readable description of the case.
    pub description: String,
    /// Units of the fragmentation used.
    pub units: Vec<u64>,
    /// Arrival slot exhibiting the worst buffer for this case.
    pub worst_phase: u64,
    /// The buffer profile `(slot, units)` at that phase.
    pub profile: Vec<(u64, u64)>,
    /// Measured peak, in units of `60·b·D₁` Mbits.
    pub measured_peak_units: u64,
    /// §4's bound for the *dominant* transition of this fragmentation.
    pub bound_units: u64,
}

fn worst_phase_demo(figure: &str, description: &str, units: &[u64], phases: u64) -> TransitionDemo {
    let mut worst = (0u64, 0u64);
    for t0 in 0..phases {
        let peak = ClientTimeline::compute(units, t0).peak_buffer_units();
        if peak > worst.1 {
            worst = (t0, peak);
        }
    }
    let tl = ClientTimeline::compute(units, worst.0);
    let groups = group_segments(units);
    let bound = transitions(&groups)
        .iter()
        .map(GroupTransition::buffer_bound_units)
        .max()
        .unwrap_or(0);
    TransitionDemo {
        figure: figure.into(),
        description: description.into(),
        units: units.to_vec(),
        worst_phase: worst.0,
        profile: tl.buffer_profile(),
        measured_peak_units: worst.1,
        bound_units: bound,
    }
}

/// Regenerate Figures 1–4: worst-phase buffer profiles for each §4
/// transition type.
#[must_use]
pub fn figures1_to_4() -> Vec<TransitionDemo> {
    figures1_to_4_with(&crate::runner::Runner::serial())
}

/// [`figures1_to_4`] on an explicit [`crate::runner::Runner`] — the four
/// transition cases probed in parallel, output identical to serial.
#[must_use]
pub fn figures1_to_4_with(runner: &crate::runner::Runner) -> Vec<TransitionDemo> {
    let cases: [(&str, &str, Vec<u64>, u64); 4] = [
        (
            "fig1",
            "Type 1 transition (1)->(2,2): even arrival buffers one unit, odd arrival none",
            Width::Unbounded.units(3),
            4,
        ),
        (
            "fig2",
            "Type 2 transition (2,2)->(5,5): worst case 60*b*D1*2A = 4 units",
            Width::Unbounded.units(5),
            16,
        ),
        (
            "fig3/fig4",
            "Type 3 transition (5,5)->(12,12): worst case bounded by 2A+1 = 11 units",
            Width::Unbounded.units(7),
            120,
        ),
        (
            "section-4 conclusion",
            "Capped tail (X,X)->(W..W), W=12: global worst case 60*b*D1*(W-1)",
            Width::Capped(12).units(10),
            240,
        ),
    ];
    runner.timed_map("fig1-4", &cases, |(figure, description, units, phases)| {
        worst_phase_demo(figure, description, units, *phases)
    })
}

/// The §4 storage theorem, checked numerically for one fragmentation:
/// worst-case peak buffer over sampled phases equals `W_eff − 1`.
#[must_use]
pub fn storage_theorem_holds(k: usize, width: Width) -> bool {
    let units = width.units(k);
    let worst = sampled_worst_case_peak_buffer_units(&units, 128);
    worst == width.effective(k).saturating_sub(1)
}

/// A `(latency minutes, buffer MB, io Mb/s)` point for the trade-off
/// plane of §5.4's cross-examination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// Scheme label.
    pub scheme: String,
    /// Access latency, minutes.
    pub latency: f64,
    /// Client buffer, MBytes.
    pub buffer_mb: f64,
    /// Client I/O bandwidth, Mb/s.
    pub io_mbps: f64,
}

/// Every scheme of the lineup — with SB expanded to *all* candidate
/// widths — as points in the latency × buffer plane at one bandwidth.
/// This is the "cross-examine Figure 7 and Figure 8" view, made explicit.
///
/// Harmonic Broadcasting enters with the **delayed-fix** `2·D/N` latency:
/// the original `D/N` claim was refuted by Pâris, Carter & Long, so
/// advertising it here would put an infeasible point on the frontier. Use
/// [`tradeoff_points_with`] to opt into the buggy point explicitly.
#[must_use]
pub fn tradeoff_points(bandwidth: f64) -> Vec<TradeoffPoint> {
    tradeoff_points_with(bandwidth, false)
}

/// [`tradeoff_points`] with the original (buggy) HB point included when
/// `include_buggy_hb` — labeled `HB` next to the default `HB:delayed`,
/// strictly for illustrating the refuted claim; never let it into a
/// frontier artifact.
#[must_use]
pub fn tradeoff_points_with(bandwidth: f64, include_buggy_hb: bool) -> Vec<TradeoffPoint> {
    use sb_core::config::SystemConfig;
    use sb_core::scheme::BroadcastScheme;
    use sb_core::Skyscraper;

    let cfg = SystemConfig::paper_defaults(vod_units::Mbps(bandwidth));
    let mut out = Vec::new();
    let k = (cfg.channels_ratio().floor() as usize).min(sb_core::series::MAX_SEGMENTS);
    for w in sb_core::width::candidate_widths(k) {
        let m = Skyscraper::with_width(Width::Capped(w))
            .metrics(&cfg)
            .expect("SB feasible whenever K ≥ 1");
        out.push(TradeoffPoint {
            scheme: format!("SB:W={w}"),
            latency: m.access_latency.value(),
            buffer_mb: m.buffer_mbytes().value(),
            io_mbps: m.client_io_bandwidth.value(),
        });
    }
    for id in [
        crate::lineup::SchemeId::PbA,
        crate::lineup::SchemeId::PbB,
        crate::lineup::SchemeId::PpbA,
        crate::lineup::SchemeId::PpbB,
        crate::lineup::SchemeId::Staggered,
        crate::lineup::SchemeId::Harmonic,
    ] {
        if let Ok(m) = id.build().metrics(&cfg) {
            out.push(TradeoffPoint {
                scheme: id.label(),
                latency: m.access_latency.value(),
                buffer_mb: m.buffer_mbytes().value(),
                io_mbps: m.client_io_bandwidth.value(),
            });
        }
    }
    if include_buggy_hb {
        if let Ok(m) = sb_pyramid::HarmonicBroadcasting::original().metrics(&cfg) {
            out.push(TradeoffPoint {
                scheme: "HB".to_string(),
                latency: m.access_latency.value(),
                buffer_mb: m.buffer_mbytes().value(),
                io_mbps: m.client_io_bandwidth.value(),
            });
        }
    }
    out
}

/// `true` when `p` is Pareto-dominated in (latency, buffer) by some other
/// point in `points` (strictly better on one axis, no worse on the other).
#[must_use]
pub fn dominated(p: &TradeoffPoint, points: &[TradeoffPoint]) -> bool {
    points.iter().any(|q| {
        q.scheme != p.scheme
            && q.latency <= p.latency + 1e-12
            && q.buffer_mb <= p.buffer_mb + 1e-9
            && (q.latency < p.latency - 1e-12 || q.buffer_mb < p.buffer_mb - 1e-9)
    })
}

/// Access latency as a function of width for a fixed K — the data behind
/// §5.4's "cross-examine Figure 7 and Figure 8" trade-off discussion.
#[must_use]
pub fn width_tradeoff(d: Minutes, k: usize) -> Vec<(u64, f64, f64)> {
    sb_core::width::candidate_widths(k)
        .into_iter()
        .map(|w| {
            let width = Width::Capped(w);
            let d1 = sb_core::width::latency_for(d, k, width).value();
            let buffer_mbits = 1.5 * 60.0 * d1 * (width.effective(k) - 1) as f64;
            (w, d1, buffer_mbits / 8.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineup::paper_lineup;
    use crate::sweep::paper_sweep_with;

    fn rows() -> Vec<SweepRow> {
        paper_sweep_with(&paper_lineup(), &crate::runner::Runner::serial())
    }

    #[test]
    fn figure5a_has_k_and_p_curves() {
        let f = figure5a(&rows());
        assert!(f.series("SB (K)").is_some());
        assert!(f.series("PPB:a (P)").is_some());
        // SB's K at 600 Mb/s is 40; PPB's is capped at 7.
        let sb = f.series("SB (K)").unwrap();
        assert_eq!(sb.points.last().unwrap().1, 40.0);
        let ppb = f.series("PPB:a (K)").unwrap();
        assert_eq!(ppb.points.last().unwrap().1, 7.0);
        // §5.1: "the K values are much larger for the proposed scheme".
        for (x, k_sb) in &sb.points {
            if let Some((_, k_ppb)) = ppb.points.iter().find(|(px, _)| px == x) {
                assert!(k_sb >= k_ppb);
            }
        }
    }

    #[test]
    fn figure5b_alpha_ranges() {
        let f = figure5b(&rows());
        for s in &f.series {
            for &(x, a) in &s.points {
                assert!(a > 1.0, "{} at {x}: alpha={a}", s.label);
                assert!(a < 5.5, "{} at {x}: alpha={a}", s.label); // PB:b with K=2 can reach B/(2Mb) ≈ 4
            }
        }
    }

    #[test]
    fn figure6_shapes() {
        let f = figure6(&rows(), &paper_lineup());
        // SB never exceeds 3b (§5.2: "SB requires only 3·b disk bandwidth
        // … regardless of the W values").
        for label in ["SB:W=2", "SB:W=52", "SB:W=1705", "SB:W=54612", "SB:W=inf"] {
            let s = f.series(label).unwrap();
            for &(x, y) in &s.points {
                assert!(y <= 3.0 * 1.5 / 8.0 + 1e-9, "{label} at {x}: {y}");
            }
        }
        // §5.2: PB demands ≈50× the display rate (about 10 MBytes/sec)
        // within the studied range.
        let pb = f.series("PB:a").unwrap();
        let max_pb = pb.points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
        assert!(max_pb > 5.0, "PB peak disk bw {max_pb} MB/s");
        // PPB stays close to b (§5.2: "SB and PPB have similar disk
        // bandwidth requirements").
        let ppb = f.series("PPB:b").unwrap();
        for &(_, y) in &ppb.points {
            assert!(y < 1.0, "PPB:b disk bw {y} MB/s");
        }
    }

    #[test]
    fn figure7_shapes() {
        let f = figure7(&rows(), &paper_lineup());
        // PB has the best latency everywhere it exists; PPB the worst.
        let pb = f.series("PB:a").unwrap();
        let ppb_b = f.series("PPB:b").unwrap();
        let sb52 = f.series("SB:W=52").unwrap();
        for &(x, y_pb) in &pb.points {
            let y_sb = sb52.points.iter().find(|(px, _)| *px == x).unwrap().1;
            // PB's exponential advantage needs a few channels to develop;
            // below ≈220 Mb/s SB:W=52 actually undercuts it (the paper's
            // "achieve the low latency of PB"), and from 240 Mb/s up PB
            // leads outright.
            if x >= 240.0 {
                assert!(y_pb <= y_sb + 1e-9, "PB beats SB at {x}");
            }
            // PPB:b is the latency-worst scheme through the mid-range
            // (≈5 min at 320); above ≈440 Mb/s its α jumps past 2 and the
            // curves interleave, so the comparison is only meaningful below.
            if x <= 440.0 {
                if let Some((_, y_ppb)) = ppb_b.points.iter().find(|(px, _)| *px == x) {
                    assert!(y_sb < *y_ppb, "SB beats PPB:b at {x}");
                }
            }
        }
        // Larger W ⇒ lower latency, pointwise.
        let sb2 = f.series("SB:W=2").unwrap();
        let sb1705 = f.series("SB:W=1705").unwrap();
        for (&(x, y2), &(_, y1705)) in sb2.points.iter().zip(&sb1705.points) {
            assert!(y1705 <= y2 + 1e-12, "at {x}");
        }
    }

    #[test]
    fn figure8_shapes() {
        let f = figure8(&rows(), &paper_lineup());
        // §5.4: PB needs > 1000 MB; PPB ≈ 250 MB; SB:W=2 a few tens of MB.
        let at = |label: &str, x: f64| {
            f.series(label)
                .unwrap()
                .points
                .iter()
                .find(|(px, _)| (*px - x).abs() < 1e-9)
                .map(|&(_, y)| y)
        };
        assert!(at("PB:a", 320.0).unwrap() > 1000.0);
        assert!(at("PPB:b", 320.0).unwrap() < 260.0);
        assert!((at("SB:W=2", 320.0).unwrap() - 33.0).abs() < 2.0);
        // §5.4: at 600 Mb/s, W=52 needs only ≈40 MB.
        assert!((at("SB:W=52", 600.0).unwrap() - 40.0).abs() < 8.0);
    }

    #[test]
    fn transition_demos_match_section4() {
        let demos = figures1_to_4();
        assert_eq!(demos[0].measured_peak_units, 1); // Figure 1(b)
        assert_eq!(demos[1].measured_peak_units, 4); // Figure 2: 2A with A=2
        assert!(demos[2].measured_peak_units <= demos[2].bound_units);
        // The capped-tail demo attains W−1 = 11 exactly.
        assert_eq!(demos[3].measured_peak_units, 11);
        assert_eq!(demos[3].bound_units, 11);
        for d in &demos {
            assert!(d.measured_peak_units <= d.bound_units);
            // profiles start and end empty
            assert_eq!(d.profile.first().unwrap().1, 0);
            assert_eq!(d.profile.last().unwrap().1, 0);
        }
    }

    #[test]
    fn storage_theorem_sampled() {
        for (k, w) in [
            (10, Width::Capped(12)),
            (14, Width::Capped(25)),
            (20, Width::Capped(52)),
            (7, Width::Unbounded),
        ] {
            assert!(storage_theorem_holds(k, w), "k={k} {w}");
        }
    }

    #[test]
    fn ppb_is_never_on_the_latency_buffer_frontier() {
        // §6's "win on all three metrics", as Pareto analysis: at every
        // spotlight bandwidth, both PPB variants are dominated in the
        // latency × buffer plane by some SB width.
        for b in [200.0, 320.0, 450.0, 600.0] {
            let points = tradeoff_points(b);
            for label in ["PPB:a", "PPB:b"] {
                let p = points.iter().find(|p| p.scheme == label).unwrap();
                assert!(dominated(p, &points), "{label} survives at B={b}");
            }
            // PB survives only through its latency edge at high B — but its
            // gigabyte buffer keeps it off the frontier whenever any SB
            // width matches its latency (true below ≈220 Mb/s).
            if b <= 220.0 {
                let pb = points.iter().find(|p| p.scheme == "PB:a").unwrap();
                assert!(dominated(pb, &points), "PB:a survives at B={b}");
            }
        }
    }

    #[test]
    fn buggy_hb_point_stays_behind_its_flag() {
        // The default trade-off view advertises only the delayed-fix HB
        // point; the refuted D/N claim appears solely on explicit opt-in.
        let default_pts = tradeoff_points(320.0);
        assert!(default_pts.iter().any(|p| p.scheme == "HB:delayed"));
        assert!(!default_pts.iter().any(|p| p.scheme == "HB"));
        let with = tradeoff_points_with(320.0, true);
        let buggy = with.iter().find(|p| p.scheme == "HB").unwrap();
        let fixed = with.iter().find(|p| p.scheme == "HB:delayed").unwrap();
        // The buggy point's sole advantage is the latency claim Pâris et
        // al. refuted — half the feasible variant's.
        assert!((2.0 * buggy.latency - fixed.latency).abs() < 1e-9);
        assert!((buggy.buffer_mb - fixed.buffer_mb).abs() < 1e-9);
    }

    #[test]
    fn width_tradeoff_is_a_frontier() {
        let t = width_tradeoff(Minutes(120.0), 40);
        // Latency decreases with W, buffer increases.
        for w in t.windows(2) {
            assert!(w[1].1 <= w[0].1, "latency not decreasing at W={}", w[1].0);
            assert!(w[1].2 >= w[0].2, "buffer not increasing at W={}", w[1].0);
        }
    }
}
