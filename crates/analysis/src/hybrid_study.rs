//! The §1 throughput argument, measured: "It was shown in [7, 8] that a
//! hybrid of the two techniques offered the best performance" and "[a
//! latency] guarantee can generally influence the reneging behavior of
//! clients, and therefore improve the server throughput."
//!
//! The study compares, at equal total bandwidth and identical request
//! streams, a *pure batching* server (every title scheduled-multicast)
//! against the *hybrid* (top-`m` titles on Skyscraper Broadcasting, tail
//! on batching). As load rises, pure batching's queues push waits past
//! viewer patience and throughput collapses; the hybrid's broadcast half
//! keeps its worst-case latency flat, so the popular majority of demand
//! never reneges.

use serde::{Deserialize, Serialize};
use vod_units::{Mbps, Minutes};

use sb_batching::{BatchPolicy, BatchingServer, HybridConfig};
use sb_core::series::Width;
use sb_workload::{Catalog, Patience, PoissonArrivals, ZipfPopularity};

/// One arrival-rate point of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThroughputPoint {
    /// Arrival rate, requests per minute.
    pub rate_per_minute: f64,
    /// Total requests generated.
    pub requests: usize,
    /// Viewers served by the pure-batching server.
    pub pure_served: usize,
    /// Pure-batching renege rate.
    pub pure_renege_rate: f64,
    /// Viewers served by the hybrid (broadcast + multicast halves).
    pub hybrid_served: usize,
    /// Hybrid overall renege rate (broadcast impatience + tail reneges).
    pub hybrid_renege_rate: f64,
    /// The hybrid's guaranteed worst broadcast latency.
    pub broadcast_worst_latency: Minutes,
}

/// Parameters of the study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Catalog size.
    pub titles: usize,
    /// Titles given periodic broadcast in the hybrid.
    pub popular: usize,
    /// Total server bandwidth.
    pub bandwidth: Mbps,
    /// Skyscraper width for the broadcast half.
    pub width: u64,
    /// Fraction of bandwidth the hybrid reserves for broadcast.
    pub broadcast_fraction: f64,
    /// Workload horizon.
    pub horizon: Minutes,
    /// Mean viewer patience (exponential).
    pub mean_patience: Minutes,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            titles: 60,
            popular: 10,
            bandwidth: Mbps(600.0),
            width: 52,
            broadcast_fraction: 0.5,
            horizon: Minutes(600.0),
            mean_patience: Minutes(8.0),
            seed: 97,
        }
    }
}

/// Run the study over a set of arrival rates.
///
/// # Panics
/// Panics if the hybrid split is infeasible for `cfg` (e.g. the broadcast
/// fraction cannot sustain the popular set).
#[must_use]
pub fn throughput_study(cfg: StudyConfig, rates: &[f64]) -> Vec<ThroughputPoint> {
    throughput_study_with(cfg, rates, &crate::runner::Runner::serial())
}

/// [`throughput_study`] on an explicit [`crate::runner::Runner`] — rate
/// points simulated in parallel, output identical to the serial path
/// (each point draws its workload from the same per-point seed).
///
/// # Panics
/// Panics if the hybrid split is infeasible for `cfg`.
#[must_use]
pub fn throughput_study_with(
    cfg: StudyConfig,
    rates: &[f64],
    runner: &crate::runner::Runner,
) -> Vec<ThroughputPoint> {
    let catalog = Catalog::paper_defaults(cfg.titles);
    let popularity = ZipfPopularity::paper(cfg.titles);
    let pure_pool = (cfg.bandwidth.value() / 1.5).floor() as usize;
    let hybrid = HybridConfig {
        total_bandwidth: cfg.bandwidth,
        popular: cfg.popular,
        width: Width::capped_lossy(cfg.width),
        policy: BatchPolicy::Mql,
        broadcast_fraction: cfg.broadcast_fraction,
    };

    runner.timed_map("hybrid-study", rates, |&rate| {
        let requests = PoissonArrivals::new(rate, cfg.seed)
            .with_patience(Patience::Exponential(cfg.mean_patience))
            .generate(&popularity, cfg.horizon);

        let pure = BatchingServer::new(pure_pool, BatchPolicy::Mql).run(&catalog, &requests);

        let h = hybrid
            .run(&catalog, &requests)
            .expect("feasible hybrid split");
        let hybrid_served = (h.broadcast_requests - h.broadcast_impatient) + h.multicast.served;
        let hybrid_reneged = h.broadcast_impatient + h.multicast.reneged;

        ThroughputPoint {
            rate_per_minute: rate,
            requests: requests.len(),
            pure_served: pure.served,
            pure_renege_rate: pure.renege_rate(),
            hybrid_served,
            hybrid_renege_rate: hybrid_reneged as f64 / requests.len().max(1) as f64,
            broadcast_worst_latency: h.broadcast_worst_latency,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_wins_under_load() {
        // §1's claim: at heavy load the hybrid serves more viewers than
        // pure scheduled multicast at the same bandwidth.
        let points = throughput_study(StudyConfig::default(), &[2.0, 8.0]);
        let light = &points[0];
        let heavy = &points[1];
        // Under light load both serve nearly everyone.
        assert!(light.pure_renege_rate < 0.1, "{}", light.pure_renege_rate);
        assert!(
            light.hybrid_renege_rate < 0.1,
            "{}",
            light.hybrid_renege_rate
        );
        // Under heavy load the hybrid's broadcast half keeps the popular
        // majority served.
        assert!(
            heavy.hybrid_served > heavy.pure_served,
            "hybrid {} vs pure {}",
            heavy.hybrid_served,
            heavy.pure_served
        );
        assert!(heavy.hybrid_renege_rate < heavy.pure_renege_rate);
        // The guarantee itself is rate-independent.
        assert_eq!(light.broadcast_worst_latency, heavy.broadcast_worst_latency);
    }

    #[test]
    fn throughput_is_monotone_in_requests() {
        let points = throughput_study(StudyConfig::default(), &[1.0, 4.0]);
        assert!(points[1].requests > points[0].requests);
        assert!(points[1].hybrid_served >= points[0].hybrid_served);
    }
}
